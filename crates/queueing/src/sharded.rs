//! The Chapter 5 model extended to a sharded recorder tier.
//!
//! Chapter 5 models one recording node whose NIC, processor, and disk
//! bound the system at ≈115 users. With the published log partitioned
//! over N recorder stations by rendezvous hashing, each shard captures
//! only the traffic of the pids in its capture sets — a fraction
//! R/N of the total for replication factor R — so the per-shard
//! stations see proportionally less load and the tier's user capacity
//! grows with N. The shared broadcast medium, however, is *not*
//! sharded: every published message still crosses the one wire (plus R
//! recorder-acknowledgement slots instead of one), so past the point
//! where N·(shard capacity) exceeds the wire's own limit, the medium
//! becomes the binding resource and the capacity curve flattens. Both
//! regimes are reported separately so the crossover is visible.

use crate::ch5::{operating_points, OperatingPoint, SystemConfig};
use crate::solver::{OpenNetwork, Station};
use crate::workload::{CHECKPOINT_BYTES, LONG_BYTES, SHORT_BYTES};

/// A sharded recorder tier: the Chapter 5 hardware at every shard.
#[derive(Debug, Clone)]
pub struct ShardedTier {
    /// Per-shard hardware and disk configuration.
    pub base: SystemConfig,
    /// Number of recorder shards, N.
    pub shards: u32,
    /// Capture-set replication factor R (clamped to `shards`).
    pub replication: u32,
}

impl ShardedTier {
    /// A tier of `shards` shards with replication `replication` on the
    /// default Chapter 5 hardware.
    pub fn new(shards: u32, replication: u32) -> Self {
        ShardedTier {
            base: SystemConfig::default(),
            shards: shards.max(1),
            replication: replication.max(1),
        }
    }

    /// The effective replication: R cannot exceed the shard count.
    pub fn r(&self) -> u32 {
        self.replication.min(self.shards)
    }
}

/// Builds the sharded Figure 5.1 network for `users` processes at the
/// given operating point: the shared medium (carrying every message
/// once plus R ack slots each) and one representative shard's NIC,
/// processor, and disk (HRW spreads pids uniformly, so the shards are
/// statistically identical and one stands for all) at R/N of the
/// total capture load.
pub fn build_sharded_network(op: &OperatingPoint, tier: &ShardedTier, users: f64) -> OpenNetwork {
    let hw = &tier.base.hw;
    let short_rate = op.traffic.short_per_sec * users;
    let long_rate = op.traffic.long_per_sec * users;
    let ckpt_rate = op.checkpoint_msgs_per_proc() * users;
    let data_rate = short_rate + long_rate + ckpt_rate;
    let share = tier.r() as f64 / tier.shards as f64;

    let wire = |bytes: f64| bytes * 8.0 / hw.bandwidth_bps;
    let medium = Station::new("medium")
        .flow("short", short_rate, wire(SHORT_BYTES as f64))
        .flow("long", long_rate, wire(LONG_BYTES as f64))
        .flow("checkpoint", ckpt_rate, wire(CHECKPOINT_BYTES as f64))
        .flow("recorder-acks", data_rate * tier.r() as f64, wire(32.0));

    let nic = Station::new("shard-nic").flow("captured", data_rate * share, hw.interpacket);
    let cpu = Station::new("shard-cpu").flow("data+ack", 2.0 * data_rate * share, hw.packet_cpu);

    let byte_rate = op.data_bytes_per_proc() * users * share;
    let page_rate = byte_rate / 4096.0 / tier.base.disks as f64;
    let disk = Station::new("shard-disk").flow(
        "pages",
        page_rate,
        hw.disk_latency + 4096.0 / hw.disk_rate,
    );

    OpenNetwork::new()
        .station(medium)
        .station(nic)
        .station(cpu)
        .station(disk)
}

fn saturates(op: &OperatingPoint, tier: &ShardedTier, users: f64, station_prefix: &str) -> bool {
    build_sharded_network(op, tier, users)
        .stations
        .iter()
        .filter(|s| s.name.starts_with(station_prefix))
        .any(|s| s.utilization() >= 1.0)
}

fn probe(op: &OperatingPoint, tier: &ShardedTier, station_prefix: &str) -> u32 {
    let mut users = 0u32;
    while users < 100_000 {
        if saturates(op, tier, (users + 1) as f64, station_prefix) {
            break;
        }
        users += 1;
    }
    users
}

/// Maximum mean-operating-point users before any *shard* station (NIC,
/// processor, disk) saturates. The medium is assessed separately by
/// [`medium_max_users`]; the deployable capacity is the minimum of the
/// two.
pub fn tier_max_users(tier: &ShardedTier) -> u32 {
    probe(&operating_points()[0], tier, "shard-")
}

/// Maximum mean-operating-point users before the shared medium itself
/// saturates. Independent of N except through the R ack slots every
/// published message now carries.
pub fn medium_max_users(tier: &ShardedTier) -> u32 {
    probe(&operating_points()[0], tier, "medium")
}

/// One row of the shard-capacity table.
#[derive(Debug, Clone, Copy)]
pub struct ShardCapacityRow {
    /// Shard count N.
    pub shards: u32,
    /// Effective replication factor R.
    pub replication: u32,
    /// Users the recorder tier itself supports.
    pub tier_users: u32,
    /// Users the shared medium supports.
    pub medium_users: u32,
    /// Deployable capacity: the smaller of the two.
    pub effective_users: u32,
}

/// The user-capacity curve versus shard count, 1..=`max_shards`, at
/// replication factor `replication`.
pub fn shard_capacity_curve(max_shards: u32, replication: u32) -> Vec<ShardCapacityRow> {
    (1..=max_shards)
        .map(|n| {
            let tier = ShardedTier::new(n, replication);
            let tier_users = tier_max_users(&tier);
            let medium_users = medium_max_users(&tier);
            ShardCapacityRow {
                shards: n,
                replication: tier.r(),
                tier_users,
                medium_users,
                effective_users: tier_users.min(medium_users),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ch5::max_users;

    #[test]
    fn single_shard_matches_chapter_5_capacity() {
        // N = 1, R = 1 is exactly the Chapter 5 recorder.
        let tier = ShardedTier::new(1, 1);
        assert_eq!(tier_max_users(&tier), max_users(&SystemConfig::default()));
    }

    #[test]
    fn partitioned_capacity_scales_with_shard_count() {
        let curve = shard_capacity_curve(8, 1);
        let base = curve[0].tier_users;
        for w in curve.windows(2) {
            assert!(
                w[1].tier_users > w[0].tier_users,
                "tier capacity must increase with shards: {curve:?}"
            );
        }
        // Near-linear: shard N supports ~N× the single-recorder load.
        for row in &curve {
            let ideal = base * row.shards;
            assert!(
                (row.tier_users as i64 - ideal as i64).unsigned_abs() <= row.shards as u64,
                "shard {}: {} vs ideal {}",
                row.shards,
                row.tier_users,
                ideal
            );
        }
    }

    #[test]
    fn replicated_capacity_is_monotone_and_pays_for_redundancy() {
        let curve = shard_capacity_curve(8, 2);
        for w in curve.windows(2) {
            assert!(w[1].tier_users >= w[0].tier_users, "{curve:?}");
        }
        // R = 2 halves the per-shard headroom relative to R = 1.
        let r1 = shard_capacity_curve(8, 1);
        for (a, b) in curve.iter().zip(&r1).skip(2) {
            assert!(a.tier_users < b.tier_users);
            let ratio = b.tier_users as f64 / a.tier_users as f64;
            assert!((1.8..=2.2).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn medium_eventually_binds_the_partitioned_tier() {
        // The wire is not sharded: by 8 shards the medium, not the
        // recorders, limits the R = 1 tier.
        let curve = shard_capacity_curve(8, 1);
        assert!(curve[0].effective_users == curve[0].tier_users);
        let last = curve.last().unwrap();
        assert!(
            last.effective_users < last.tier_users,
            "expected the medium to bind at 8 shards: {last:?}"
        );
        assert_eq!(last.effective_users, last.medium_users);
    }

    #[test]
    fn replication_is_clamped_to_shard_count() {
        assert_eq!(
            tier_max_users(&ShardedTier::new(1, 2)),
            tier_max_users(&ShardedTier::new(1, 1))
        );
        assert_eq!(ShardedTier::new(1, 2).r(), 1);
    }
}
