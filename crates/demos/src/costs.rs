//! The CPU cost model for processing nodes.
//!
//! §5.2 measures DEMOS/MP on a VAX 11/750 and attributes publishing's
//! steady-state cost "entirely to the network protocol and to the
//! servicing of the network device interrupts". We model node CPU as a
//! single server charged per operation with the constants below,
//! calibrated so the Figure 5.7/5.8 benches land on the paper's measured
//! differences (the *structure* — what gets charged when — is the model;
//! the constants are the paper's VAX numbers).

use publishing_sim::time::SimDuration;

/// Per-operation CPU charges for a processing node.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Entering the kernel for any call (trap + validate + return).
    pub kernel_call: SimDuration,
    /// Dispatching a ready process and performing its receive.
    pub activation_base: SimDuration,
    /// Network-protocol CPU to transmit one message (transport send path
    /// plus interrupt service; §5.2.1 measured ≈13 ms of the 26 ms
    /// publishing round trip on each side).
    pub net_send: SimDuration,
    /// Network-protocol CPU to receive one message.
    pub net_receive: SimDuration,
    /// Per-byte copy cost into and out of device buffers ("less than 1 ms"
    /// of the 26 ms was copying; we charge it per byte).
    pub net_per_byte: SimDuration,
    /// Delivering an intranode message without the network (the
    /// non-publishing fast path of Figure 5.7).
    pub local_delivery: SimDuration,
    /// Kernel-side work to create or destroy a process, excluding the
    /// control-chain messages (Figure 5.8's base cost).
    pub process_create: SimDuration,
    /// Taking a checkpoint image, per byte of image.
    pub checkpoint_per_byte: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            kernel_call: SimDuration::from_micros(500),
            activation_base: SimDuration::from_micros(500),
            net_send: SimDuration::from_millis(13),
            net_receive: SimDuration::from_millis(13),
            net_per_byte: SimDuration::from_nanos(700),
            local_delivery: SimDuration::from_micros(1_500),
            process_create: SimDuration::from_millis(12),
            checkpoint_per_byte: SimDuration::from_nanos(500),
        }
    }
}

impl CostModel {
    /// A near-zero cost model for protocol-logic tests where CPU time is
    /// noise.
    pub fn zero() -> Self {
        CostModel {
            kernel_call: SimDuration::ZERO,
            activation_base: SimDuration::ZERO,
            net_send: SimDuration::ZERO,
            net_receive: SimDuration::ZERO,
            net_per_byte: SimDuration::ZERO,
            local_delivery: SimDuration::ZERO,
            process_create: SimDuration::ZERO,
            checkpoint_per_byte: SimDuration::ZERO,
        }
    }

    /// Returns this model with every charge multiplied by `factor`
    /// (< 1 = a faster CPU). The what-if profiler's "protocol CPU ×k"
    /// knob; scaling the zero model is a no-op by construction.
    pub fn scaled(&self, factor: f64) -> CostModel {
        assert!(factor >= 0.0, "cost factor must be non-negative");
        let s = |d: SimDuration| d.mul_f64(factor);
        CostModel {
            kernel_call: s(self.kernel_call),
            activation_base: s(self.activation_base),
            net_send: s(self.net_send),
            net_receive: s(self.net_receive),
            net_per_byte: s(self.net_per_byte),
            local_delivery: s(self.local_delivery),
            process_create: s(self.process_create),
            checkpoint_per_byte: s(self.checkpoint_per_byte),
        }
    }

    /// CPU to send one message of `bytes` over the network.
    pub fn send_cost(&self, bytes: usize) -> SimDuration {
        self.net_send + self.net_per_byte.saturating_mul(bytes as u64)
    }

    /// CPU to receive one message of `bytes` from the network.
    pub fn receive_cost(&self, bytes: usize) -> SimDuration {
        self.net_receive + self.net_per_byte.saturating_mul(bytes as u64)
    }

    /// CPU to capture a checkpoint image of `bytes`.
    pub fn checkpoint_cost(&self, bytes: usize) -> SimDuration {
        self.kernel_call + self.checkpoint_per_byte.saturating_mul(bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_path_dwarfs_local_path() {
        // The §5.2.1 conclusion: "most of the cost of publishing is caused
        // by the use of the general message protocol for publishing
        // intranode messages."
        let c = CostModel::default();
        let published = c.send_cost(128) + c.receive_cost(128);
        assert!(published > c.local_delivery.saturating_mul(10));
    }

    #[test]
    fn costs_scale_with_size() {
        let c = CostModel::default();
        assert!(c.send_cost(1024) > c.send_cost(128));
        assert!(c.checkpoint_cost(65536) > c.checkpoint_cost(4096));
    }

    #[test]
    fn scaled_model_multiplies_every_charge() {
        let c = CostModel::default();
        let half = c.scaled(0.5);
        assert_eq!(half.net_send, SimDuration::from_micros(6_500));
        assert_eq!(half.send_cost(0).as_nanos() * 2, c.send_cost(0).as_nanos());
        assert_eq!(half.kernel_call.as_nanos() * 2, c.kernel_call.as_nanos());
        // Scaling zero stays zero.
        assert_eq!(
            CostModel::zero().scaled(0.5).send_cost(1024),
            SimDuration::ZERO
        );
    }

    #[test]
    fn zero_model_charges_nothing() {
        let c = CostModel::zero();
        assert_eq!(c.send_cost(10_000), SimDuration::ZERO);
        assert_eq!(c.receive_cost(10_000), SimDuration::ZERO);
        assert_eq!(c.checkpoint_cost(10_000), SimDuration::ZERO);
    }
}
