//! Closed-loop capacity search: the paper's Fig 5.5 knee, generalized.
//!
//! §5.3 loads the published medium with simulated users until delivery
//! degrades, finding ≈115 sustainable users on the 1983 ethernet. This
//! module reproduces that experiment as a closed loop over any
//! [`WorkloadSpec`] shape and any recorder topology: a *trial* runs the
//! compiled workload fault-free on the paper medium and judges it
//! against an [`SloSpec`] (plus, optionally, a seeded fault schedule
//! judged by the chaos recovery oracle against the trial's own
//! baseline); the *search* brackets the highest passing user count by
//! doubling, then binary-searches the bracket. The result — the
//! "capacity knee" — is the largest user count the tier sustains within
//! its objectives, every searched point a fully validated run.

use crate::compile::CompiledWorkload;
use crate::spec::WorkloadSpec;
use publishing_chaos::driver::run_schedule;
use publishing_chaos::oracle::{self, Baseline, OracleOptions};
use publishing_chaos::{FaultSchedule, Medium, Scenario, Topology, Tuning};
use publishing_obs::report::{ObsReport, WorkloadStats};
use publishing_obs::slo::SloSpec;

/// Search knobs.
#[derive(Debug, Clone)]
pub struct SearchParams {
    /// Upper bound on the searched user count.
    pub max_users: u32,
    /// Validate every searched point under a seeded fault schedule via
    /// the chaos recovery oracle (in addition to the fault-free SLO
    /// check).
    pub chaos: bool,
    /// Broadcast medium for the trials. The knee only exists on a
    /// finite medium; [`Medium::Ethernet`] is the paper's.
    pub medium: Medium,
    /// Physical-constant knobs (costs, wire speed, transport window)
    /// applied to every trial — identity by default; the what-if
    /// profiler re-searches under a turned knob.
    pub tuning: Tuning,
    /// Emit a knee-search log line per probed point on stderr, naming
    /// the SLO clause that rejected it.
    pub verbose: bool,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            max_users: 256,
            chaos: true,
            medium: Medium::Ethernet,
            tuning: Tuning::default(),
            verbose: false,
        }
    }
}

/// Classifies an SLO-violation string into the clause that produced
/// it, so knee-search logs and reports say *which objective* rejected
/// a point, not just that one did.
pub fn slo_clause(violation: &str) -> &'static str {
    if violation.contains("deliver p99") || violation.contains("sequence p99") {
        "latency"
    } else if violation.contains("recovered in") {
        "recovery"
    } else if violation.contains("did not finish") {
        "goodput"
    } else if violation.contains("gating stalls") {
        "gating"
    } else if violation.contains("watchdog") {
        "watchdog"
    } else {
        "other"
    }
}

/// The distinct SLO clauses behind a violation list, in first-seen
/// order (deterministic: violation order is fixed by [`SloSpec`]).
pub fn rejecting_clauses(violations: &[String]) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for v in violations {
        let c = slo_clause(v);
        if !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

/// One searched operating point, fully judged.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// User count of this trial.
    pub users: u32,
    /// Messages the generators published (Σ `sent N`).
    pub offered: u64,
    /// Messages the sinks drained (Σ `got N`).
    pub delivered: u64,
    /// SLO violations from the fault-free run (empty = met).
    pub violations: Vec<String>,
    /// Chaos-oracle failures from the faulted run, when one ran.
    pub chaos_failures: Vec<String>,
    /// Whether the point is sustained: every driver finished, SLOs met,
    /// chaos oracle clean.
    pub pass: bool,
    /// The binding resource the utilization ledger named for this
    /// trial (`None` when nothing saturated).
    pub binding: Option<String>,
    /// The fault-free run's observability report, with
    /// [`WorkloadStats`] attached for rendering.
    pub report: Box<ObsReport>,
}

impl TrialOutcome {
    /// The distinct SLO clauses that rejected this point (empty for a
    /// passing trial): fault-free violations first, then chaos.
    pub fn rejected_by(&self) -> Vec<&'static str> {
        let mut out = rejecting_clauses(&self.violations);
        for c in rejecting_clauses(&self.chaos_failures) {
            let c = if c == "other" { "chaos" } else { c };
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

/// A (shape × topology) search result.
#[derive(Debug, Clone)]
pub struct Knee {
    /// Workload-shape name.
    pub shape: String,
    /// Searched topology.
    pub topology: Topology,
    /// Max sustainable users (0 = even one user missed the SLOs).
    pub knee_users: u32,
    /// The binding resource at the knee: what the utilization ledger
    /// named on the first failing point past the knee (where the
    /// saturation actually shows), falling back to the knee trial.
    /// `None` when the search never failed or nothing saturated.
    pub binding: Option<String>,
    /// Every searched point, in search order.
    pub trials: Vec<TrialOutcome>,
}

impl Knee {
    /// The passing trial at the knee, if the knee is nonzero.
    pub fn knee_trial(&self) -> Option<&TrialOutcome> {
        self.trials
            .iter()
            .filter(|t| t.pass)
            .max_by_key(|t| t.users)
    }

    /// The lowest failing trial — the first point past the knee.
    pub fn failing_trial(&self) -> Option<&TrialOutcome> {
        self.trials
            .iter()
            .filter(|t| !t.pass)
            .min_by_key(|t| t.users)
    }
}

/// Short name for a topology (report keys, table rows).
pub fn topology_name(t: Topology) -> &'static str {
    match t {
        Topology::Single => "single",
        Topology::Sharded => "sharded",
        Topology::Quorum => "quorum",
    }
}

fn scenario(topology: Topology, spec: &WorkloadSpec, medium: Medium, tuning: &Tuning) -> Scenario {
    let mut s = Scenario::new(topology, spec.seed);
    s.medium = medium;
    s.tuning = tuning.clone();
    s
}

/// A schedule with no faults: drive to the workload horizon, heal
/// (a no-op), and run the grace period so the drivers finish.
fn empty_schedule(spec: &WorkloadSpec) -> FaultSchedule {
    FaultSchedule {
        workload_seed: spec.seed,
        horizon_ms: spec.horizon_ms,
        faults: Vec::new(),
    }
}

/// Parses `prefix N` totals out of client outputs.
fn sum_outputs(outputs: &[(publishing_demos::ids::ProcessId, Vec<String>)], prefix: &str) -> u64 {
    outputs
        .iter()
        .flat_map(|(_, lines)| lines)
        .filter_map(|l| l.strip_prefix(prefix))
        .filter_map(|n| n.trim().parse::<u64>().ok())
        .sum()
}

/// Clients whose last output line is not `done` — drivers the run
/// failed to bring to completion inside horizon + grace.
fn unfinished(outputs: &[(publishing_demos::ids::ProcessId, Vec<String>)]) -> Vec<String> {
    outputs
        .iter()
        .filter(|(_, lines)| lines.last().map(String::as_str) != Some("done"))
        .map(|(pid, _)| format!("client {pid} did not finish"))
        .collect()
}

/// Runs one operating point: the fault-free SLO trial, plus a faulted
/// trial through the chaos recovery oracle when `schedule` is given.
pub fn run_trial(
    topology: Topology,
    spec: &WorkloadSpec,
    slo: &SloSpec,
    medium: Medium,
    schedule: Option<&FaultSchedule>,
) -> TrialOutcome {
    run_trial_tuned(topology, spec, slo, medium, schedule, &Tuning::default())
}

/// [`run_trial`] with explicit physical-constant knobs — the what-if
/// profiler's entry point for re-searching under a virtual speedup.
pub fn run_trial_tuned(
    topology: Topology,
    spec: &WorkloadSpec,
    slo: &SloSpec,
    medium: Medium,
    schedule: Option<&FaultSchedule>,
    tuning: &Tuning,
) -> TrialOutcome {
    let compiled = CompiledWorkload::new(spec.clone());
    let scen = scenario(topology, spec, medium, tuning);

    // Fault-free run: offered/delivered accounting + SLO verdict.
    let mut world = scen.build_with(&compiled);
    run_schedule(world.as_mut(), &empty_schedule(spec));
    let outputs = world.client_outputs();
    let delivered = sum_outputs(&outputs, "got ");
    let offered = sum_outputs(&outputs, "sent ");
    let mut report = world.obs_report();
    let mut violations = unfinished(&outputs);
    violations.extend(slo.violations(&report));
    report.workload = Some(WorkloadStats {
        offered,
        delivered,
        offered_per_sec: offered as f64 * 1000.0 / spec.horizon_ms as f64,
        slo_violations: violations.clone(),
    });

    // Faulted run: same workload under a seeded schedule, judged by the
    // recovery oracle against its own fault-free baseline plus the
    // recovery-time/watchdog SLOs (latency objectives don't apply while
    // faults are being injected). Both runs of the pair use the perfect
    // bus: the recovery guarantee is specified over a reliable medium,
    // and a CSMA/CD frame abandoned after max collisions has no
    // retransmission story yet, so validating on the contended medium
    // would conflate MAC-layer loss with recovery defects.
    let mut chaos_failures = Vec::new();
    if let Some(sched) = schedule {
        let oracle_scen = scenario(topology, spec, Medium::Perfect, tuning);
        let baseline = if medium == Medium::Perfect {
            // The SLO run already is the fault-free perfect-bus run.
            Baseline {
                output_fp: world.output_fingerprint(),
                obs_fp: world.obs_fingerprint(),
                client_outputs: outputs,
                span_events: world.span_events(),
            }
        } else {
            let mut clean = oracle_scen.build_with(&compiled);
            run_schedule(clean.as_mut(), &empty_schedule(spec));
            Baseline {
                output_fp: clean.output_fingerprint(),
                obs_fp: clean.obs_fingerprint(),
                client_outputs: clean.client_outputs(),
                span_events: clean.span_events(),
            }
        };
        let mut faulted = oracle_scen.build_with(&compiled);
        run_schedule(faulted.as_mut(), sched);
        chaos_failures = oracle::check(faulted.as_ref(), &baseline, &OracleOptions::default());
        let recovery_slo = SloSpec {
            deliver_p99_us: u64::MAX,
            sequence_p99_us: u64::MAX,
            max_gating_stalls: u64::MAX,
            ..*slo
        };
        chaos_failures.extend(recovery_slo.violations(&faulted.obs_report()));
    }

    TrialOutcome {
        users: spec.users,
        offered,
        delivered,
        pass: violations.is_empty() && chaos_failures.is_empty(),
        binding: report
            .utilization
            .as_ref()
            .and_then(|u| u.binding())
            .map(|r| r.name.clone()),
        violations,
        chaos_failures,
        report: Box::new(report),
    }
}

/// The seeded fault schedule validating the point at `users`.
fn point_schedule(topology: Topology, spec: &WorkloadSpec) -> FaultSchedule {
    use publishing_chaos::scenario::{REPLICAS, SHARDS};
    publishing_chaos::schedule::generate(&publishing_chaos::ChaosConfig {
        seed: spec.seed.wrapping_add(spec.users as u64),
        nodes: publishing_chaos::NODES,
        shards: match topology {
            Topology::Sharded => SHARDS,
            _ => 0,
        },
        replicas: match topology {
            Topology::Quorum => REPLICAS,
            _ => 0,
        },
        procs: spec.generators() + spec.subjects,
        horizon_ms: spec.horizon_ms,
        max_faults: 3,
    })
}

/// Binary-searches the capacity knee of `shape` on `topology`.
///
/// Doubles the user count from 1 until a point fails (or `max_users`
/// passes), then binary-searches the failing bracket. Every searched
/// point is a complete validated trial.
pub fn find_knee(
    shape: &str,
    topology: Topology,
    base: &WorkloadSpec,
    slo: &SloSpec,
    params: &SearchParams,
) -> Knee {
    let mut trials = Vec::new();
    let probe = |users: u32, trials: &mut Vec<TrialOutcome>| -> bool {
        let spec = base.clone().with_users(users);
        let sched = params.chaos.then(|| point_schedule(topology, &spec));
        let t = run_trial_tuned(
            topology,
            &spec,
            slo,
            params.medium,
            sched.as_ref(),
            &params.tuning,
        );
        let pass = t.pass;
        if params.verbose {
            if pass {
                eprintln!(
                    "knee[{shape}/{}] users={users}: PASS",
                    topology_name(topology)
                );
            } else {
                // Name the clause that rejected the point — "the SLO
                // failed" hides whether latency, recovery, or goodput
                // was the wall — plus the first concrete violation and
                // the resource the ledger blames.
                eprintln!(
                    "knee[{shape}/{}] users={users}: FAIL clause={} binding={} ({})",
                    topology_name(topology),
                    t.rejected_by().join("+"),
                    t.binding.as_deref().unwrap_or("none"),
                    t.violations
                        .first()
                        .or_else(|| t.chaos_failures.first())
                        .map(String::as_str)
                        .unwrap_or("unspecified"),
                );
            }
        }
        trials.push(t);
        pass
    };

    // Exponential bracket.
    let (mut lo, mut hi) = (0u32, None::<u32>);
    let mut u = 1u32;
    loop {
        if probe(u, &mut trials) {
            lo = u;
            if u >= params.max_users {
                break;
            }
            u = (u * 2).min(params.max_users);
        } else {
            hi = Some(u);
            break;
        }
    }
    // Binary search inside (lo, hi).
    if let Some(mut hi) = hi {
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if probe(mid, &mut trials) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    // Attribute the knee: the first failing point past it carries the
    // ledger's binding-resource verdict; fall back to the knee trial
    // itself when nothing failed (search capped out while passing).
    let binding = trials
        .iter()
        .filter(|t| !t.pass)
        .min_by_key(|t| t.users)
        .and_then(|t| t.binding.clone())
        .or_else(|| {
            trials
                .iter()
                .filter(|t| t.pass)
                .max_by_key(|t| t.users)
                .and_then(|t| t.binding.clone())
        });

    Knee {
        shape: shape.to_string(),
        topology,
        knee_users: lo,
        binding,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_user_trial_passes_on_perfect_bus() {
        let spec = WorkloadSpec {
            users: 1,
            subjects: 1,
            rate_per_sec: 50,
            horizon_ms: 200,
            ..WorkloadSpec::default()
        };
        let t = run_trial(
            Topology::Single,
            &spec,
            &SloSpec::default(),
            Medium::Perfect,
            None,
        );
        assert!(t.pass, "violations: {:?}", t.violations);
        assert_eq!(t.offered, t.delivered);
        assert_eq!(t.offered, 10, "1 user × 50/s × 0.2 s");
        let w = t.report.workload.as_ref().unwrap();
        assert_eq!(w.offered, t.offered);
        assert!((w.goodput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn impossible_slo_yields_zero_knee() {
        let spec = WorkloadSpec {
            subjects: 1,
            horizon_ms: 100,
            ..WorkloadSpec::default()
        };
        let slo = SloSpec {
            deliver_p99_us: 0,
            ..SloSpec::default()
        };
        let knee = find_knee(
            "test",
            Topology::Single,
            &spec,
            &slo,
            &SearchParams {
                max_users: 4,
                chaos: false,
                medium: Medium::Perfect,
                ..SearchParams::default()
            },
        );
        assert_eq!(knee.knee_users, 0);
        assert_eq!(knee.trials.len(), 1, "u=1 fails, search stops");
        assert!(knee.knee_trial().is_none());
    }

    #[test]
    fn generous_slo_saturates_the_search_cap() {
        let spec = WorkloadSpec {
            subjects: 1,
            rate_per_sec: 5,
            horizon_ms: 100,
            ..WorkloadSpec::default()
        };
        let knee = find_knee(
            "test",
            Topology::Single,
            &spec,
            &SloSpec::default(),
            &SearchParams {
                max_users: 4,
                chaos: false,
                medium: Medium::Perfect,
                ..SearchParams::default()
            },
        );
        assert_eq!(knee.knee_users, 4, "perfect bus never degrades");
        assert_eq!(knee.knee_trial().unwrap().users, 4);
    }
}
