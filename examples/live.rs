//! The live runtime: real OS threads, wall-clock time, crossbeam
//! channels as the broadcast medium — and the *same* kernel and recorder
//! state machines as the simulator (the sans-IO payoff).
//!
//! Run with: `cargo run --example live`

use publishing::core::live::LiveBuilder;
use publishing::demos::ids::Channel;
use publishing::demos::link::Link;
use publishing::demos::programs::{self, PingClient};
use publishing::demos::registry::ProgramRegistry;
use std::time::{Duration, Instant};

fn main() {
    let mut registry = ProgramRegistry::new();
    programs::register_standard(&mut registry);
    registry.register("ping", || Box::new(PingClient::new(12)));

    let mut sys = LiveBuilder::new(2, registry).start();
    let server = sys.spawn_blocking(1, "echo", vec![]).unwrap();
    let client = sys
        .spawn_blocking(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    println!("live threads running; echo {server}, client {client}");

    std::thread::sleep(Duration::from_millis(40));
    println!("t={:?}  killing the echo server for real…", sys.elapsed());
    sys.crash_process(server, "live fault");

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let out = sys.outputs_of(client);
        if out.last().map(|l| l == "done").unwrap_or(false) {
            println!("\nclient outputs (deduplicated):");
            for line in &out {
                println!("  {line}");
            }
            assert_eq!(out.len(), 13);
            break;
        }
        assert!(Instant::now() < deadline, "stalled: {out:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("\nrecovered across a real (wall-clock) crash, exactly once.");
    sys.shutdown();
}
