//! The sans-IO Raft-style consensus core for a recorder group.
//!
//! One `RaftCore` runs inside each replica of a recorder quorum group.
//! It owns the replicated **arrival log**: every committed `Sequence`
//! entry fixes one message's arrival sequence for its destination, so
//! the §3.2 sequencing decision is quorum-durable before any replica
//! publishes the message to its stable store. The core is sans-IO in
//! the same style as the transport and recovery manager: inputs are
//! [`RaftCore::on_msg`], [`RaftCore::tick`], and [`RaftCore::propose`];
//! outputs are [`RaftOut`] values the replica turns into LAN frames and
//! recorder applies.
//!
//! Durability model, mirroring the paper's recorder (§3.3.4):
//!
//! - **Term and vote** live in a [`DurableCell`] — two-slot NVRAM with
//!   write-through semantics. `persist_hard` returns only when the
//!   record is settled, so a vote message is never emitted before the
//!   vote it promises is durable (election safety holds across crashes).
//! - **The log itself is battery-backed**, the same durability class as
//!   the recorder's pending capture buffer: a replica crash loses no
//!   accepted entries. What a crash *does* lose is volatile apply
//!   progress — the recorder's un-flushed store pages — so a restarted
//!   replica rewinds `applied` to its snapshot floor and re-applies the
//!   committed prefix through the idempotent
//!   `Recorder::apply_sequenced_at` path.
//!
//! Compaction drops applied entries and leans on the recorder's own
//! stable store as the snapshot: a follower too far behind receives a
//! [`QMsg::Snapshot`] whose image is the leader's exported process
//! database (checkpoint images included), not a replay of old entries.

use publishing_demos::message::Message;
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use publishing_sim::rng::DetRng;
use publishing_sim::time::{SimDuration, SimTime};
use publishing_stable::cell::DurableCell;
use std::collections::BTreeSet;

/// Index of a replica within its group (0-based, stable across crashes).
pub type ReplicaId = u32;

/// Raft role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepting appends from the current leader.
    Follower,
    /// Soliciting votes after an election timeout.
    Candidate,
    /// Sequencing arrivals and replicating the log.
    Leader,
}

/// One operation in the replicated arrival log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A no-op the leader commits on taking office; committing it proves
    /// leadership for the term and pins every earlier entry committed.
    Noop,
    /// Assign `msg` the arrival sequence `seq` at its destination. The
    /// sequence is chosen by the proposing leader and fixed by commit —
    /// every replica applies the identical (destination, seq, message)
    /// triple, which is the §3.2 guarantee made quorum-durable.
    Sequence {
        /// The arrival sequence being assigned.
        seq: u64,
        /// The acknowledged message being published.
        msg: Message,
    },
}

const OP_NOOP: u8 = 1;
const OP_SEQUENCE: u8 = 2;

impl Encode for Op {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Op::Noop => {
                e.u8(OP_NOOP);
            }
            Op::Sequence { seq, msg } => {
                e.u8(OP_SEQUENCE).u64(*seq);
                msg.encode(e);
            }
        }
    }
}

impl Decode for Op {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.u8()? {
            OP_NOOP => Ok(Op::Noop),
            OP_SEQUENCE => {
                let seq = d.u64()?;
                let msg = Message::decode(d)?;
                Ok(Op::Sequence { seq, msg })
            }
            tag => Err(CodecError::InvalidTag { what: "op", tag }),
        }
    }
}

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Term the entry was proposed in.
    pub term: u64,
    /// The operation.
    pub op: Op,
}

impl Encode for LogEntry {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.term);
        self.op.encode(e);
    }
}

impl Decode for LogEntry {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let term = d.u64()?;
        let op = Op::decode(d)?;
        Ok(LogEntry { term, op })
    }
}

/// A quorum protocol message, carried as the payload of
/// `Wire::Quorum` frames between the group's replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QMsg {
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// The candidate.
        candidate: ReplicaId,
        /// Index of the candidate's last log entry.
        last_index: u64,
        /// Term of the candidate's last log entry.
        last_term: u64,
    },
    /// Vote response.
    VoteReply {
        /// Voter's current term.
        term: u64,
        /// The voter.
        from: ReplicaId,
        /// Whether the ballot was granted.
        granted: bool,
    },
    /// Log replication / heartbeat.
    Append {
        /// Leader's term.
        term: u64,
        /// The leader.
        leader: ReplicaId,
        /// Index of the entry preceding `entries`.
        prev_index: u64,
        /// Term of the entry preceding `entries`.
        prev_term: u64,
        /// Entries to append (empty = heartbeat).
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        commit: u64,
    },
    /// Append response.
    AppendReply {
        /// Follower's current term.
        term: u64,
        /// The follower.
        from: ReplicaId,
        /// Whether `prev` matched and the entries were accepted.
        ok: bool,
        /// On success: the follower's new match index. On rejection: a
        /// back-off hint (the follower's best guess at where logs agree).
        index: u64,
    },
    /// Full-state catch-up for a follower whose next entry was compacted
    /// away. `image` is the leader's exported process database — the
    /// recorder checkpoint images double as the consensus snapshot.
    Snapshot {
        /// Leader's term.
        term: u64,
        /// The leader.
        leader: ReplicaId,
        /// Log index the snapshot covers through.
        index: u64,
        /// Term of the entry at `index`.
        snap_term: u64,
        /// Encoded `Vec<ProcessExport>` (see `codec` module).
        image: Vec<u8>,
    },
    /// Snapshot installation response.
    SnapshotReply {
        /// Follower's current term.
        term: u64,
        /// The follower.
        from: ReplicaId,
        /// The follower's match index after installation.
        index: u64,
    },
}

const QM_REQUEST_VOTE: u8 = 1;
const QM_VOTE_REPLY: u8 = 2;
const QM_APPEND: u8 = 3;
const QM_APPEND_REPLY: u8 = 4;
const QM_SNAPSHOT: u8 = 5;
const QM_SNAPSHOT_REPLY: u8 = 6;

impl Encode for QMsg {
    fn encode(&self, e: &mut Encoder) {
        match self {
            QMsg::RequestVote {
                term,
                candidate,
                last_index,
                last_term,
            } => {
                e.u8(QM_REQUEST_VOTE)
                    .u64(*term)
                    .u32(*candidate)
                    .u64(*last_index)
                    .u64(*last_term);
            }
            QMsg::VoteReply {
                term,
                from,
                granted,
            } => {
                e.u8(QM_VOTE_REPLY).u64(*term).u32(*from).bool(*granted);
            }
            QMsg::Append {
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                commit,
            } => {
                e.u8(QM_APPEND)
                    .u64(*term)
                    .u32(*leader)
                    .u64(*prev_index)
                    .u64(*prev_term)
                    .u64(*commit)
                    .seq(entries, |e, ent| ent.encode(e));
            }
            QMsg::AppendReply {
                term,
                from,
                ok,
                index,
            } => {
                e.u8(QM_APPEND_REPLY)
                    .u64(*term)
                    .u32(*from)
                    .bool(*ok)
                    .u64(*index);
            }
            QMsg::Snapshot {
                term,
                leader,
                index,
                snap_term,
                image,
            } => {
                e.u8(QM_SNAPSHOT)
                    .u64(*term)
                    .u32(*leader)
                    .u64(*index)
                    .u64(*snap_term)
                    .bytes(image);
            }
            QMsg::SnapshotReply { term, from, index } => {
                e.u8(QM_SNAPSHOT_REPLY).u64(*term).u32(*from).u64(*index);
            }
        }
    }
}

impl Decode for QMsg {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.u8()? {
            QM_REQUEST_VOTE => Ok(QMsg::RequestVote {
                term: d.u64()?,
                candidate: d.u32()?,
                last_index: d.u64()?,
                last_term: d.u64()?,
            }),
            QM_VOTE_REPLY => Ok(QMsg::VoteReply {
                term: d.u64()?,
                from: d.u32()?,
                granted: d.bool()?,
            }),
            QM_APPEND => {
                let term = d.u64()?;
                let leader = d.u32()?;
                let prev_index = d.u64()?;
                let prev_term = d.u64()?;
                let commit = d.u64()?;
                let entries = d.seq(LogEntry::decode)?;
                Ok(QMsg::Append {
                    term,
                    leader,
                    prev_index,
                    prev_term,
                    entries,
                    commit,
                })
            }
            QM_APPEND_REPLY => Ok(QMsg::AppendReply {
                term: d.u64()?,
                from: d.u32()?,
                ok: d.bool()?,
                index: d.u64()?,
            }),
            QM_SNAPSHOT => Ok(QMsg::Snapshot {
                term: d.u64()?,
                leader: d.u32()?,
                index: d.u64()?,
                snap_term: d.u64()?,
                image: d.bytes()?,
            }),
            QM_SNAPSHOT_REPLY => Ok(QMsg::SnapshotReply {
                term: d.u64()?,
                from: d.u32()?,
                index: d.u64()?,
            }),
            tag => Err(CodecError::InvalidTag { what: "qmsg", tag }),
        }
    }
}

/// An effect the core asks its replica to carry out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaftOut {
    /// Send `msg` to group member `to`.
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The protocol message.
        msg: QMsg,
    },
    /// A follower's next entry was compacted away: build a snapshot of
    /// the recorder state and hand it back via
    /// [`RaftCore::snapshot_built`].
    NeedSnapshot {
        /// The lagging follower.
        to: ReplicaId,
    },
    /// Install the snapshot image over the local recorder, then call
    /// [`RaftCore::snapshot_installed`].
    ApplySnapshot {
        /// The sending leader.
        leader: ReplicaId,
        /// Log index the snapshot covers through.
        index: u64,
        /// Term of the entry at `index`.
        snap_term: u64,
        /// Encoded `Vec<ProcessExport>`.
        image: Vec<u8>,
    },
    /// This replica won the election for its current term.
    BecameLeader,
    /// This replica lost leadership (saw a higher term).
    SteppedDown,
}

/// Consensus pacing. Defaults sit well inside the chaos driver's grace
/// window: elections resolve in a few hundred virtual milliseconds.
#[derive(Debug, Clone)]
pub struct RaftConfig {
    /// Leader heartbeat interval.
    pub heartbeat: SimDuration,
    /// Minimum election timeout.
    pub election_min: SimDuration,
    /// Randomized extra election timeout, in milliseconds.
    pub election_jitter_ms: u64,
    /// Max entries per Append.
    pub max_batch: usize,
    /// Compact applied entries once the log exceeds this length.
    pub compact_threshold: usize,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            heartbeat: SimDuration::from_millis(25),
            election_min: SimDuration::from_millis(80),
            election_jitter_ms: 80,
            max_batch: 16,
            compact_threshold: 256,
        }
    }
}

/// Counters the core maintains (observability).
#[derive(Debug, Clone, Default)]
pub struct RaftStats {
    /// Elections this replica started.
    pub elections_started: u64,
    /// Elections this replica won.
    pub elections_won: u64,
    /// Ballots this replica granted.
    pub votes_granted: u64,
    /// Append rejections this replica issued (log repair events).
    pub appends_rejected: u64,
    /// Snapshots this replica shipped to lagging followers.
    pub snapshots_sent: u64,
    /// Times this replica stepped down from leadership.
    pub step_downs: u64,
}

/// The consensus state machine for one replica.
pub struct RaftCore {
    id: ReplicaId,
    n: u32,
    cfg: RaftConfig,
    rng: DetRng,
    /// Durable term/vote (two-slot NVRAM cell).
    cell: DurableCell,
    term: u64,
    voted_for: Option<ReplicaId>,
    role: Role,
    leader_hint: Option<ReplicaId>,
    /// `log[i]` holds the entry at index `snap_index + 1 + i` (Raft
    /// indices start at 1; 0 is the empty-log sentinel).
    log: Vec<LogEntry>,
    snap_index: u64,
    snap_term: u64,
    commit: u64,
    applied: u64,
    next_index: Vec<u64>,
    match_index: Vec<u64>,
    votes: BTreeSet<ReplicaId>,
    election_deadline: SimTime,
    heartbeat_due: SimTime,
    stats: RaftStats,
}

impl RaftCore {
    /// Creates the core for replica `id` of an `n`-member group.
    pub fn new(id: ReplicaId, n: u32, seed: u64, cfg: RaftConfig) -> Self {
        assert!(n >= 1 && id < n, "replica id within group");
        let mut rng = DetRng::new(seed ^ 0x5175_6f72_756d_5261);
        let rng = rng.fork(id as u64);
        RaftCore {
            id,
            n,
            cfg,
            rng,
            cell: DurableCell::new(),
            term: 0,
            voted_for: None,
            role: Role::Follower,
            leader_hint: None,
            log: Vec::new(),
            snap_index: 0,
            snap_term: 0,
            commit: 0,
            applied: 0,
            next_index: vec![1; n as usize],
            match_index: vec![0; n as usize],
            votes: BTreeSet::new(),
            election_deadline: SimTime::ZERO,
            heartbeat_due: SimTime::ZERO,
            stats: RaftStats::default(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Whether this replica currently leads the group.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Best guess at the current leader.
    pub fn leader_hint(&self) -> Option<ReplicaId> {
        self.leader_hint
    }

    /// Commit index.
    pub fn commit_index(&self) -> u64 {
        self.commit
    }

    /// Applied index.
    pub fn applied_index(&self) -> u64 {
        self.applied
    }

    /// Index of the last log entry.
    pub fn last_index(&self) -> u64 {
        self.snap_index + self.log.len() as u64
    }

    /// Entries currently retained in memory (post-compaction length).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The snapshot floor (entries at or below it have been compacted).
    pub fn snap_index(&self) -> u64 {
        self.snap_index
    }

    /// Counters.
    pub fn stats(&self) -> &RaftStats {
        &self.stats
    }

    /// Replication lag of the slowest *tracked* follower, in entries
    /// (leader only; 0 otherwise).
    pub fn worst_follower_lag(&self) -> u64 {
        if self.role != Role::Leader {
            return 0;
        }
        let last = self.last_index();
        (0..self.n as usize)
            .filter(|&p| p != self.id as usize)
            .map(|p| last.saturating_sub(self.match_index[p]))
            .max()
            .unwrap_or(0)
    }

    fn last_term(&self) -> u64 {
        self.log.last().map(|e| e.term).unwrap_or(self.snap_term)
    }

    /// Term of the entry at `index`, if it is still resolvable.
    fn term_at(&self, index: u64) -> Option<u64> {
        if index == self.snap_index {
            Some(self.snap_term)
        } else if index > self.snap_index && index <= self.last_index() {
            Some(self.log[(index - self.snap_index - 1) as usize].term)
        } else {
            None
        }
    }

    fn entry_at(&self, index: u64) -> &LogEntry {
        &self.log[(index - self.snap_index - 1) as usize]
    }

    /// Write-through persistence of term/vote: the record is settled
    /// before any message promising it can be emitted, so a crash cannot
    /// tear a vote the rest of the group already counted.
    fn persist_hard(&mut self) {
        let mut e = Encoder::new();
        e.u64(self.term);
        e.option(self.voted_for.as_ref(), |e, v| {
            e.u32(*v);
        });
        self.cell.write(&e.finish());
        self.cell.settle();
    }

    fn load_hard(&mut self) {
        if let Some(buf) = self.cell.read() {
            let mut d = Decoder::new(&buf);
            if let (Ok(term), Ok(vote)) = (d.u64(), d.option(|d| d.u32())) {
                self.term = self.term.max(term);
                if self.term == term {
                    self.voted_for = vote;
                }
            }
        }
    }

    fn reset_election_deadline(&mut self, now: SimTime) {
        let jitter = SimDuration::from_millis(self.rng.below(self.cfg.election_jitter_ms.max(1)));
        self.election_deadline = now + self.cfg.election_min + jitter;
    }

    /// Begins operation (or resumes after [`RaftCore::restart`]).
    pub fn start(&mut self, now: SimTime) -> Vec<RaftOut> {
        self.reset_election_deadline(now);
        self.heartbeat_due = now + self.cfg.heartbeat;
        Vec::new()
    }

    /// Crash + restart: durable term/vote reload, battery-backed log
    /// kept, volatile apply progress rewound to the snapshot floor so
    /// the committed prefix is re-applied through the idempotent
    /// recorder path.
    pub fn restart(&mut self, now: SimTime) -> Vec<RaftOut> {
        let was_leader = self.role == Role::Leader;
        self.role = Role::Follower;
        self.leader_hint = None;
        self.votes.clear();
        self.load_hard();
        self.applied = self.snap_index;
        self.reset_election_deadline(now);
        if was_leader {
            self.stats.step_downs += 1;
        }
        Vec::new()
    }

    /// Periodic driver: election timeout and leader heartbeats.
    pub fn tick(&mut self, now: SimTime) -> Vec<RaftOut> {
        let mut out = Vec::new();
        match self.role {
            Role::Leader => {
                if now >= self.heartbeat_due {
                    self.heartbeat_due = now + self.cfg.heartbeat;
                    self.replicate_all(&mut out, true);
                }
            }
            Role::Follower | Role::Candidate => {
                if now >= self.election_deadline {
                    self.start_election(now, &mut out);
                }
            }
        }
        self.maybe_compact();
        out
    }

    fn start_election(&mut self, now: SimTime, out: &mut Vec<RaftOut>) {
        self.term += 1;
        self.voted_for = Some(self.id);
        self.persist_hard();
        self.role = Role::Candidate;
        self.leader_hint = None;
        self.votes.clear();
        self.votes.insert(self.id);
        self.stats.elections_started += 1;
        self.reset_election_deadline(now);
        if self.has_majority() {
            self.become_leader(now, out);
            return;
        }
        let (last_index, last_term) = (self.last_index(), self.last_term());
        for to in self.peers() {
            out.push(RaftOut::Send {
                to,
                msg: QMsg::RequestVote {
                    term: self.term,
                    candidate: self.id,
                    last_index,
                    last_term,
                },
            });
        }
    }

    fn peers(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.n).filter(move |&p| p != self.id)
    }

    fn has_majority(&self) -> bool {
        self.votes.len() as u32 * 2 > self.n
    }

    fn become_leader(&mut self, now: SimTime, out: &mut Vec<RaftOut>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        self.stats.elections_won += 1;
        let next = self.last_index() + 1;
        self.next_index = vec![next; self.n as usize];
        self.match_index = vec![0; self.n as usize];
        self.match_index[self.id as usize] = self.last_index();
        out.push(RaftOut::BecameLeader);
        // Committing a no-op in the new term proves leadership and pins
        // every inherited entry committed (Raft §5.4.2: a leader may not
        // count replicas for entries from earlier terms directly).
        self.append_local(Op::Noop);
        self.heartbeat_due = now + self.cfg.heartbeat;
        self.replicate_all(out, true);
    }

    fn append_local(&mut self, op: Op) -> u64 {
        self.log.push(LogEntry {
            term: self.term,
            op,
        });
        let idx = self.last_index();
        self.match_index[self.id as usize] = idx;
        if self.n == 1 {
            self.commit = idx;
        }
        idx
    }

    /// Leader-only: appends `op` to the replicated log and starts
    /// replicating it. Returns the entry's index, or `None` if this
    /// replica is not the leader (the caller re-observes and retries via
    /// the next leader).
    pub fn propose(&mut self, op: Op, out: &mut Vec<RaftOut>) -> Option<u64> {
        if self.role != Role::Leader {
            return None;
        }
        let idx = self.append_local(op);
        self.replicate_all(out, false);
        Some(idx)
    }

    fn replicate_all(&mut self, out: &mut Vec<RaftOut>, force_empty: bool) {
        for to in self.peers().collect::<Vec<_>>() {
            self.replicate_one(to, out, force_empty);
        }
    }

    fn replicate_one(&mut self, to: ReplicaId, out: &mut Vec<RaftOut>, force_empty: bool) {
        let next = self.next_index[to as usize];
        if next <= self.snap_index {
            // The entries the follower needs were compacted away: ship
            // the recorder state itself as the snapshot.
            out.push(RaftOut::NeedSnapshot { to });
            return;
        }
        let last = self.last_index();
        if next > last && !force_empty {
            return;
        }
        let prev_index = next - 1;
        let Some(prev_term) = self.term_at(prev_index) else {
            out.push(RaftOut::NeedSnapshot { to });
            return;
        };
        let hi = last.min(prev_index + self.cfg.max_batch as u64);
        let entries: Vec<LogEntry> = (next..=hi).map(|i| self.entry_at(i).clone()).collect();
        out.push(RaftOut::Send {
            to,
            msg: QMsg::Append {
                term: self.term,
                leader: self.id,
                prev_index,
                prev_term,
                entries,
                commit: self.commit,
            },
        });
    }

    /// The replica built the snapshot image requested by
    /// [`RaftOut::NeedSnapshot`]; ships it. The snapshot covers the
    /// leader's applied prefix, so the leader compacts to `applied`
    /// first — the image and the floor must agree.
    pub fn snapshot_built(&mut self, to: ReplicaId, image: Vec<u8>, out: &mut Vec<RaftOut>) {
        if self.role != Role::Leader {
            return;
        }
        self.compact_to_applied();
        self.stats.snapshots_sent += 1;
        out.push(RaftOut::Send {
            to,
            msg: QMsg::Snapshot {
                term: self.term,
                leader: self.id,
                index: self.snap_index,
                snap_term: self.snap_term,
                image,
            },
        });
    }

    /// The replica installed a snapshot delivered by
    /// [`RaftOut::ApplySnapshot`]: adopt its floor and acknowledge.
    pub fn snapshot_installed(
        &mut self,
        leader: ReplicaId,
        index: u64,
        snap_term: u64,
    ) -> Vec<RaftOut> {
        if index > self.snap_index {
            self.log.clear();
            self.snap_index = index;
            self.snap_term = snap_term;
            self.commit = self.commit.max(index);
            self.applied = self.applied.max(index);
        }
        vec![RaftOut::Send {
            to: leader,
            msg: QMsg::SnapshotReply {
                term: self.term,
                from: self.id,
                index: self.snap_index,
            },
        }]
    }

    fn compact_to_applied(&mut self) {
        if self.applied <= self.snap_index {
            return;
        }
        let keep = self.applied;
        let term = self.term_at(keep).expect("applied entry resolvable");
        self.log.drain(..(keep - self.snap_index) as usize);
        self.snap_index = keep;
        self.snap_term = term;
    }

    fn maybe_compact(&mut self) {
        if self.log.len() > self.cfg.compact_threshold && self.applied > self.snap_index {
            self.compact_to_applied();
        }
    }

    fn adopt_term(&mut self, term: u64, out: &mut Vec<RaftOut>) {
        if term <= self.term {
            return;
        }
        let was_leader = self.role == Role::Leader;
        self.term = term;
        self.voted_for = None;
        self.persist_hard();
        self.role = Role::Follower;
        self.votes.clear();
        if was_leader {
            self.stats.step_downs += 1;
            out.push(RaftOut::SteppedDown);
        }
    }

    /// Handles one protocol message from a fellow replica.
    pub fn on_msg(&mut self, now: SimTime, msg: QMsg) -> Vec<RaftOut> {
        let mut out = Vec::new();
        match msg {
            QMsg::RequestVote {
                term,
                candidate,
                last_index,
                last_term,
            } => {
                self.adopt_term(term, &mut out);
                let up_to_date = last_term > self.last_term()
                    || (last_term == self.last_term() && last_index >= self.last_index());
                let can_vote = self.voted_for.is_none() || self.voted_for == Some(candidate);
                let granted = term == self.term && up_to_date && can_vote;
                if granted && self.voted_for != Some(candidate) {
                    self.voted_for = Some(candidate);
                    self.persist_hard();
                }
                if granted {
                    self.stats.votes_granted += 1;
                    self.reset_election_deadline(now);
                }
                out.push(RaftOut::Send {
                    to: candidate,
                    msg: QMsg::VoteReply {
                        term: self.term,
                        from: self.id,
                        granted,
                    },
                });
            }
            QMsg::VoteReply {
                term,
                from,
                granted,
            } => {
                self.adopt_term(term, &mut out);
                if self.role == Role::Candidate && term == self.term && granted {
                    self.votes.insert(from);
                    if self.has_majority() {
                        self.become_leader(now, &mut out);
                    }
                }
            }
            QMsg::Append {
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                commit,
            } => {
                self.adopt_term(term, &mut out);
                if term < self.term {
                    out.push(RaftOut::Send {
                        to: leader,
                        msg: QMsg::AppendReply {
                            term: self.term,
                            from: self.id,
                            ok: false,
                            index: 0,
                        },
                    });
                    return out;
                }
                // Same-term candidate yields to the established leader.
                self.role = Role::Follower;
                self.leader_hint = Some(leader);
                self.reset_election_deadline(now);
                self.on_append(leader, prev_index, prev_term, entries, commit, &mut out);
            }
            QMsg::AppendReply {
                term,
                from,
                ok,
                index,
            } => {
                self.adopt_term(term, &mut out);
                if self.role != Role::Leader || term != self.term {
                    return out;
                }
                let f = from as usize;
                if ok {
                    if index > self.match_index[f] {
                        self.match_index[f] = index;
                    }
                    self.next_index[f] = self.match_index[f] + 1;
                    self.advance_commit();
                    if self.next_index[f] <= self.last_index() {
                        self.replicate_one(from, &mut out, false);
                    }
                } else {
                    self.stats.appends_rejected += 1;
                    let fallback = self.next_index[f].saturating_sub(1).max(1);
                    self.next_index[f] = fallback.min(index + 1).max(1);
                    self.replicate_one(from, &mut out, true);
                }
            }
            QMsg::Snapshot {
                term,
                leader,
                index,
                snap_term,
                image,
            } => {
                self.adopt_term(term, &mut out);
                if term < self.term {
                    return out;
                }
                self.role = Role::Follower;
                self.leader_hint = Some(leader);
                self.reset_election_deadline(now);
                if index > self.snap_index {
                    out.push(RaftOut::ApplySnapshot {
                        leader,
                        index,
                        snap_term,
                        image,
                    });
                } else {
                    out.push(RaftOut::Send {
                        to: leader,
                        msg: QMsg::SnapshotReply {
                            term: self.term,
                            from: self.id,
                            index: self.snap_index,
                        },
                    });
                }
            }
            QMsg::SnapshotReply { term, from, index } => {
                self.adopt_term(term, &mut out);
                if self.role != Role::Leader || term != self.term {
                    return out;
                }
                let f = from as usize;
                if index > self.match_index[f] {
                    self.match_index[f] = index;
                }
                self.next_index[f] = self.match_index[f].max(self.snap_index) + 1;
                self.advance_commit();
                if self.next_index[f] <= self.last_index() {
                    self.replicate_one(from, &mut out, false);
                }
            }
        }
        out
    }

    fn on_append(
        &mut self,
        leader: ReplicaId,
        mut prev_index: u64,
        mut prev_term: u64,
        mut entries: Vec<LogEntry>,
        commit: u64,
        out: &mut Vec<RaftOut>,
    ) {
        // Entries at or below our snapshot floor are already committed
        // and applied here; skip them and anchor at the floor.
        if prev_index < self.snap_index {
            let skip = (self.snap_index - prev_index).min(entries.len() as u64);
            entries.drain(..skip as usize);
            prev_index = self.snap_index;
            prev_term = self.snap_term;
        }
        let reply = |s: &Self, ok: bool, index: u64| QMsg::AppendReply {
            term: s.term,
            from: s.id,
            ok,
            index,
        };
        match self.term_at(prev_index) {
            None => {
                // We don't have prev at all: ask the leader to back off
                // to our last index.
                let hint = self.last_index();
                out.push(RaftOut::Send {
                    to: leader,
                    msg: reply(self, false, hint),
                });
                return;
            }
            Some(t) if t != prev_term => {
                // Conflict at prev: our entry is from a deposed leader.
                let hint = prev_index.saturating_sub(1).max(self.snap_index);
                out.push(RaftOut::Send {
                    to: leader,
                    msg: reply(self, false, hint),
                });
                return;
            }
            Some(_) => {}
        }
        // Append, resolving conflicts in the leader's favor (Raft log
        // matching: a conflicting suffix belongs to a deposed leader and
        // is unacknowledged by definition).
        let mut idx = prev_index;
        for entry in entries {
            idx += 1;
            match self.term_at(idx) {
                Some(t) if t == entry.term => {} // already have it
                Some(_) => {
                    self.log.truncate((idx - self.snap_index - 1) as usize);
                    self.log.push(entry);
                }
                None => self.log.push(entry),
            }
        }
        let match_index = idx;
        if commit > self.commit {
            self.commit = commit.min(self.last_index());
        }
        out.push(RaftOut::Send {
            to: leader,
            msg: reply(self, true, match_index),
        });
    }

    fn advance_commit(&mut self) {
        let last = self.last_index();
        let mut n = last;
        while n > self.commit {
            if self.term_at(n) == Some(self.term) {
                let count = (0..self.n as usize)
                    .filter(|&p| self.match_index[p] >= n)
                    .count() as u32;
                if count * 2 > self.n {
                    self.commit = n;
                    break;
                }
            }
            n -= 1;
        }
    }

    /// Drains committed-but-unapplied entries, advancing the applied
    /// cursor. The caller applies them to the recorder in order; after a
    /// restart this re-yields the committed prefix above the snapshot
    /// floor (application is idempotent).
    pub fn take_applicable(&mut self) -> Vec<(u64, LogEntry)> {
        let mut out = Vec::new();
        while self.applied < self.commit {
            self.applied += 1;
            out.push((self.applied, self.entry_at(self.applied).clone()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_demos::ids::{Channel, MessageId, ProcessId};
    use publishing_demos::message::{Message, MessageHeader};

    fn msg(seq: u64) -> Message {
        Message {
            header: MessageHeader {
                id: MessageId {
                    sender: ProcessId::new(1, 1),
                    seq,
                },
                to: ProcessId::new(2, 1),
                code: 0,
                channel: Channel::DEFAULT,
                deliver_to_kernel: false,
            },
            passed_link: None,
            body: vec![seq as u8],
        }
    }

    /// Perfect-network harness: runs ticks and delivers every Send
    /// in-order until quiescent.
    struct Net {
        cores: Vec<RaftCore>,
        /// Replicas currently partitioned away (drop all their traffic).
        down: Vec<bool>,
        /// Every entry each live replica has applied, in apply order.
        applied: Vec<Vec<(u64, LogEntry)>>,
    }

    impl Net {
        fn new(n: u32) -> Self {
            let mut cores: Vec<RaftCore> = (0..n)
                .map(|i| RaftCore::new(i, n, 7, RaftConfig::default()))
                .collect();
            for c in &mut cores {
                c.start(SimTime::ZERO);
            }
            Net {
                cores,
                down: vec![false; n as usize],
                applied: vec![Vec::new(); n as usize],
            }
        }

        fn dispatch(&mut self, now: SimTime, from: ReplicaId, outs: Vec<RaftOut>) {
            let mut queue: Vec<(ReplicaId, ReplicaId, QMsg)> = Vec::new();
            let mut local: Vec<(ReplicaId, RaftOut)> = Vec::new();
            for o in outs {
                match o {
                    RaftOut::Send { to, msg } => queue.push((from, to, msg)),
                    other => local.push((from, other)),
                }
            }
            for (at, o) in local {
                self.handle_local(now, at, o, &mut queue);
            }
            while let Some((src, dst, m)) = queue.pop() {
                if self.down[src as usize] || self.down[dst as usize] {
                    continue;
                }
                let outs = self.cores[dst as usize].on_msg(now, m);
                for o in outs {
                    match o {
                        RaftOut::Send { to, msg } => queue.push((dst, to, msg)),
                        other => {
                            let mut q2 = Vec::new();
                            self.handle_local(now, dst, other, &mut q2);
                            queue.extend(q2);
                        }
                    }
                }
            }
        }

        fn handle_local(
            &mut self,
            _now: SimTime,
            at: ReplicaId,
            o: RaftOut,
            queue: &mut Vec<(ReplicaId, ReplicaId, QMsg)>,
        ) {
            match o {
                RaftOut::NeedSnapshot { to } => {
                    let mut outs = Vec::new();
                    self.cores[at as usize].snapshot_built(to, Vec::new(), &mut outs);
                    for o in outs {
                        if let RaftOut::Send { to, msg } = o {
                            queue.push((at, to, msg));
                        }
                    }
                }
                RaftOut::ApplySnapshot {
                    leader,
                    index,
                    snap_term,
                    ..
                } => {
                    let outs = self.cores[at as usize].snapshot_installed(leader, index, snap_term);
                    for o in outs {
                        if let RaftOut::Send { to, msg } = o {
                            queue.push((at, to, msg));
                        }
                    }
                }
                _ => {}
            }
        }

        fn run(&mut self, from_ms: u64, to_ms: u64) {
            for t in from_ms..to_ms {
                let now = SimTime::from_millis(t);
                for i in 0..self.cores.len() {
                    if self.down[i] {
                        continue;
                    }
                    let outs = self.cores[i].tick(now);
                    self.dispatch(now, i as u32, outs);
                    // A live host applies committed entries promptly.
                    let newly = self.cores[i].take_applicable();
                    self.applied[i].extend(newly);
                }
            }
        }

        fn leader(&self) -> Option<usize> {
            self.cores.iter().position(|c| c.is_leader())
        }
    }

    #[test]
    fn single_replica_leads_itself() {
        let mut net = Net::new(1);
        net.run(0, 300);
        assert_eq!(net.leader(), Some(0));
        let mut out = Vec::new();
        let idx = net.cores[0].propose(
            Op::Sequence {
                seq: 0,
                msg: msg(1),
            },
            &mut out,
        );
        assert!(idx.is_some());
        assert_eq!(net.cores[0].commit_index(), idx.unwrap());
    }

    #[test]
    fn three_replicas_elect_exactly_one_leader() {
        let mut net = Net::new(3);
        net.run(0, 500);
        let leaders: Vec<_> = net.cores.iter().filter(|c| c.is_leader()).collect();
        assert_eq!(leaders.len(), 1, "exactly one leader");
        // All replicas agree on the term and have committed the no-op.
        let term = leaders[0].term();
        for c in &net.cores {
            assert_eq!(c.term(), term);
            assert!(c.commit_index() >= 1, "no-op committed everywhere");
        }
    }

    #[test]
    fn committed_entries_apply_identically_everywhere() {
        let mut net = Net::new(3);
        net.run(0, 500);
        let l = net.leader().expect("leader");
        for i in 0..10u64 {
            let mut out = Vec::new();
            net.cores[l].propose(
                Op::Sequence {
                    seq: i,
                    msg: msg(i + 1),
                },
                &mut out,
            );
            net.dispatch(SimTime::from_millis(500 + i), l as u32, out);
        }
        net.run(500, 600);
        // Same committed prefix on every replica, in the same order.
        let applied = &net.applied;
        assert!(applied[0].len() >= 11, "noop + 10 entries");
        assert_eq!(applied[0], applied[1]);
        assert_eq!(applied[1], applied[2]);
    }

    #[test]
    fn leader_failover_resumes_without_losing_committed_entries() {
        let mut net = Net::new(3);
        net.run(0, 500);
        let l = net.leader().expect("leader");
        for i in 0..5u64 {
            let mut out = Vec::new();
            net.cores[l].propose(
                Op::Sequence {
                    seq: i,
                    msg: msg(i + 1),
                },
                &mut out,
            );
            net.dispatch(SimTime::from_millis(500 + i), l as u32, out);
        }
        net.run(500, 520);
        let committed_before = net.cores[l].commit_index();
        assert!(committed_before >= 6);
        // Partition the leader away; a new one takes over.
        net.down[l] = true;
        net.run(520, 1000);
        let l2 = net
            .cores
            .iter()
            .position(|c| c.is_leader() && c.term() > net.cores[l].term())
            .expect("new leader elected");
        assert_ne!(l2, l);
        // The new leader retained every committed entry.
        assert!(net.cores[l2].last_index() >= committed_before);
        let mut out = Vec::new();
        net.cores[l2].propose(
            Op::Sequence {
                seq: 100,
                msg: msg(100),
            },
            &mut out,
        );
        net.dispatch(SimTime::from_millis(1000), l2 as u32, out);
        net.run(1000, 1100);
        assert!(net.cores[l2].commit_index() > committed_before);
    }

    #[test]
    fn deposed_leader_suffix_is_overwritten() {
        let mut net = Net::new(3);
        net.run(0, 500);
        let l = net.leader().expect("leader");
        // Leader appends locally while partitioned: these entries are
        // never acknowledged and must be discarded after failover.
        net.down[l] = true;
        let mut sink = Vec::new();
        net.cores[l].propose(
            Op::Sequence {
                seq: 50,
                msg: msg(50),
            },
            &mut sink,
        );
        net.cores[l].propose(
            Op::Sequence {
                seq: 51,
                msg: msg(51),
            },
            &mut sink,
        );
        net.run(500, 1000);
        let l2 = net
            .cores
            .iter()
            .position(|c| c.is_leader())
            .expect("new leader");
        assert_ne!(l2, l);
        let mut out = Vec::new();
        net.cores[l2].propose(
            Op::Sequence {
                seq: 1,
                msg: msg(60),
            },
            &mut out,
        );
        net.dispatch(SimTime::from_millis(1000), l2 as u32, out);
        net.run(1000, 1050);
        // Heal: the old leader rejoins and its stale suffix is replaced.
        net.down[l] = false;
        net.run(1050, 1400);
        assert!(!net.cores[l].is_leader());
        let healed: Vec<_> = net.cores[l].take_applicable();
        // Every applied entry on the healed replica matches the new
        // leader's log (log matching).
        for (idx, entry) in &healed {
            assert_eq!(net.cores[l2].term_at(*idx), Some(entry.term));
        }
    }

    #[test]
    fn qmsg_codec_roundtrip() {
        let samples = vec![
            QMsg::RequestVote {
                term: 3,
                candidate: 1,
                last_index: 7,
                last_term: 2,
            },
            QMsg::VoteReply {
                term: 3,
                from: 2,
                granted: true,
            },
            QMsg::Append {
                term: 4,
                leader: 0,
                prev_index: 9,
                prev_term: 3,
                entries: vec![
                    LogEntry {
                        term: 4,
                        op: Op::Noop,
                    },
                    LogEntry {
                        term: 4,
                        op: Op::Sequence {
                            seq: 11,
                            msg: msg(5),
                        },
                    },
                ],
                commit: 9,
            },
            QMsg::AppendReply {
                term: 4,
                from: 1,
                ok: false,
                index: 6,
            },
            QMsg::Snapshot {
                term: 5,
                leader: 2,
                index: 40,
                snap_term: 4,
                image: vec![9, 8, 7],
            },
            QMsg::SnapshotReply {
                term: 5,
                from: 0,
                index: 40,
            },
        ];
        for m in samples {
            let buf = m.encode_to_vec();
            assert_eq!(QMsg::decode_all(&buf).unwrap(), m);
        }
    }

    #[test]
    fn compaction_triggers_snapshot_catchup() {
        let cfg = RaftConfig {
            compact_threshold: 8,
            ..RaftConfig::default()
        };
        let mut cores: Vec<RaftCore> = (0..3)
            .map(|i| RaftCore::new(i, 3, 7, cfg.clone()))
            .collect();
        for c in &mut cores {
            c.start(SimTime::ZERO);
        }
        let mut net = Net {
            cores,
            down: vec![false; 3],
            applied: vec![Vec::new(); 3],
        };
        net.run(0, 500);
        let l = net.leader().expect("leader");
        let lagger = (0..3).find(|&i| i != l).unwrap();
        net.down[lagger] = true;
        for i in 0..40u64 {
            let mut out = Vec::new();
            net.cores[l].propose(
                Op::Sequence {
                    seq: i,
                    msg: msg(i + 1),
                },
                &mut out,
            );
            net.dispatch(SimTime::from_millis(500 + i), l as u32, out);
        }
        // Run long enough for ticks to compact the applied prefix.
        net.run(540, 900);
        assert!(
            net.cores[l].snap_index() > 0,
            "leader compacted its applied prefix"
        );
        // The lagging replica heals and catches up via snapshot.
        net.down[lagger] = false;
        net.run(900, 1400);
        assert!(
            net.cores[lagger].commit_index() >= net.cores[l].snap_index(),
            "lagger caught up at least to the snapshot floor"
        );
    }
}
