//! Observability collection: projecting component instruments into the
//! `publishing-obs` registry/probe model.
//!
//! The world drivers (single-recorder [`crate::World`], sharded tier in
//! `publishing-shard`) own every component and therefore are the only
//! places a whole-run picture can be assembled. This module keeps that
//! assembly in one place so both drivers file the same metric paths and
//! the `obs_report` artifact looks identical regardless of topology.
//!
//! Everything here is read-only over component state and derived from
//! virtual time, so collecting a snapshot never perturbs a simulation:
//! runs with and without observation produce identical fingerprints.

use std::collections::BTreeMap;

use publishing_demos::kernel::Kernel;
use publishing_net::lan::Lan;
use publishing_obs::probe::RecoveryLag;
use publishing_obs::registry::MetricsRegistry;
use publishing_obs::span::SpanLog;
use publishing_obs::util::{UtilizationReport, XvalRow};
use publishing_sim::ledger::{ResourceKind, ResourceUsage, Timeline, BIN_NS};
use publishing_sim::time::SimTime;

use crate::manager::RecoveryManager;
use crate::node::RecorderNode;
use crate::recorder::Recorder;

/// Files one kernel's instruments under `node/<n>/...`.
pub fn kernel_metrics(reg: &mut MetricsRegistry, k: &Kernel) {
    let p = format!("node/{}/kernel", k.node().0);
    let s = k.stats();
    reg.counter(format!("{p}/activations"), s.activations.get());
    reg.counter(format!("{p}/msgs_sent"), s.msgs_sent.get());
    reg.counter(format!("{p}/msgs_received"), s.msgs_received.get());
    reg.counter(format!("{p}/dups_dropped"), s.dups_dropped.get());
    reg.counter(
        format!("{p}/read_order_notices"),
        s.read_order_notices.get(),
    );
    reg.counter(format!("{p}/recorder_blocked"), s.recorder_blocked.get());
    reg.counter(format!("{p}/bad_frames"), s.bad_frames.get());
    reg.counter(format!("{p}/creates"), s.creates.get());
    reg.counter(format!("{p}/destroys"), s.destroys.get());
    reg.counter(format!("{p}/checkpoints_taken"), s.checkpoints_taken.get());
    reg.counter(format!("{p}/recovery_deferred"), s.recovery_deferred.get());
    reg.gauge(format!("{p}/cpu_used_ms"), s.cpu_used.as_millis_f64());
    reg.counter(format!("{p}/span_events"), k.spans().total());

    let t = k.transport_stats();
    let p = format!("node/{}/transport", k.node().0);
    reg.counter(format!("{p}/sent"), t.sent.get());
    reg.counter(format!("{p}/datagrams"), t.datagrams.get());
    reg.counter(format!("{p}/retransmits"), t.retransmits.get());
    reg.counter(format!("{p}/delivered"), t.delivered.get());
    reg.counter(format!("{p}/duplicates"), t.duplicates.get());
    reg.counter(format!("{p}/acked"), t.acked.get());
    reg.counter(format!("{p}/stale_epoch"), t.stale_epoch.get());
}

/// Files a recorder node's instruments (recorder, manager, store, disks)
/// under `<prefix>/...`. The sharded tier passes `shard/<i>`, the single
/// recorder world passes `recorder`.
pub fn recorder_node_metrics(
    reg: &mut MetricsRegistry,
    prefix: &str,
    rn: &RecorderNode,
    now: SimTime,
) {
    let rec = rn.recorder();
    let s = rec.stats();
    reg.counter(format!("{prefix}/captured"), s.captured.get());
    reg.counter(format!("{prefix}/published"), s.published.get());
    reg.counter(format!("{prefix}/bytes_published"), s.bytes_published.get());
    reg.counter(format!("{prefix}/duplicates"), s.duplicates.get());
    reg.counter(format!("{prefix}/orphan_acks"), s.orphan_acks.get());
    reg.counter(format!("{prefix}/notices"), s.notices.get());
    reg.counter(format!("{prefix}/checkpoints"), s.checkpoints.get());
    reg.gauge(format!("{prefix}/cpu_used_ms"), s.cpu_used.as_millis_f64());
    reg.counter(
        format!("{prefix}/pending_depth"),
        rec.pending_depth() as u64,
    );
    reg.linear_histogram(&format!("{prefix}/queue_depth"), &s.depth_hist);
    reg.counter(format!("{prefix}/span_events"), rec.spans().total());

    let m = rn.manager().stats();
    reg.counter(
        format!("{prefix}/mgr/process_recoveries"),
        m.process_recoveries.get(),
    );
    reg.counter(format!("{prefix}/mgr/node_crashes"), m.node_crashes.get());
    reg.counter(format!("{prefix}/mgr/replayed"), m.replayed.get());
    reg.counter(format!("{prefix}/mgr/completed"), m.completed.get());
    reg.counter(format!("{prefix}/mgr/recursive"), m.recursive.get());
    reg.counter(format!("{prefix}/mgr/stale_replies"), m.stale_replies.get());

    let store = rec.store();
    let st = store.stats();
    reg.counter(format!("{prefix}/store/appended"), st.appended.get());
    reg.counter(
        format!("{prefix}/store/pages_written"),
        st.pages_written.get(),
    );
    reg.counter(format!("{prefix}/store/pages_freed"), st.pages_freed.get());
    reg.counter(format!("{prefix}/store/compactions"), st.compactions.get());
    reg.counter(
        format!("{prefix}/store/records_compacted"),
        st.records_compacted.get(),
    );
    reg.counter(format!("{prefix}/store/checkpoints"), st.checkpoints.get());
    for i in 0..store.n_disks() {
        let d = store.disk_stats(i);
        let p = format!("{prefix}/disk/{i}");
        reg.counter(format!("{p}/writes"), d.writes.get());
        reg.counter(format!("{p}/reads"), d.reads.get());
        reg.counter(format!("{p}/bytes_written"), d.bytes_written.get());
        reg.counter(format!("{p}/bytes_read"), d.bytes_read.get());
        reg.gauge(format!("{p}/utilization"), d.busy.utilization(now));
        reg.summary(&format!("{p}/response_ms"), &d.response_ms);
    }
}

/// Assembles the typed resource-utilization ledger for one topology:
/// the shared medium, every node's CPU (split into protocol vs. program
/// time), every guaranteed-transport channel plus the aggregated
/// receive budget of each destination, and each recorder's publishing
/// CPU and disks. Both world drivers (and the sharded/quorum tiers)
/// call this so every topology ranks resources with identical rules.
///
/// Rows whose timeline never saw a busy span and whose meter counted
/// nothing are skipped — a zero cost model produces no CPU rows rather
/// than a wall of idle entries. The medium row is always present so
/// the report states its utilization even when idle.
pub fn utilization_report<'a>(
    kernels: impl IntoIterator<Item = &'a Kernel>,
    recorders: impl IntoIterator<Item = (u32, &'a Recorder)>,
    lan: &dyn Lan,
    now: SimTime,
) -> UtilizationReport {
    let window = now.saturating_since(SimTime::ZERO);
    let window_s = window.as_millis_f64() / 1000.0;
    let mut resources = Vec::new();
    let mut xval = Vec::new();

    let stats = lan.stats();
    let medium_tl = stats.busy.timeline_as_of(now);
    resources.push(ResourceUsage::from_timeline(
        ResourceKind::Medium,
        "medium".into(),
        0,
        0,
        &medium_tl,
        window,
        0.0,
        0,
        stats.submitted.get(),
        stats.collisions.get(),
    ));
    // Utilization law ρ = λ·S for the medium: λ from the submit counter,
    // S from the *configured* bandwidth and interpacket gap applied to
    // the mean observed frame — an analytic prediction fully independent
    // of the busy-time integrator it is checked against. Exact only
    // while the medium is uncontended: collisions and backoff occupy
    // wire time the service-demand product cannot see, so contention
    // shows up as a flagged divergence (which is the point).
    if let Some(cfg) = lan.config() {
        let submitted = stats.submitted.get();
        if !medium_tl.is_empty() && submitted > 0 && window_s > 0.0 {
            let mean_bytes = stats.wire_bytes.get() as f64 / submitted as f64;
            let service_s = cfg.frame_time(mean_bytes as usize).as_millis_f64() / 1000.0;
            let lambda = submitted as f64 / window_s;
            xval.push(XvalRow::check(
                "medium",
                "utilization",
                publishing_queueing::xval::utilization_law(lambda, service_s),
                medium_tl.busy_total().as_millis_f64() / window.as_millis_f64(),
                0.25,
            ));
        }
    }

    // Per-destination receive budget: merged inbound-channel timelines,
    // summed occupancy (concurrent senders queue independently).
    let mut recv: BTreeMap<u32, (Timeline, f64, u64, u64, u32)> = BTreeMap::new();
    for k in kernels {
        let n = k.node().0;
        let s = k.stats();
        // The run queue waits on the node's single CPU, which the ledger
        // splits into protocol and program time; both rows carry it.
        let run_q = k.run_queue_gauge().mean_over(now, window);
        let run_peak = k.run_queue_gauge().peak();
        let proto = k.cpu_proto_timeline();
        if !proto.is_empty() {
            resources.push(ResourceUsage::from_timeline(
                ResourceKind::NodeCpuProto,
                format!("cpu{n}:proto"),
                n,
                0,
                proto,
                window,
                run_q,
                run_peak,
                s.msgs_sent.get() + s.msgs_received.get(),
                0,
            ));
        }
        let prog = k.cpu_prog_timeline();
        if !prog.is_empty() {
            resources.push(ResourceUsage::from_timeline(
                ResourceKind::NodeCpuProg,
                format!("cpu{n}:prog"),
                n,
                0,
                prog,
                window,
                run_q,
                run_peak,
                s.activations.get(),
                0,
            ));
        }
        for (dst, m) in k.channel_meters() {
            let tl = m.busy.timeline_as_of(now);
            if tl.is_empty() && m.completed == 0 {
                continue;
            }
            let mean_q = m.level.mean_over(now, window);
            let peak_q = m.level.peak();
            resources.push(ResourceUsage::from_timeline(
                ResourceKind::Transport,
                format!("xport {n}->{}", dst.0),
                n,
                dst.0,
                &tl,
                window,
                mean_q,
                peak_q,
                m.completed,
                0,
            ));
            // Little's law L = λ·W per channel: throughput and sojourn
            // come from per-message accounting, occupancy from the
            // level-gauge integral — two independent meters that must
            // agree on any stable channel.
            if m.completed > 0 && window_s > 0.0 {
                let lambda = m.completed as f64 / window_s;
                let sojourn_s = m.mean_sojourn_ms() / 1000.0;
                xval.push(XvalRow::check(
                    format!("xport {n}->{}", dst.0),
                    "little",
                    publishing_queueing::xval::littles_law(lambda, sojourn_s),
                    m.level.mean_over(now, window),
                    0.10,
                ));
            }
            let e = recv.entry(dst.0).or_default();
            e.0.merge(&tl);
            e.1 += mean_q;
            e.2 += peak_q;
            e.3 += m.completed;
            e.4 += 1;
        }
    }
    for (dst, (tl, mean_q, peak_q, completed, channels)) in recv {
        // With a single inbound channel the xport row already *is* the
        // destination's receive budget; only aggregates add information.
        if channels < 2 {
            continue;
        }
        resources.push(ResourceUsage::from_timeline(
            ResourceKind::Transport,
            format!("recv {dst}"),
            dst,
            dst,
            &tl,
            window,
            mean_q,
            peak_q,
            completed,
            0,
        ));
    }

    for (idx, rec) in recorders {
        let s = rec.stats();
        let tl = rec.cpu_timeline();
        if !tl.is_empty() {
            resources.push(ResourceUsage::from_timeline(
                ResourceKind::RecorderCpu,
                format!("rec{idx}:cpu"),
                idx,
                0,
                tl,
                window,
                s.depth_hist.summary().mean(),
                s.depth_hist.summary().max().unwrap_or(0.0) as u64,
                s.captured.get(),
                0,
            ));
        }
        let store = rec.store();
        for d in 0..store.n_disks() {
            let ds = store.disk_stats(d);
            let tl = ds.busy.timeline_as_of(now);
            if tl.is_empty() {
                continue;
            }
            resources.push(ResourceUsage::from_timeline(
                ResourceKind::Disk,
                format!("rec{idx}:disk{d}"),
                idx,
                d as u32,
                &tl,
                window,
                0.0,
                0,
                ds.writes.get() + ds.reads.get(),
                0,
            ));
        }
    }

    UtilizationReport {
        window_ms: window.as_millis_f64(),
        bin_ms: BIN_NS as f64 / 1e6,
        resources,
        xval,
    }
}

/// Counts §4.7 suppressions per *sending* process from kernel span logs.
///
/// Suppress events carry the suppressed message's id, so the sender half
/// of the key attributes the suppression to the recovering process whose
/// resends were cut off. Bounded by span-ring retention, which is fine
/// for a point-in-time probe.
pub fn suppressed_by_sender<'a>(logs: impl IntoIterator<Item = &'a SpanLog>) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for log in logs {
        for ev in log.events_in(publishing_obs::span::Stage::Suppress) {
            *out.entry(ev.key.sender).or_insert(0) += 1;
        }
    }
    out
}

/// Builds recovery-lag probes for every process in a recorder's database.
///
/// `suppressed` maps packed sender pid → suppression count (from
/// [`suppressed_by_sender`] over the kernels' span logs).
pub fn recovery_lags(
    rec: &Recorder,
    now: SimTime,
    suppressed: &BTreeMap<u64, u64>,
) -> Vec<RecoveryLag> {
    let mut out = Vec::new();
    for pid in rec.known_pids() {
        let Some(entry) = rec.entry(pid) else {
            continue;
        };
        out.push(RecoveryLag {
            subject: pid.as_u64(),
            recovering: entry.recovering,
            messages_behind: entry.arrivals.len() as u64,
            checkpoint_age_ms: now
                .saturating_since(entry.estimator.checkpoint_at)
                .as_millis_f64(),
            suppressed: suppressed.get(&pid.as_u64()).copied().unwrap_or(0),
            recovery_ms: 0.0,
            critical_path_ms: 0.0,
        });
    }
    out
}

/// Messages the manager's in-flight recoveries still have to replay:
/// the replay streams of every live job, summed. Zero once every job
/// has committed (the job set empties).
pub fn replay_lag(rec: &Recorder, mgr: &RecoveryManager) -> u64 {
    mgr.job_pids()
        .iter()
        .map(|pid| rec.replay_stream(*pid).len() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_obs::span::{MsgKey, Stage};

    #[test]
    fn suppression_attribution_is_per_sender() {
        let mut a = SpanLog::default();
        let mut b = SpanLog::default();
        let k1 = MsgKey { sender: 7, seq: 1 };
        let k2 = MsgKey { sender: 9, seq: 4 };
        a.record(SimTime::ZERO, k1, Stage::Suppress, 3, 0);
        a.record(SimTime::ZERO, k1, Stage::Publish, 3, 0); // not a suppression
        b.record(SimTime::ZERO, k1, Stage::Suppress, 5, 1);
        b.record(SimTime::ZERO, k2, Stage::Suppress, 5, 2);
        let by = suppressed_by_sender([&a, &b]);
        assert_eq!(by.get(&7), Some(&2));
        assert_eq!(by.get(&9), Some(&1));
    }
}
