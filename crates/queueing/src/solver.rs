//! An open queuing network solver.
//!
//! The paper solved its model numerically with IBM's RESQ2; we provide
//! the equivalent for the quantities Figure 5.5 reports. For an open
//! network of single-server FCFS stations fed by independent Poisson
//! flows, station utilization is exactly ρ = Σ λ·E\[S\] regardless of
//! service distribution, and M/M/1 formulas give queue lengths and
//! response times for reporting. A discrete-event runner cross-validates
//! the analytic answers in the tests.

use publishing_sim::rng::DetRng;
use std::collections::BTreeMap;

/// One traffic class through one station.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Label (for reports).
    pub name: String,
    /// Arrival rate, jobs per second.
    pub rate: f64,
    /// Mean service time at the station, seconds.
    pub service: f64,
}

/// A single-server FCFS station.
#[derive(Debug, Clone, Default)]
pub struct Station {
    /// Label (for reports).
    pub name: String,
    /// The traffic classes it serves.
    pub flows: Vec<Flow>,
}

impl Station {
    /// Creates an empty station.
    pub fn new(name: impl Into<String>) -> Self {
        Station {
            name: name.into(),
            flows: Vec::new(),
        }
    }

    /// Adds a flow.
    pub fn flow(mut self, name: impl Into<String>, rate: f64, service: f64) -> Self {
        self.flows.push(Flow {
            name: name.into(),
            rate,
            service,
        });
        self
    }

    /// Total arrival rate.
    pub fn lambda(&self) -> f64 {
        self.flows.iter().map(|f| f.rate).sum()
    }

    /// Utilization ρ = Σ λ·E\[S\]; exceeds 1.0 when saturated.
    pub fn utilization(&self) -> f64 {
        self.flows.iter().map(|f| f.rate * f.service).sum()
    }

    /// Mean service time across classes, weighted by rate.
    pub fn mean_service(&self) -> f64 {
        let l = self.lambda();
        if l == 0.0 {
            return 0.0;
        }
        self.utilization() / l
    }

    /// M/M/1 mean number in system, `None` when saturated.
    pub fn mean_jobs(&self) -> Option<f64> {
        let rho = self.utilization();
        (rho < 1.0).then(|| rho / (1.0 - rho))
    }

    /// M/M/1 mean response time (queueing + service), `None` when
    /// saturated.
    pub fn response_time(&self) -> Option<f64> {
        let rho = self.utilization();
        if rho >= 1.0 {
            return None;
        }
        Some(self.mean_service() / (1.0 - rho))
    }

    /// Simulates the station for `horizon` seconds of Poisson arrivals
    /// with exponential service, returning the measured busy fraction.
    pub fn simulate_utilization(&self, horizon: f64, rng: &mut DetRng) -> f64 {
        if self.lambda() == 0.0 {
            return 0.0;
        }
        // Merge class arrival processes: next arrival per class.
        let mut next: Vec<(f64, usize)> = self
            .flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.rate > 0.0)
            .map(|(i, f)| (rng.exponential(1.0 / f.rate), i))
            .collect();
        let mut server_free_at = 0.0f64;
        let mut busy = 0.0f64;
        while let Some(k) = next
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
            .map(|(k, _)| k)
        {
            let (t, class) = next[k];
            if t >= horizon {
                break;
            }
            let service = rng.exponential(self.flows[class].service);
            let start = server_free_at.max(t);
            server_free_at = start + service;
            busy += service;
            let gap = rng.exponential(1.0 / self.flows[class].rate);
            next[k] = (t + gap, class);
        }
        (busy / horizon).min(1.0)
    }
}

/// An open network: a set of stations evaluated independently (jobs do
/// not queue for each other across stations in the utilization metric).
#[derive(Debug, Clone, Default)]
pub struct OpenNetwork {
    /// The stations.
    pub stations: Vec<Station>,
}

impl OpenNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        OpenNetwork::default()
    }

    /// Adds a station.
    pub fn station(mut self, s: Station) -> Self {
        self.stations.push(s);
        self
    }

    /// Per-station utilizations, by name.
    pub fn utilizations(&self) -> BTreeMap<String, f64> {
        self.stations
            .iter()
            .map(|s| (s.name.clone(), s.utilization()))
            .collect()
    }

    /// Returns `true` if any station is saturated (ρ ≥ 1).
    pub fn saturated(&self) -> bool {
        self.stations.iter().any(|s| s.utilization() >= 1.0)
    }

    /// The most loaded station.
    pub fn bottleneck(&self) -> Option<&Station> {
        self.stations.iter().max_by(|a, b| {
            a.utilization()
                .partial_cmp(&b.utilization())
                .expect("finite")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_rate_times_service() {
        let s = Station::new("cpu")
            .flow("short", 100.0, 0.002)
            .flow("long", 10.0, 0.01);
        assert!((s.utilization() - 0.3).abs() < 1e-12);
        assert!((s.lambda() - 110.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_formulas() {
        let s = Station::new("disk").flow("w", 50.0, 0.01); // ρ = 0.5
        assert!((s.mean_jobs().unwrap() - 1.0).abs() < 1e-12);
        assert!((s.response_time().unwrap() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn saturated_station_reports_none() {
        let s = Station::new("disk").flow("w", 200.0, 0.01); // ρ = 2
        assert!(s.mean_jobs().is_none());
        assert!(s.response_time().is_none());
        assert!(s.utilization() > 1.0);
    }

    #[test]
    fn simulation_matches_analytic_utilization() {
        let mut rng = DetRng::new(42);
        for rho_target in [0.2, 0.5, 0.8] {
            let s = Station::new("x").flow("f", 100.0, rho_target / 100.0);
            let measured = s.simulate_utilization(2_000.0, &mut rng);
            assert!(
                (measured - rho_target).abs() < 0.03,
                "target {rho_target}, measured {measured}"
            );
        }
    }

    #[test]
    fn multi_class_simulation_matches() {
        let mut rng = DetRng::new(7);
        let s = Station::new("cpu")
            .flow("a", 40.0, 0.005)
            .flow("b", 20.0, 0.01);
        let analytic = s.utilization(); // 0.4
        let measured = s.simulate_utilization(2_000.0, &mut rng);
        assert!(
            (measured - analytic).abs() < 0.03,
            "{measured} vs {analytic}"
        );
    }

    #[test]
    fn bottleneck_and_saturation() {
        let net = OpenNetwork::new()
            .station(Station::new("cpu").flow("f", 10.0, 0.01))
            .station(Station::new("disk").flow("f", 10.0, 0.2));
        assert!(net.saturated());
        assert_eq!(net.bottleneck().unwrap().name, "disk");
        let u = net.utilizations();
        assert!((u["cpu"] - 0.1).abs() < 1e-12);
        assert!((u["disk"] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_station_is_idle() {
        let s = Station::new("idle");
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.mean_service(), 0.0);
        let mut rng = DetRng::new(1);
        assert_eq!(s.simulate_utilization(10.0, &mut rng), 0.0);
    }
}
