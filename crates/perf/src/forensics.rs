//! The regression-forensics engine: differential run attribution.
//!
//! `bench_compare` can say *that* a gated metric crossed its threshold;
//! this module says *why*. It diffs two runs at two granularities and
//! produces the ranked diagnosis types of `publishing_obs::forensics`:
//!
//! - **Snapshot level** ([`diff_snapshots`] / [`explain_comparison`]):
//!   runs the standard comparator, then attributes every violated rule
//!   to the snapshot's *attribution families* — the virtual-time
//!   profile categories (`profile_*_ms`), the per-kind ledger busy
//!   times (`util_*_busy_ms`), critical-path stage times
//!   (`critical_path_*_ms`), what-if knee predictions (for knee rules),
//!   and the host allocation meters — ranked by how far each moved in
//!   the "more work" direction. Binding-resource flips and allocation
//!   drift are diagnosed even when no rule fired.
//! - **Report level** ([`diff_reports`]): stage-latency histogram bin
//!   diffs, per-resource ledger shifts, profile-category deltas, and
//!   the full hop-by-hop critical-path alignment
//!   (`publishing_obs::causal::align_paths`).
//!
//! Significance is deterministic: virtual metrics are exactly
//! replayable, so *any* delta above quantization is real (the virtual
//! noise floor exists only to absorb f64 round-off); host metrics get
//! explicit noise floors and wall-clock time is never a suspect. The
//! self-diff invariant — any run diffed against itself yields an empty
//! diagnosis — holds by construction and is pinned by proptests and
//! the `forensics --smoke` CI gate.

use crate::compare::{compare, default_rules, Comparison};
use crate::snapshot::{ScenarioSnapshot, Snapshot};
use publishing_obs::causal::align_paths;
use publishing_obs::forensics::{Finding, ForensicsReport, Suspect, SuspectKind};
use publishing_obs::report::ObsReport;
use publishing_sim::stats::LogHistogram;

/// Deterministic significance floors for metric deltas.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Relative floor for virtual metrics (f64 round-off only — two
    /// same-seed runs are byte-identical, so anything above this is a
    /// real change).
    pub virt_rel: f64,
    /// Absolute floor for virtual metrics.
    pub virt_abs: f64,
    /// Relative floor for host metrics (allocation counts repeat
    /// closely but not exactly across processes).
    pub host_rel: f64,
    /// Absolute floor for host allocation counts.
    pub host_abs: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            virt_rel: 1e-9,
            virt_abs: 1e-9,
            host_rel: 0.05,
            host_abs: 4096.0,
        }
    }
}

/// Which snapshot section a metric came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Deterministic virtual-time metrics.
    Virt,
    /// Host-side readings (wall clock, allocations).
    Host,
}

/// One signed metric delta between two scenario snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub metric: String,
    /// Snapshot section the metric lives in.
    pub section: Section,
    /// Baseline value.
    pub prev: f64,
    /// Candidate value.
    pub new: f64,
    /// Whether the delta clears the section's noise floor. Wall-clock
    /// time is never significant by design.
    pub significant: bool,
}

impl MetricDelta {
    /// Signed change, candidate minus baseline.
    pub fn delta(&self) -> f64 {
        self.new - self.prev
    }
}

fn clears_floor(prev: f64, new: f64, rel: f64, abs: f64) -> bool {
    // The floor is symmetric in (prev, new), so diff(a, b) and
    // diff(b, a) agree on significance — the antisymmetry invariant.
    (new - prev).abs() > (rel * prev.abs().max(new.abs())).max(abs)
}

/// Signed per-metric deltas between two scenario snapshots, virtual
/// section first, each section in metric-name order. Metrics present on
/// only one side are layout drift, not deltas, and are skipped (the
/// comparator reports those separately). Antisymmetry holds exactly:
/// `metric_deltas(a, b)` and `metric_deltas(b, a)` pair up with negated
/// deltas and identical significance verdicts.
pub fn metric_deltas(
    prev: &ScenarioSnapshot,
    new: &ScenarioSnapshot,
    noise: &NoiseModel,
) -> Vec<MetricDelta> {
    let mut out = Vec::new();
    for (metric, &pv) in &prev.virt {
        let Some(&nv) = new.virt.get(metric) else {
            continue;
        };
        out.push(MetricDelta {
            metric: metric.clone(),
            section: Section::Virt,
            prev: pv,
            new: nv,
            significant: clears_floor(pv, nv, noise.virt_rel, noise.virt_abs),
        });
    }
    for (metric, &pv) in &prev.host {
        let Some(&nv) = new.host.get(metric) else {
            continue;
        };
        out.push(MetricDelta {
            metric: metric.clone(),
            section: Section::Host,
            prev: pv,
            new: nv,
            significant: metric != "wall_ms"
                && clears_floor(pv, nv, noise.host_rel, noise.host_abs),
        });
    }
    out
}

/// Knobs for the snapshot-level diagnosis.
#[derive(Debug, Clone)]
pub struct ForensicsOptions {
    /// Suspects kept per finding, most suspicious first.
    pub top_k: usize,
    /// Significance floors.
    pub noise: NoiseModel,
}

impl Default for ForensicsOptions {
    fn default() -> Self {
        ForensicsOptions {
            top_k: 3,
            noise: NoiseModel::default(),
        }
    }
}

/// Whether a violated metric is a capacity/lens knee, whose suspects
/// are *drops* in the what-if knee predictions rather than cost growth.
fn is_knee_metric(metric: &str) -> bool {
    metric.ends_with("capacity_users") || metric.ends_with("lens_knee")
}

fn suspect_kind(metric: &str, knee: bool) -> Option<SuspectKind> {
    if metric.starts_with("profile_") {
        Some(SuspectKind::Stage)
    } else if metric.starts_with("util_") {
        Some(SuspectKind::Resource)
    } else if metric.starts_with("critical_path_") {
        Some(SuspectKind::CriticalPath)
    } else if knee && (metric.ends_with("_predicted") || metric.ends_with("_confirmed")) {
        // A knee regression inherits the what-if matrix as its suspect
        // pool: the knob whose predicted knee collapsed names the
        // physics that moved.
        Some(SuspectKind::Stage)
    } else {
        None
    }
}

/// Ranks the attribution-family suspects behind one violated metric.
/// Cost families (profile, ledger busy time, critical-path stages,
/// allocations) rank by growth; knee rules additionally rank what-if
/// prediction *drops*. Scores are relative to the baseline value with a
/// small scale floor so a metric appearing from zero cannot drown an
/// exact doubling; ties break by metric name, so the ranking is
/// deterministic.
fn rank_suspects(
    prev: &ScenarioSnapshot,
    new: &ScenarioSnapshot,
    violated: &str,
    opts: &ForensicsOptions,
) -> Vec<Suspect> {
    let knee = is_knee_metric(violated);
    // (worseness, suspect) candidates.
    let mut cands: Vec<(f64, Suspect)> = Vec::new();
    let mut scale: f64 = 0.0;
    for (metric, &pv) in &prev.virt {
        if metric == violated {
            continue;
        }
        let Some(&nv) = new.virt.get(metric) else {
            continue;
        };
        let Some(kind) = suspect_kind(metric, knee) else {
            continue;
        };
        if !clears_floor(pv, nv, opts.noise.virt_rel, opts.noise.virt_abs) {
            continue;
        }
        let prediction = knee && (metric.ends_with("_predicted") || metric.ends_with("_confirmed"));
        let worse = if prediction { pv - nv } else { nv - pv };
        if worse <= 0.0 {
            continue;
        }
        scale = scale.max(pv.abs()).max(nv.abs());
        cands.push((
            worse,
            Suspect {
                kind,
                name: metric.clone(),
                prev: pv,
                new: nv,
                detail: String::new(),
            },
        ));
    }
    for metric in ["allocations", "alloc_bytes"] {
        let (Some(&pv), Some(&nv)) = (prev.host.get(metric), new.host.get(metric)) else {
            continue;
        };
        if nv - pv <= 0.0 || !clears_floor(pv, nv, opts.noise.host_rel, opts.noise.host_abs) {
            continue;
        }
        scale = scale.max(pv.abs()).max(nv.abs());
        cands.push((
            nv - pv,
            Suspect {
                kind: SuspectKind::Allocation,
                name: metric.to_string(),
                prev: pv,
                new: nv,
                detail: String::new(),
            },
        ));
    }
    let floor = (scale * 0.01).max(1e-9);
    let mut scored: Vec<(f64, Suspect)> = cands
        .into_iter()
        .map(|(worse, s)| (worse / s.prev.abs().max(floor), s))
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.name.cmp(&b.1.name)));
    let mut out: Vec<Suspect> = scored
        .into_iter()
        .take(opts.top_k)
        .map(|(_, s)| s)
        .collect();
    // A binding flip outranks everything: the run is on a different
    // bottleneck, so per-metric growth is downstream of that.
    if let Some(flip) = binding_flip(prev, new) {
        out.insert(0, flip);
        out.truncate(opts.top_k.max(1));
    }
    out
}

/// The binding-flip suspect for a scenario pair, when the binding
/// resource recorded in the snapshots changed identity.
fn binding_flip(prev: &ScenarioSnapshot, new: &ScenarioSnapshot) -> Option<Suspect> {
    let (pb, nb) = (
        prev.fingerprints.get("binding")?,
        new.fingerprints.get("binding")?,
    );
    (pb != nb).then(|| Suspect {
        kind: SuspectKind::BindingFlip,
        name: "binding".into(),
        prev: 0.0,
        new: 0.0,
        detail: format!("{pb} -> {nb}"),
    })
}

/// Explains an existing comparator verdict: one finding per violated
/// rule with its ranked suspects, plus standalone findings for binding
/// flips and significant allocation drift in scenarios the rules let
/// through. Diffing a snapshot against itself yields no findings.
pub fn explain_comparison(
    baseline: &str,
    prev: &Snapshot,
    new: &Snapshot,
    c: &Comparison,
    opts: &ForensicsOptions,
) -> ForensicsReport {
    let mut report = ForensicsReport {
        baseline: baseline.to_string(),
        findings: Vec::new(),
    };
    if c.incomparable.is_some() {
        return report;
    }
    for d in c.regressions() {
        let (Some(ps), Some(ns)) = (prev.scenario(&d.scenario), new.scenario(&d.scenario)) else {
            continue;
        };
        report.findings.push(Finding {
            scenario: d.scenario.clone(),
            subject: d.metric.clone(),
            prev: d.prev,
            new: d.new,
            suspects: rank_suspects(ps, ns, &d.metric, opts),
        });
    }
    for ps in &prev.scenarios {
        let Some(ns) = new.scenario(&ps.name) else {
            continue;
        };
        let regressed = report.findings.iter().any(|f| f.scenario == ps.name);
        if !regressed {
            if let Some(flip) = binding_flip(ps, ns) {
                report.findings.push(Finding {
                    scenario: ps.name.clone(),
                    subject: "binding_flip".into(),
                    prev: 0.0,
                    new: 0.0,
                    suspects: vec![flip],
                });
            }
        }
        let allocs: Vec<Suspect> = metric_deltas(ps, ns, &opts.noise)
            .into_iter()
            .filter(|m| m.section == Section::Host && m.significant && m.metric != "wall_ms")
            .map(|m| Suspect {
                kind: SuspectKind::Allocation,
                name: m.metric,
                prev: m.prev,
                new: m.new,
                detail: String::new(),
            })
            .collect();
        if !allocs.is_empty() {
            let lead = &allocs[0];
            report.findings.push(Finding {
                scenario: ps.name.clone(),
                subject: "allocations".into(),
                prev: lead.prev,
                new: lead.new,
                suspects: allocs,
            });
        }
    }
    report
}

/// Runs the standard comparator over two snapshots and explains the
/// verdict. Returns both: the comparison still carries the exit-code
/// contract, the forensics report carries the diagnosis.
pub fn diff_snapshots(
    baseline: &str,
    prev: &Snapshot,
    new: &Snapshot,
    opts: &ForensicsOptions,
) -> (Comparison, ForensicsReport) {
    let c = compare(prev, new, &default_rules());
    let report = explain_comparison(baseline, prev, new, &c, opts);
    (c, report)
}

/// The lower bound of log-histogram bucket `i` in its recorded unit.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Bucket-level diff of two stage-latency histograms: a suspect per
/// differing bucket (virtual-time counts are exact, so any difference
/// is real), highest |count delta| first, ties by bucket order.
fn histogram_suspects(prev: &LogHistogram, new: &LogHistogram, top_k: usize) -> Vec<Suspect> {
    let mut diffs: Vec<(u64, usize, Suspect)> = Vec::new();
    for i in 0..64 {
        let (pc, nc) = (prev.bucket(i), new.bucket(i));
        if pc == nc {
            continue;
        }
        diffs.push((
            pc.abs_diff(nc),
            i,
            Suspect {
                kind: SuspectKind::Stage,
                name: format!("{}us..{}us", bucket_lo(i), 1u64 << (i + 1).min(63)),
                prev: pc as f64,
                new: nc as f64,
                detail: format!("latency bucket {i}"),
            },
        ));
    }
    diffs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    diffs.into_iter().take(top_k).map(|(_, _, s)| s).collect()
}

/// Report-level differential diagnosis: stage-latency histogram bin
/// diffs, virtual-time profile deltas, per-resource ledger shifts with
/// binding-flip detection, and the hop-by-hop critical-path alignment.
/// Diffing a report against itself yields an empty diagnosis.
pub fn diff_reports(
    baseline: &str,
    prev: &ObsReport,
    new: &ObsReport,
    opts: &ForensicsOptions,
) -> ForensicsReport {
    let mut report = ForensicsReport {
        baseline: baseline.to_string(),
        findings: Vec::new(),
    };
    let scenario = "run".to_string();
    for (stage, ph, nh) in [
        (
            "publish_to_capture_us",
            &prev.latencies.publish_to_capture_us,
            &new.latencies.publish_to_capture_us,
        ),
        (
            "capture_to_sequence_us",
            &prev.latencies.capture_to_sequence_us,
            &new.latencies.capture_to_sequence_us,
        ),
        (
            "publish_to_deliver_us",
            &prev.latencies.publish_to_deliver_us,
            &new.latencies.publish_to_deliver_us,
        ),
    ] {
        let suspects = histogram_suspects(ph, nh, opts.top_k);
        if !suspects.is_empty() {
            report.findings.push(Finding {
                scenario: scenario.clone(),
                subject: format!("{stage}_histogram"),
                prev: ph.summary().count() as f64,
                new: nh.summary().count() as f64,
                suspects,
            });
        }
    }
    let mut profile: Vec<Suspect> = Vec::new();
    for (name, pd) in prev.profile.iter() {
        let nd = new.profile.get(name);
        if pd != nd {
            profile.push(Suspect {
                kind: SuspectKind::Stage,
                name: name.to_string(),
                prev: pd.as_millis_f64(),
                new: nd.as_millis_f64(),
                detail: String::new(),
            });
        }
    }
    for (name, nd) in new.profile.iter() {
        // Categories charged only by the candidate run (get() treats
        // never-charged as zero, so prev-side zero is exact).
        if prev.profile.get(name) == publishing_sim::time::SimDuration::ZERO
            && nd != publishing_sim::time::SimDuration::ZERO
            && !profile.iter().any(|s| s.name == name)
        {
            profile.push(Suspect {
                kind: SuspectKind::Stage,
                name: name.to_string(),
                prev: 0.0,
                new: nd.as_millis_f64(),
                detail: "category appeared".into(),
            });
        }
    }
    if !profile.is_empty() {
        profile.sort_by(|a, b| {
            (b.new - b.prev)
                .total_cmp(&(a.new - a.prev))
                .then_with(|| a.name.cmp(&b.name))
        });
        profile.truncate(opts.top_k);
        report.findings.push(Finding {
            scenario: scenario.clone(),
            subject: "profile".into(),
            prev: 0.0,
            new: 0.0,
            suspects: profile,
        });
    }
    if let (Some(pu), Some(nu)) = (&prev.utilization, &new.utilization) {
        let (pb, nb) = (
            pu.binding().map(|r| r.name.clone()).unwrap_or_default(),
            nu.binding().map(|r| r.name.clone()).unwrap_or_default(),
        );
        if pb != nb {
            report.findings.push(Finding {
                scenario: scenario.clone(),
                subject: "binding_flip".into(),
                prev: 0.0,
                new: 0.0,
                suspects: vec![Suspect {
                    kind: SuspectKind::BindingFlip,
                    name: "binding".into(),
                    prev: 0.0,
                    new: 0.0,
                    detail: format!("{pb} -> {nb}"),
                }],
            });
        }
        let mut shifts: Vec<Suspect> = Vec::new();
        for pr in &pu.resources {
            let Some(nr) = nu.resources.iter().find(|r| r.name == pr.name) else {
                shifts.push(Suspect {
                    kind: SuspectKind::Resource,
                    name: pr.name.clone(),
                    prev: pr.busy_ms,
                    new: 0.0,
                    detail: "resource disappeared".into(),
                });
                continue;
            };
            if clears_floor(
                pr.busy_ms,
                nr.busy_ms,
                opts.noise.virt_rel,
                opts.noise.virt_abs,
            ) {
                shifts.push(Suspect {
                    kind: SuspectKind::Resource,
                    name: pr.name.clone(),
                    prev: pr.busy_ms,
                    new: nr.busy_ms,
                    detail: format!("kind {}", pr.kind.label()),
                });
            }
        }
        for nr in &nu.resources {
            if !pu.resources.iter().any(|r| r.name == nr.name) {
                shifts.push(Suspect {
                    kind: SuspectKind::Resource,
                    name: nr.name.clone(),
                    prev: 0.0,
                    new: nr.busy_ms,
                    detail: "resource appeared".into(),
                });
            }
        }
        if !shifts.is_empty() {
            shifts.sort_by(|a, b| {
                (b.new - b.prev)
                    .abs()
                    .total_cmp(&(a.new - a.prev).abs())
                    .then_with(|| a.name.cmp(&b.name))
            });
            shifts.truncate(opts.top_k);
            report.findings.push(Finding {
                scenario: scenario.clone(),
                subject: "utilization".into(),
                prev: 0.0,
                new: 0.0,
                suspects: shifts,
            });
        }
    }
    match (&prev.critical_path, &new.critical_path) {
        (Some(pc), Some(nc)) => {
            let al = align_paths(pc, nc);
            if !al.is_clean() {
                let mut hops: Vec<Suspect> = al
                    .hops
                    .iter()
                    .filter(|h| {
                        h.status != publishing_obs::causal::HopStatus::Matched
                            || h.delta_ms() != 0.0
                    })
                    .map(|h| Suspect {
                        kind: SuspectKind::CriticalPath,
                        name: h.category.to_string(),
                        prev: h.baseline_ms,
                        new: h.run_ms,
                        detail: format!("{} {}", h.status.label(), h.label),
                    })
                    .collect();
                hops.sort_by(|a, b| {
                    (b.new - b.prev)
                        .abs()
                        .total_cmp(&(a.new - a.prev).abs())
                        .then_with(|| a.name.cmp(&b.name))
                });
                hops.truncate(opts.top_k);
                report.findings.push(Finding {
                    scenario,
                    subject: "critical_path".into(),
                    prev: al.baseline_total_ms,
                    new: al.run_total_ms,
                    suspects: hops,
                });
            }
        }
        (None, None) => {}
        (pc, nc) => {
            report.findings.push(Finding {
                scenario,
                subject: "critical_path".into(),
                prev: pc.as_ref().map_or(0.0, |p| p.total().as_millis_f64()),
                new: nc.as_ref().map_or(0.0, |p| p.total().as_millis_f64()),
                suspects: vec![Suspect {
                    kind: SuspectKind::CriticalPath,
                    name: "path_present".into(),
                    prev: f64::from(u8::from(pc.is_some())),
                    new: f64::from(u8::from(nc.is_some())),
                    detail: "recovery path on one side only".into(),
                }],
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_sim::time::{SimDuration, SimTime};

    fn scenario(pairs: &[(&str, f64)]) -> ScenarioSnapshot {
        let mut s = ScenarioSnapshot::new("t");
        for (k, v) in pairs {
            s.virt(*k, *v);
        }
        s
    }

    fn snap(sc: ScenarioSnapshot) -> Snapshot {
        let mut s = Snapshot::new("smoke");
        s.scenarios.push(sc);
        s
    }

    #[test]
    fn self_diff_is_empty() {
        let mut sc = scenario(&[
            ("publish_to_deliver_us_p99", 16384.0),
            ("profile_kernel_cpu_ms", 10.0),
            ("util_cpu_proto_busy_ms", 12.5),
        ]);
        sc.host("wall_ms", 3.25);
        sc.host("allocations", 100_000.0);
        sc.fingerprints.insert("binding".into(), "recv 2".into());
        let s = snap(sc);
        let (c, report) = diff_snapshots("self", &s, &s, &ForensicsOptions::default());
        assert_eq!(c.exit_code(), 0);
        assert!(report.is_empty(), "{}", report.render());
    }

    #[test]
    fn doubled_cpu_ranks_the_cpu_family_first() {
        let prev = snap(scenario(&[
            ("publish_to_deliver_us_p99", 16384.0),
            ("profile_kernel_cpu_ms", 10.0),
            ("util_cpu_proto_busy_ms", 12.0),
            ("util_medium_busy_ms", 40.0),
        ]));
        let new = snap(scenario(&[
            ("publish_to_deliver_us_p99", 32768.0),
            ("profile_kernel_cpu_ms", 20.0),
            ("util_cpu_proto_busy_ms", 24.0),
            ("util_medium_busy_ms", 41.0),
        ]));
        let (c, report) = diff_snapshots("base", &prev, &new, &ForensicsOptions::default());
        assert_eq!(c.exit_code(), 1);
        let f = &report.findings[0];
        assert_eq!(f.subject, "publish_to_deliver_us_p99");
        // kernel_cpu and cpu_proto both doubled (rel +1.0); the medium
        // barely moved. Ties break by name: profile_ before util_.
        assert_eq!(f.suspects[0].name, "profile_kernel_cpu_ms");
        assert_eq!(f.suspects[1].name, "util_cpu_proto_busy_ms");
        assert!(f
            .suspects
            .iter()
            .all(|s| s.name != "util_medium_busy_ms" || f.suspects.len() > 2));
    }

    #[test]
    fn knee_regression_inherits_whatif_prediction_drops() {
        let prev = snap(scenario(&[
            ("perfect_lens_knee", 141.0),
            ("perfect_proto_cpu_predicted", 282.0),
            ("perfect_wire_predicted", 141.0),
        ]));
        let new = snap(scenario(&[
            ("perfect_lens_knee", 70.0),
            ("perfect_proto_cpu_predicted", 140.0),
            ("perfect_wire_predicted", 141.0),
        ]));
        let (c, report) = diff_snapshots("base", &prev, &new, &ForensicsOptions::default());
        assert_eq!(c.exit_code(), 1);
        let f = &report.findings[0];
        assert_eq!(f.subject, "perfect_lens_knee");
        assert_eq!(f.suspects[0].name, "perfect_proto_cpu_predicted");
    }

    #[test]
    fn binding_flip_is_found_even_without_a_regression() {
        let mut a = scenario(&[("spans_total", 10.0)]);
        a.fingerprints.insert("binding".into(), "recv 2".into());
        let mut b = scenario(&[("spans_total", 10.0)]);
        b.fingerprints.insert("binding".into(), "medium".into());
        let (c, report) = diff_snapshots("base", &snap(a), &snap(b), &ForensicsOptions::default());
        assert_eq!(c.exit_code(), 0, "flip alone does not gate");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].subject, "binding_flip");
        assert_eq!(report.findings[0].suspects[0].detail, "recv 2 -> medium");
    }

    #[test]
    fn allocation_drift_clears_its_noise_floor() {
        let mut a = scenario(&[]);
        a.host("wall_ms", 5.0);
        a.host("allocations", 100_000.0);
        let mut b = scenario(&[]);
        b.host("wall_ms", 50.0); // wall clock is never a suspect
        b.host("allocations", 103_000.0); // +3% < 5% floor
        let (_, quiet) = diff_snapshots(
            "base",
            &snap(a.clone()),
            &snap(b),
            &ForensicsOptions::default(),
        );
        assert!(quiet.is_empty(), "{}", quiet.render());
        let mut c = scenario(&[]);
        c.host("wall_ms", 5.0);
        c.host("allocations", 140_000.0); // +40% clears it
        let (_, loud) = diff_snapshots("base", &snap(a), &snap(c), &ForensicsOptions::default());
        assert_eq!(loud.findings.len(), 1);
        assert_eq!(loud.findings[0].subject, "allocations");
        assert_eq!(loud.findings[0].suspects[0].kind, SuspectKind::Allocation);
    }

    #[test]
    fn metric_deltas_are_antisymmetric() {
        let mut a = scenario(&[("x", 10.0), ("y", 0.0)]);
        a.host("allocations", 1000.0);
        let mut b = scenario(&[("x", 12.0), ("y", 3.0)]);
        b.host("allocations", 900.0);
        let ab = metric_deltas(&a, &b, &NoiseModel::default());
        let ba = metric_deltas(&b, &a, &NoiseModel::default());
        assert_eq!(ab.len(), ba.len());
        for (f, r) in ab.iter().zip(&ba) {
            assert_eq!(f.metric, r.metric);
            assert_eq!(f.delta(), -r.delta());
            assert_eq!(f.significant, r.significant);
        }
    }

    #[test]
    fn report_self_diff_is_empty_and_injected_latency_shows() {
        let mut prev = ObsReport {
            at_ms: 100.0,
            ..Default::default()
        };
        for x in [100u64, 200, 400] {
            prev.latencies.publish_to_deliver_us.record(x);
        }
        prev.profile
            .charge("kernel_cpu", SimDuration::from_millis(10));
        let selfd = diff_reports("self", &prev, &prev, &ForensicsOptions::default());
        assert!(selfd.is_empty(), "{}", selfd.render());
        let mut new = prev.clone();
        new.latencies.publish_to_deliver_us.record(100_000);
        new.profile
            .charge("kernel_cpu", SimDuration::from_millis(10));
        let d = diff_reports("base", &prev, &new, &ForensicsOptions::default());
        assert!(!d.is_empty());
        assert!(d
            .findings
            .iter()
            .any(|f| f.subject == "publish_to_deliver_us_histogram"));
        assert!(d.findings.iter().any(|f| f.subject == "profile"
            && f.suspects[0].name == "kernel_cpu"
            && f.suspects[0].new == 20.0));
    }

    #[test]
    fn report_diff_aligns_critical_paths() {
        use publishing_obs::causal::{CriticalPath, Segment};
        let seg = |cat: &'static str, from: u64, to: u64| Segment {
            category: cat,
            kind: None,
            from: SimTime::from_micros(from),
            to: SimTime::from_micros(to),
            label: format!("{cat} hop"),
        };
        let mut prev = ObsReport {
            at_ms: 100.0,
            ..Default::default()
        };
        prev.critical_path = Some(CriticalPath {
            crash_at: SimTime::from_micros(1000),
            converged_at: SimTime::from_micros(2000),
            segments: vec![seg("replay", 1000, 1700), seg("commit", 1700, 2000)],
        });
        let mut new = prev.clone();
        new.critical_path = Some(CriticalPath {
            crash_at: SimTime::from_micros(1000),
            converged_at: SimTime::from_micros(2600),
            segments: vec![seg("replay", 1000, 2300), seg("commit", 2300, 2600)],
        });
        let d = diff_reports("base", &prev, &new, &ForensicsOptions::default());
        let f = d
            .findings
            .iter()
            .find(|f| f.subject == "critical_path")
            .expect("path finding");
        assert_eq!(f.suspects[0].name, "replay");
        assert!((f.suspects[0].new - f.suspects[0].prev - 0.6).abs() < 1e-9);
    }
}
