//! Fault-injection plans.
//!
//! §1.1.2 classifies faults by detectability and determinism; publishing
//! recovers *detected, non-deterministic* faults, rounded up to crashes of
//! the affected processes. The injector therefore speaks in crashes: of a
//! single process, of a whole node (all its processes), or of a recorder.
//! It also models the message-level faults the transport must mask: frame
//! loss and corruption.

use crate::rng::DetRng;
use crate::time::SimTime;

/// What is made to crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashTarget {
    /// One process, identified by `(node, local index)`.
    Process {
        /// Node hosting the process.
        node: u32,
        /// Local index on that node.
        local: u32,
    },
    /// An entire processing node (crash of all its processes, §1.1.2).
    Node(u32),
    /// A recorder node, identified by recorder index.
    Recorder(u32),
}

/// A single scheduled crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// When the fault is detected (and the target halts).
    pub at: SimTime,
    /// What crashes.
    pub target: CrashTarget,
}

/// A deterministic fault plan: an ordered list of crashes plus message
/// fault probabilities.
///
/// # Examples
///
/// ```
/// use publishing_sim::fault::{CrashTarget, FaultPlan};
/// use publishing_sim::time::SimTime;
///
/// let plan = FaultPlan::new()
///     .crash_at(SimTime::from_millis(50), CrashTarget::Node(1))
///     .with_frame_loss(0.01);
/// assert_eq!(plan.crashes().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crashes: Vec<Crash>,
    frame_loss: f64,
    frame_corruption: f64,
    frame_duplication: f64,
}

impl FaultPlan {
    /// Creates an empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash of `target` at time `at`.
    pub fn crash_at(mut self, at: SimTime, target: CrashTarget) -> Self {
        self.crashes.push(Crash { at, target });
        self.crashes.sort_by_key(|c| c.at);
        self
    }

    /// Sets the independent per-frame loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_frame_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.frame_loss = p;
        self
    }

    /// Sets the independent per-frame corruption probability (frame arrives
    /// with a bad checksum, exercising the link layer's discard path).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_frame_corruption(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.frame_corruption = p;
        self
    }

    /// Sets the independent per-frame duplication probability (the frame
    /// arrives twice, at distinct times — e.g. a retransmission whose
    /// original was not actually lost).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_frame_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.frame_duplication = p;
        self
    }

    /// Returns the crash schedule, sorted by time.
    pub fn crashes(&self) -> &[Crash] {
        &self.crashes
    }

    /// Returns the per-frame loss probability.
    pub fn frame_loss(&self) -> f64 {
        self.frame_loss
    }

    /// Returns the per-frame corruption probability.
    pub fn frame_corruption(&self) -> f64 {
        self.frame_corruption
    }

    /// Returns the per-frame duplication probability.
    pub fn frame_duplication(&self) -> f64 {
        self.frame_duplication
    }

    /// Draws whether a frame is lost, using the caller's RNG stream.
    pub fn roll_loss(&self, rng: &mut DetRng) -> bool {
        self.frame_loss > 0.0 && rng.chance(self.frame_loss)
    }

    /// Draws whether a frame is corrupted in flight.
    pub fn roll_corruption(&self, rng: &mut DetRng) -> bool {
        self.frame_corruption > 0.0 && rng.chance(self.frame_corruption)
    }

    /// Draws whether a frame arrives twice. Like the other rolls, a zero
    /// probability consumes no randomness, so plans without duplication
    /// leave every existing RNG stream untouched.
    pub fn roll_duplication(&self, rng: &mut DetRng) -> bool {
        self.frame_duplication > 0.0 && rng.chance(self.frame_duplication)
    }

    /// Generates a random crash schedule: `n` crashes uniform over
    /// `[0, horizon)` against uniformly chosen process targets.
    ///
    /// Used by the property tests to explore the crash-schedule space.
    pub fn random_process_crashes(
        rng: &mut DetRng,
        n: usize,
        horizon: SimTime,
        nodes: u32,
        procs_per_node: u32,
    ) -> Self {
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let at = SimTime::from_nanos(rng.below(horizon.as_nanos().max(1)));
            let node = rng.below(nodes as u64) as u32;
            let local = rng.below(procs_per_node as u64) as u32;
            plan = plan.crash_at(at, CrashTarget::Process { node, local });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn crashes_sorted_by_time() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_millis(30), CrashTarget::Node(2))
            .crash_at(SimTime::from_millis(10), CrashTarget::Node(1));
        let times: Vec<_> = plan.crashes().iter().map(|c| c.at).collect();
        assert_eq!(
            times,
            vec![SimTime::from_millis(10), SimTime::from_millis(30)]
        );
    }

    #[test]
    fn zero_probability_never_rolls() {
        let plan = FaultPlan::new();
        let mut rng = DetRng::new(1);
        for _ in 0..100 {
            assert!(!plan.roll_loss(&mut rng));
            assert!(!plan.roll_corruption(&mut rng));
            assert!(!plan.roll_duplication(&mut rng));
        }
    }

    #[test]
    fn full_probability_always_rolls() {
        let plan = FaultPlan::new()
            .with_frame_loss(1.0)
            .with_frame_corruption(1.0)
            .with_frame_duplication(1.0);
        let mut rng = DetRng::new(1);
        assert!(plan.roll_loss(&mut rng));
        assert!(plan.roll_corruption(&mut rng));
        assert!(plan.roll_duplication(&mut rng));
    }

    #[test]
    fn random_schedule_is_deterministic() {
        let mut r1 = DetRng::new(99);
        let mut r2 = DetRng::new(99);
        let a = FaultPlan::random_process_crashes(&mut r1, 5, SimTime::from_secs(1), 3, 4);
        let b = FaultPlan::random_process_crashes(&mut r2, 5, SimTime::from_secs(1), 3, 4);
        assert_eq!(a.crashes(), b.crashes());
    }

    #[test]
    fn random_schedule_targets_in_bounds() {
        let mut rng = DetRng::new(4);
        let plan = FaultPlan::random_process_crashes(&mut rng, 50, SimTime::from_secs(1), 3, 4);
        for c in plan.crashes() {
            match c.target {
                CrashTarget::Process { node, local } => {
                    assert!(node < 3);
                    assert!(local < 4);
                }
                _ => panic!("unexpected target"),
            }
            assert!(c.at < SimTime::from_secs(1));
        }
    }

    #[test]
    #[should_panic]
    fn invalid_probability_rejected() {
        let _ = FaultPlan::new().with_frame_loss(1.5);
    }
}
