//! Debugging using published messages (§6.5).
//!
//! "One of the great problems of distributed debugging is finding out
//! what happened after the fact." A buggy accumulator service corrupts
//! its total when it processes a particular poisoned value. We run the
//! system live, notice the wrong answer, then attach the replay debugger
//! to the recorder's history, set a breakpoint on the corruption, and
//! single-step to the exact offending message — then rewind and watch it
//! again.
//!
//! Run with: `cargo run --example time_travel_debugger`

use publishing::core::debugger::ReplayDebugger;
use publishing::core::world::WorldBuilder;
use publishing::demos::ids::{Channel, LinkId};
use publishing::demos::link::Link;
use publishing::demos::program::{Ctx, Program, Received};
use publishing::demos::registry::ProgramRegistry;
use publishing::sim::codec::{CodecError, Decoder, Encoder};
use publishing::sim::time::SimTime;

/// A counting service with a planted bug: value 13 doubles the total
/// instead of adding.
#[derive(Debug, Default, Clone)]
struct BuggyAccumulator {
    total: u64,
}

impl Program for BuggyAccumulator {
    fn on_start(&mut self, _: &mut Ctx<'_>) {}

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Received) {
        if let Ok(arr) = <[u8; 8]>::try_from(msg.body.as_slice()) {
            let v = u64::from_le_bytes(arr);
            if v == 13 {
                // The bug.
                self.total *= 2;
            } else {
                self.total += v;
            }
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.total);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.total = d.u64()?;
        d.finish()
    }
}

/// Feeds a fixed stream of values to the accumulator.
struct Feeder;

impl Program for Feeder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for v in [5u64, 9, 2, 13, 7, 1] {
            let _ = ctx.send(LinkId(0), v.to_le_bytes().to_vec());
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_>, _: Received) {}
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }
    fn restore(&mut self, _: &[u8]) -> Result<(), CodecError> {
        Ok(())
    }
}

fn total_of(state: &[u8]) -> u64 {
    let mut acc = BuggyAccumulator::default();
    acc.restore(state).expect("state decodes");
    acc.total
}

fn main() {
    let mut registry = ProgramRegistry::new();
    registry.register("buggy-acc", || Box::<BuggyAccumulator>::default());
    registry.register("feeder", || Box::new(Feeder));

    let mut world = WorldBuilder::new(2).registry(registry.clone()).build();
    let acc = world.spawn(1, "buggy-acc", vec![]).unwrap();
    let _feeder = world
        .spawn(0, "feeder", vec![Link::to(acc, Channel::DEFAULT, 0)])
        .unwrap();
    world.run_until(SimTime::from_secs(2));

    let live_total = total_of(
        &world.kernels[&1]
            .process(acc.local)
            .unwrap()
            .program
            .snapshot(),
    );
    println!("live system: accumulator total = {live_total}");
    println!("expected 5+9+2+13+7+1 = 37 — something is wrong.\n");

    // Attach the §6.5 debugger to the published history.
    let mut dbg = ReplayDebugger::attach(world.recorder.recorder(), &registry, acc)
        .expect("history available");
    println!("replaying {} published messages…", dbg.stream_len());

    // Breakpoint: the first step where the total stops matching the sum.
    let mut expected = 0u64;
    let hit = dbg
        .run_until(|report| {
            let v = u64::from_le_bytes(report.message.body[..8].try_into().unwrap());
            let would_be = expected + v;
            let actual = total_of(&report.state_after);
            if actual == would_be {
                expected = actual;
                false
            } else {
                true
            }
        })
        .expect("divergence found");
    let v = u64::from_le_bytes(hit.message.body[..8].try_into().unwrap());
    println!(
        "breakpoint: read index {} — input {} from {} produced total {} (expected {})",
        hit.read_index,
        v,
        hit.message.header.from(),
        total_of(&hit.state_after),
        expected + v
    );

    // Time travel: rewind and single-step the whole history.
    println!("\nrewinding and single-stepping:");
    dbg.rewind_to(0);
    while let Some(report) = dbg.step() {
        let v = u64::from_le_bytes(report.message.body[..8].try_into().unwrap());
        println!(
            "  step {}: input {:>2} → total {:>3}",
            report.read_index,
            v,
            total_of(&report.state_after)
        );
    }
    println!("\nthe poisoned input is 13: the service doubles instead of adding.");
    assert_eq!(v, 13);
}
