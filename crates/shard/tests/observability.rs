//! Acceptance tests for the unified observability layer over the
//! sharded tier: a crash/recovery run must produce an `obs_report`
//! whose per-shard replay lag drains to zero, lifecycle spans whose
//! replayed prefix exactly matches the pre-crash delivery prefix, and
//! identical span fingerprints for identical runs.

use publishing_demos::ids::{Channel, ProcessId};
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_obs::span::check_replay_prefix;
use publishing_shard::ShardedWorld;
use publishing_sim::time::SimTime;

fn registry() -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("slowping", || {
        let mut p = PingClient::new(25);
        p.think_ns = 2_000_000;
        Box::new(p)
    });
    reg
}

/// Spawns echo servers on node 2 with clients elsewhere, crashes node 2
/// mid-run, and drives to completion, tracking the maximum per-shard
/// replay lag observed at any step. Returns the world and that maximum.
fn crash_recovery_run() -> (ShardedWorld, u64, Vec<ProcessId>) {
    let mut w = ShardedWorld::new(3, 4, registry());
    let mut servers = Vec::new();
    let mut clients = Vec::new();
    for i in 0..4u32 {
        let server = w.spawn(2, "echo", vec![]).unwrap();
        let client = w
            .spawn(
                i % 2,
                "slowping",
                vec![Link::to(server, Channel::DEFAULT, 7)],
            )
            .unwrap();
        servers.push(server);
        clients.push(client);
    }
    w.run_until(SimTime::from_millis(50));
    w.crash_node(2);
    let deadline = SimTime::from_secs(40);
    let mut max_lag = 0u64;
    while w.now() < deadline && w.step() {
        for h in w.shard_health() {
            max_lag = max_lag.max(h.replay_lag);
        }
    }
    for c in &clients {
        let out = w.outputs_of(*c);
        assert_eq!(out.len(), 26, "client {c:?}: {out:?}");
    }
    (w, max_lag, servers)
}

#[test]
fn crash_recovery_report_shows_replay_lag_draining_to_zero() {
    let (w, max_lag, _) = crash_recovery_run();
    assert!(max_lag > 0, "replay lag should be visible mid-recovery");
    assert!(w.recoveries_completed() >= 4, "all four servers recover");

    let report = w.obs_report();
    for h in &report.shards {
        assert_eq!(
            h.replay_lag, 0,
            "shard {} replay lag must reach zero",
            h.shard
        );
        assert_eq!(
            h.recoveries_in_flight, 0,
            "no jobs left on shard {}",
            h.shard
        );
    }
    assert!(
        report
            .metrics
            .counter_value("shard/0/mgr/replayed")
            .is_some(),
        "manager metrics collected"
    );
    let total_replayed: u64 = (0..w.shard_count())
        .filter_map(|i| {
            report
                .metrics
                .counter_value(&format!("shard/{i}/mgr/replayed"))
        })
        .sum();
    assert!(total_replayed > 0, "recovery replayed published messages");

    // The rendered artifact carries every section.
    let text = report.render_text();
    for section in [
        "shard health",
        "recovery lag",
        "stage latencies",
        "virtual-time profile",
        "medium",
    ] {
        assert!(
            text.contains(section),
            "missing section {section:?}:\n{text}"
        );
    }
    let json = report.render_json();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
}

#[test]
fn replayed_span_prefix_matches_pre_crash_prefix() {
    let (w, _, servers) = crash_recovery_run();
    // The crashed node's kernel span log holds the pre-crash Deliver
    // events and the post-crash Replay events; every replayed read
    // index must carry exactly the message first delivered there.
    let kernel = &w.kernels[&2];
    let mut checked_total = 0;
    for server in servers {
        let checked = check_replay_prefix(kernel.spans(), server.as_u64())
            .unwrap_or_else(|e| panic!("replay prefix diverged for {server:?}: {e}"));
        checked_total += checked;
    }
    assert!(
        checked_total > 0,
        "at least one replayed message must be checked against the pre-crash prefix"
    );
}

#[test]
fn identical_runs_have_identical_obs_fingerprints() {
    let (a, _, _) = crash_recovery_run();
    let (b, _, _) = crash_recovery_run();
    assert_eq!(a.obs_fingerprint(), b.obs_fingerprint());
    assert_eq!(a.output_fingerprint(), b.output_fingerprint());
    let ra = a.obs_report();
    let rb = b.obs_report();
    assert_eq!(ra.span_fingerprint, rb.span_fingerprint);
    assert_eq!(ra.metrics.to_jsonl(), rb.metrics.to_jsonl());
}

#[test]
fn critical_path_attribution_sums_to_measured_recovery_lag() {
    let (w, _, _) = crash_recovery_run();
    let (crash, converged) = w
        .recovery_window()
        .expect("a crash/recovery run has a recovery window");
    let measured = converged.saturating_since(crash);
    assert!(measured.as_millis_f64() > 0.0, "recovery takes time");

    // The graph-level path telescopes exactly over the measured window.
    let g = w.causal_graph();
    g.validate()
        .expect("causal graph is acyclic and consistent");
    let cp = g
        .critical_path(crash, converged, None)
        .expect("critical path exists for a completed recovery");
    assert!(!cp.segments.is_empty(), "path must carry segments");
    assert_eq!(
        cp.total(),
        measured,
        "segment durations must sum exactly to the crash→convergence window"
    );

    // The report carries the same path, and every recovered process's
    // per-pid attribution telescopes to its own measured lag.
    let report = w.obs_report();
    assert_eq!(report.schema, publishing_obs::report::REPORT_SCHEMA_VERSION);
    let rcp = report.critical_path.as_ref().expect("report carries path");
    assert_eq!(rcp.total(), measured);
    assert!(
        report
            .metrics
            .gauge_value("critical_path/total_ms")
            .is_some(),
        "critical-path metrics filed in the registry"
    );
    let mut recovered_seen = 0;
    for lag in &report.recovery {
        if lag.recovery_ms > 0.0 {
            recovered_seen += 1;
            assert!(
                (lag.critical_path_ms - lag.recovery_ms).abs() < 1e-6,
                "pid {}: per-pid attribution {} must telescope to measured lag {}",
                lag.subject,
                lag.critical_path_ms,
                lag.recovery_ms
            );
        }
    }
    assert!(recovered_seen > 0, "recovered pids carry recovery_ms");
}
