//! The control protocol: message codes and payloads exchanged between
//! kernels, the recorder, and the recovery machinery.
//!
//! Control traffic falls in two classes. *Kernel-endpoint* messages are
//! addressed to a node's kernel pseudo-process (local id 0); they carry
//! creation requests, watchdog pings, recovery commands, and recorder
//! notices, and are never published (§4.5's database is "about running
//! processes"). *Process-control* messages (§4.4.3) are addressed to an
//! ordinary process over a DELIVERTOKERNEL link; the destination node's
//! kernel intercepts and executes them while assuming the controlled
//! process's identity — and because they are process-addressed, they are
//! published and replayed "just like all other messages".

use crate::ids::{MessageId, NodeId, ProcessId};
use crate::link::Link;
use crate::message::Message;
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};

/// Message codes used by the control protocol. Application links should
/// use codes below `0x1000`.
pub mod codes {
    /// Request to a kernel endpoint: create a process (body:
    /// [`super::CreateProcess`]).
    pub const CREATE_PROCESS: u32 = 0x1001;
    /// Reply to [`CREATE_PROCESS`] (body: [`super::CreateReply`]).
    pub const CREATE_REPLY: u32 = 0x1002;
    /// Watchdog ping to a kernel endpoint (§4.6).
    pub const ARE_YOU_ALIVE: u32 = 0x1003;
    /// Watchdog reply (body: [`super::AliveReply`]).
    pub const ALIVE_REPLY: u32 = 0x1004;
    /// Recovery: recreate a process (body: [`super::Recreate`], §4.7).
    pub const RECREATE: u32 = 0x1005;
    /// Reply confirming recreation.
    pub const RECREATE_REPLY: u32 = 0x1006;
    /// Recovery: inject one replayed message (body: [`super::Replay`]).
    pub const REPLAY: u32 = 0x1007;
    /// Recovery: stop discarding live traffic; hold it aside.
    pub const PREPARE_FINISH: u32 = 0x1008;
    /// Reply to [`PREPARE_FINISH`].
    pub const PREPARE_FINISH_REPLY: u32 = 0x1009;
    /// Recovery: recovery complete; merge held traffic and run normally.
    pub const COMMIT_FINISH: u32 = 0x100A;
    /// Recorder restart: what state is this process in? (§3.3.4)
    pub const STATE_QUERY: u32 = 0x100B;
    /// Reply to [`STATE_QUERY`] (body: [`super::StateReply`]).
    pub const STATE_REPLY: u32 = 0x100C;
    /// Kernel → recorder: a process was created (body:
    /// [`super::CreatedNotice`]).
    pub const PROCESS_CREATED_NOTICE: u32 = 0x100D;
    /// Kernel → recorder: a process was destroyed.
    pub const PROCESS_DESTROYED_NOTICE: u32 = 0x100E;
    /// Kernel → recorder: a selective receive skipped the queue head
    /// (body: [`super::ReadOrderNotice`], §4.4.2).
    pub const READ_ORDER_NOTICE: u32 = 0x100F;
    /// Kernel → recovery manager: a process crashed (body:
    /// [`super::CrashNotice`], §3.3.2).
    pub const PROCESS_CRASH_NOTICE: u32 = 0x1010;
    /// Recovery manager → all kernels: a node restarted; reset transport
    /// numbering toward it (body: [`super::NodeRestarted`]).
    pub const NODE_RESTARTED: u32 = 0x1011;
    /// Kernel → recorder: a checkpoint of a process (body:
    /// [`super::CheckpointDeposit`]).
    pub const CHECKPOINT_DEPOSIT: u32 = 0x1012;
    /// Recorder → kernel: checkpoint this process now.
    pub const REQUEST_CHECKPOINT: u32 = 0x1013;
    /// Shard tier → all: the shard map changed (a recorder joined, left,
    /// or failed over); body: [`super::ShardCutover`]. Broadcast on the
    /// medium so the cutover itself is part of the published record.
    pub const SHARD_CUTOVER: u32 = 0x1014;

    /// Process-control (DELIVERTOKERNEL): start moving one of the
    /// sender's links to the destination process (body:
    /// [`super::MoveLinkGive`], Figure 4.5).
    pub const MOVELINK_GIVE: u32 = 0x2001;
    /// Process-control: the destination's kernel asks the link's owner to
    /// extract and send it (body: [`super::MoveLinkFetch`]).
    pub const MOVELINK_FETCH: u32 = 0x2002;
    /// Process-control: the link rides in this message's passed-link slot.
    pub const MOVELINK_PUT: u32 = 0x2003;
    /// Kernel-as-process → process: a moved link was installed; body is
    /// the new link id (u32). This is an ordinary published message.
    pub const MOVELINK_DONE: u32 = 0x2004;
    /// Process-control: stop the destination process.
    pub const STOP_PROCESS: u32 = 0x2005;
}

/// Run states reported by [`StateReply`] (§3.3.4's four cases; `Unknown`
/// is reported by omission — the kernel answers for processes it knows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportedState {
    /// Running normally.
    Functioning,
    /// Halted on a detected fault.
    Crashed,
    /// Mid-recovery.
    Recovering,
    /// Not present on this node.
    Unknown,
}

impl ReportedState {
    fn to_u8(self) -> u8 {
        match self {
            ReportedState::Functioning => 0,
            ReportedState::Crashed => 1,
            ReportedState::Recovering => 2,
            ReportedState::Unknown => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CodecError> {
        Ok(match v {
            0 => ReportedState::Functioning,
            1 => ReportedState::Crashed,
            2 => ReportedState::Recovering,
            3 => ReportedState::Unknown,
            tag => {
                return Err(CodecError::InvalidTag {
                    what: "reported state",
                    tag,
                })
            }
        })
    }
}

/// Body of [`codes::CREATE_PROCESS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateProcess {
    /// Registry name of the program to instantiate.
    pub program_name: String,
    /// Links installed in the new process's table before it starts
    /// (ids 0..n-1), solving the rendezvous problem (§4.2.2.1).
    pub initial_links: Vec<Link>,
    /// Where to send the [`CreateReply`].
    pub reply_to: Option<Link>,
}

impl Encode for CreateProcess {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.program_name);
        e.seq(&self.initial_links, |e, l| l.encode(e));
        e.option(self.reply_to.as_ref(), |e, l| l.encode(e));
    }
}

impl Decode for CreateProcess {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let program_name = d.str()?;
        let initial_links = d.seq(Link::decode)?;
        let reply_to = d.option(Link::decode)?;
        Ok(CreateProcess {
            program_name,
            initial_links,
            reply_to,
        })
    }
}

/// Body of [`codes::CREATE_REPLY`]; the accompanying passed link is a
/// DELIVERTOKERNEL control link to the new process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreateReply {
    /// The new process's id, or `None` on failure.
    pub pid: Option<ProcessId>,
}

impl Encode for CreateReply {
    fn encode(&self, e: &mut Encoder) {
        e.option(self.pid.as_ref(), |e, p| p.encode(e));
    }
}

impl Decode for CreateReply {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CreateReply {
            pid: d.option(ProcessId::decode)?,
        })
    }
}

/// Body of [`codes::ALIVE_REPLY`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AliveReply {
    /// The replying node.
    pub node: NodeId,
    /// Its current incarnation.
    pub incarnation: u32,
    /// Echo of the ping's nonce.
    pub nonce: u64,
}

impl Encode for AliveReply {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.node.0).u32(self.incarnation).u64(self.nonce);
    }
}

impl Decode for AliveReply {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(AliveReply {
            node: NodeId(d.u32()?),
            incarnation: d.u32()?,
            nonce: d.u64()?,
        })
    }
}

/// Body of [`codes::RECREATE`] (§4.7's recreate request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recreate {
    /// The process to (re)create; destroyed first if present.
    pub pid: ProcessId,
    /// Program to instantiate.
    pub program_name: String,
    /// Encoded [`crate::process::ProcessImage`] to restore from, or
    /// `None` to restart from the initial state.
    pub checkpoint: Option<Vec<u8>>,
    /// Per-destination delivered watermarks: regenerated messages at or
    /// below these sequences are suppressed, not retransmitted (§4.7).
    pub suppress: Vec<(ProcessId, u64)>,
    /// Initial links to reinstall when restarting from the initial state
    /// (ignored when a checkpoint is supplied — the image carries the
    /// link table).
    pub initial_links: Vec<Link>,
}

impl Encode for Recreate {
    fn encode(&self, e: &mut Encoder) {
        self.pid.encode(e);
        e.str(&self.program_name);
        e.option(self.checkpoint.as_ref(), |e, c| {
            e.bytes(c);
        });
        e.seq(&self.suppress, |e, (p, s)| {
            p.encode(e);
            e.u64(*s);
        });
        e.seq(&self.initial_links, |e, l| l.encode(e));
    }
}

impl Decode for Recreate {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let pid = ProcessId::decode(d)?;
        let program_name = d.str()?;
        let checkpoint = d.option(|d| d.bytes())?;
        let suppress = d.seq(|d| {
            let p = ProcessId::decode(d)?;
            let s = d.u64()?;
            Ok((p, s))
        })?;
        let initial_links = d.seq(Link::decode)?;
        Ok(Recreate {
            pid,
            program_name,
            checkpoint,
            suppress,
            initial_links,
        })
    }
}

/// Body of [`codes::REPLAY`]: one published message re-delivered in read
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// The recovering process.
    pub dst: ProcessId,
    /// Position in the read-order stream (0-based).
    pub read_seq: u64,
    /// The original message.
    pub msg: Message,
}

impl Encode for Replay {
    fn encode(&self, e: &mut Encoder) {
        self.dst.encode(e);
        e.u64(self.read_seq);
        self.msg.encode(e);
    }
}

impl Decode for Replay {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let dst = ProcessId::decode(d)?;
        let read_seq = d.u64()?;
        let msg = Message::decode(d)?;
        Ok(Replay { dst, read_seq, msg })
    }
}

/// Body of [`codes::STATE_QUERY`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateQuery {
    /// The process asked about.
    pub pid: ProcessId,
    /// The recorder's restart number (§3.4): replies carrying a stale
    /// number are ignored.
    pub restart_number: u64,
}

impl Encode for StateQuery {
    fn encode(&self, e: &mut Encoder) {
        self.pid.encode(e);
        e.u64(self.restart_number);
    }
}

impl Decode for StateQuery {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(StateQuery {
            pid: ProcessId::decode(d)?,
            restart_number: d.u64()?,
        })
    }
}

/// Body of [`codes::STATE_REPLY`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateReply {
    /// The process asked about.
    pub pid: ProcessId,
    /// Its state on the replying node.
    pub state: ReportedState,
    /// Echo of the query's restart number.
    pub restart_number: u64,
}

impl Encode for StateReply {
    fn encode(&self, e: &mut Encoder) {
        self.pid.encode(e);
        e.u8(self.state.to_u8()).u64(self.restart_number);
    }
}

impl Decode for StateReply {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let pid = ProcessId::decode(d)?;
        let state = ReportedState::from_u8(d.u8()?)?;
        let restart_number = d.u64()?;
        Ok(StateReply {
            pid,
            state,
            restart_number,
        })
    }
}

/// Body of [`codes::PROCESS_CREATED_NOTICE`] (§3.3.1: "when a new process
/// is created, the recorder is told the initial state of the process,
/// usually the name of this binary image and any other parameters
/// associated with the process creation" — here, the initial links).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreatedNotice {
    /// The new process.
    pub pid: ProcessId,
    /// Its program (initial-state checkpoint).
    pub program_name: String,
    /// Links installed at creation (part of the initial state).
    pub initial_links: Vec<Link>,
    /// §6.6.1: equipotent/restartable-by-hand processes may opt out of
    /// recovery; the recorder then publishes nothing for them.
    pub recoverable: bool,
}

impl Encode for CreatedNotice {
    fn encode(&self, e: &mut Encoder) {
        self.pid.encode(e);
        e.str(&self.program_name);
        e.seq(&self.initial_links, |e, l| l.encode(e));
        e.bool(self.recoverable);
    }
}

impl Decode for CreatedNotice {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CreatedNotice {
            pid: ProcessId::decode(d)?,
            program_name: d.str()?,
            initial_links: d.seq(Link::decode)?,
            recoverable: d.bool()?,
        })
    }
}

/// Body of [`codes::READ_ORDER_NOTICE`] (§4.4.2: "the id of the message
/// read and the id of the first message in the queue").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOrderNotice {
    /// The reading process.
    pub pid: ProcessId,
    /// Which read this was (0-based read index at the process).
    pub read_index: u64,
    /// The message actually read.
    pub read_id: MessageId,
    /// The queue head that was skipped.
    pub head_id: MessageId,
}

impl Encode for ReadOrderNotice {
    fn encode(&self, e: &mut Encoder) {
        self.pid.encode(e);
        e.u64(self.read_index);
        self.read_id.encode(e);
        self.head_id.encode(e);
    }
}

impl Decode for ReadOrderNotice {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ReadOrderNotice {
            pid: ProcessId::decode(d)?,
            read_index: d.u64()?,
            read_id: MessageId::decode(d)?,
            head_id: MessageId::decode(d)?,
        })
    }
}

/// Body of [`codes::PROCESS_CRASH_NOTICE`] (§3.3.2: "a message to the
/// recovery manager containing the error type and process id").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashNotice {
    /// The crashed process.
    pub pid: ProcessId,
    /// Error type (free-form; non-deterministic faults only).
    pub reason: String,
}

impl Encode for CrashNotice {
    fn encode(&self, e: &mut Encoder) {
        self.pid.encode(e);
        e.str(&self.reason);
    }
}

impl Decode for CrashNotice {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CrashNotice {
            pid: ProcessId::decode(d)?,
            reason: d.str()?,
        })
    }
}

/// Body of [`codes::NODE_RESTARTED`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRestarted {
    /// The restarted node.
    pub node: NodeId,
    /// Its new incarnation.
    pub incarnation: u32,
}

impl Encode for NodeRestarted {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.node.0).u32(self.incarnation);
    }
}

impl Decode for NodeRestarted {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(NodeRestarted {
            node: NodeId(d.u32()?),
            incarnation: d.u32()?,
        })
    }
}

/// Body of [`codes::SHARD_CUTOVER`]: the sharded recorder tier switched
/// to a new map epoch. Kernels need take no action (frame-level ack
/// ownership is enforced by the medium), but the broadcast puts the
/// cutover on the wire where every recorder — and the published log —
/// observes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCutover {
    /// The shard-map epoch now in force.
    pub epoch: u64,
    /// Number of live shards after the change.
    pub live_shards: u32,
}

impl Encode for ShardCutover {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.epoch).u32(self.live_shards);
    }
}

impl Decode for ShardCutover {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ShardCutover {
            epoch: d.u64()?,
            live_shards: d.u32()?,
        })
    }
}

/// Body of [`codes::CHECKPOINT_DEPOSIT`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointDeposit {
    /// The checkpointed process.
    pub pid: ProcessId,
    /// Messages read before the image was taken (the replay floor).
    pub read_count: u64,
    /// Encoded [`crate::process::ProcessImage`].
    pub image: Vec<u8>,
}

impl Encode for CheckpointDeposit {
    fn encode(&self, e: &mut Encoder) {
        self.pid.encode(e);
        e.u64(self.read_count);
        e.bytes(&self.image);
    }
}

impl Decode for CheckpointDeposit {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CheckpointDeposit {
            pid: ProcessId::decode(d)?,
            read_count: d.u64()?,
            image: d.bytes()?,
        })
    }
}

/// Body of [`codes::MOVELINK_GIVE`]: the sender offers one of its links
/// to the destination process (Figure 4.5, first message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveLinkGive {
    /// Index of the link in the *sender's* table.
    pub link_id: u32,
}

impl Encode for MoveLinkGive {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.link_id);
    }
}

impl Decode for MoveLinkGive {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(MoveLinkGive { link_id: d.u32()? })
    }
}

/// Body of [`codes::MOVELINK_FETCH`] (Figure 4.5, second message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveLinkFetch {
    /// Index of the link to extract from the *receiver's* table.
    pub link_id: u32,
}

impl Encode for MoveLinkFetch {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.link_id);
    }
}

impl Decode for MoveLinkFetch {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(MoveLinkFetch { link_id: d.u32()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Channel;

    #[test]
    fn create_process_roundtrip() {
        let c = CreateProcess {
            program_name: "echo".into(),
            initial_links: vec![Link::to(ProcessId::new(1, 2), Channel(0), 7)],
            reply_to: Some(Link::to(ProcessId::new(1, 3), Channel(1), 8)),
        };
        assert_eq!(CreateProcess::decode_all(&c.encode_to_vec()).unwrap(), c);
    }

    #[test]
    fn recreate_roundtrip() {
        let r = Recreate {
            pid: ProcessId::new(2, 4),
            program_name: "worker".into(),
            checkpoint: Some(vec![1, 2, 3]),
            suppress: vec![(ProcessId::new(1, 1), 17), (ProcessId::new(3, 2), 4)],
            initial_links: vec![Link::to(ProcessId::new(9, 9), Channel(2), 3)],
        };
        assert_eq!(Recreate::decode_all(&r.encode_to_vec()).unwrap(), r);
        let fresh = Recreate {
            checkpoint: None,
            suppress: vec![],
            ..r
        };
        assert_eq!(Recreate::decode_all(&fresh.encode_to_vec()).unwrap(), fresh);
    }

    #[test]
    fn replay_roundtrip() {
        use crate::message::MessageHeader;
        let r = Replay {
            dst: ProcessId::new(2, 5),
            read_seq: 42,
            msg: Message {
                header: MessageHeader {
                    id: MessageId {
                        sender: ProcessId::new(1, 1),
                        seq: 3,
                    },
                    to: ProcessId::new(2, 5),
                    code: 9,
                    channel: Channel(1),
                    deliver_to_kernel: false,
                },
                passed_link: None,
                body: vec![5, 5],
            },
        };
        assert_eq!(Replay::decode_all(&r.encode_to_vec()).unwrap(), r);
    }

    #[test]
    fn state_reply_roundtrip_all_states() {
        for state in [
            ReportedState::Functioning,
            ReportedState::Crashed,
            ReportedState::Recovering,
            ReportedState::Unknown,
        ] {
            let s = StateReply {
                pid: ProcessId::new(1, 2),
                state,
                restart_number: 7,
            };
            assert_eq!(StateReply::decode_all(&s.encode_to_vec()).unwrap(), s);
        }
    }

    #[test]
    fn notice_roundtrips() {
        let created = CreatedNotice {
            pid: ProcessId::new(1, 5),
            program_name: "db".into(),
            initial_links: vec![Link::to(ProcessId::new(2, 1), Channel(0), 1)],
            recoverable: true,
        };
        assert_eq!(
            CreatedNotice::decode_all(&created.encode_to_vec()).unwrap(),
            created
        );

        let read = ReadOrderNotice {
            pid: ProcessId::new(1, 5),
            read_index: 9,
            read_id: MessageId {
                sender: ProcessId::new(2, 2),
                seq: 4,
            },
            head_id: MessageId {
                sender: ProcessId::new(3, 3),
                seq: 1,
            },
        };
        assert_eq!(
            ReadOrderNotice::decode_all(&read.encode_to_vec()).unwrap(),
            read
        );

        let crash = CrashNotice {
            pid: ProcessId::new(2, 2),
            reason: "parity".into(),
        };
        assert_eq!(
            CrashNotice::decode_all(&crash.encode_to_vec()).unwrap(),
            crash
        );

        let restarted = NodeRestarted {
            node: NodeId(3),
            incarnation: 2,
        };
        assert_eq!(
            NodeRestarted::decode_all(&restarted.encode_to_vec()).unwrap(),
            restarted
        );
    }

    #[test]
    fn checkpoint_deposit_roundtrip() {
        let d = CheckpointDeposit {
            pid: ProcessId::new(1, 9),
            read_count: 55,
            image: vec![0; 64],
        };
        assert_eq!(
            CheckpointDeposit::decode_all(&d.encode_to_vec()).unwrap(),
            d
        );
    }

    #[test]
    fn movelink_roundtrips() {
        let g = MoveLinkGive { link_id: 3 };
        assert_eq!(MoveLinkGive::decode_all(&g.encode_to_vec()).unwrap(), g);
        let f = MoveLinkFetch { link_id: 4 };
        assert_eq!(MoveLinkFetch::decode_all(&f.encode_to_vec()).unwrap(), f);
    }

    #[test]
    fn bad_state_tag_rejected() {
        let mut good = StateReply {
            pid: ProcessId::new(1, 1),
            state: ReportedState::Crashed,
            restart_number: 0,
        }
        .encode_to_vec();
        good[8] = 9; // corrupt the state byte (after the 8-byte pid)
        assert!(StateReply::decode_all(&good).is_err());
    }
}
