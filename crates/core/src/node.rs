//! The recording node: recorder + recovery manager + watchdogs +
//! checkpoint policy behind one network endpoint (Figure 3.2's "recording
//! node … in charge of recording all messages on the network and of
//! initiating and directing all recovery operations").

use crate::checkpoint::CheckpointPolicy;
use crate::manager::{ManagerConfig, MgrCmd, RecoveryManager};
use crate::recorder::{PublishCost, Recorder};
use publishing_demos::ids::{Channel, MessageId, NodeId, ProcessId};
use publishing_demos::kernel::{decode_ctl, encode_ctl};
use publishing_demos::message::{Message, MessageHeader};
use publishing_demos::protocol::{self, codes};
use publishing_demos::transport::{TAction, Transport, TransportConfig, Wire};
use publishing_net::frame::{Destination, Frame, StationId};
use publishing_sim::codec::{Decode, Decoder, Encode, Encoder};
use publishing_sim::time::{SimDuration, SimTime};
use publishing_stable::disk::DiskParams;
use publishing_stable::store::StoreIo;
use std::collections::{HashMap, HashSet};

/// An action the recorder node asks the world to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RNAction {
    /// Put a frame on the medium.
    Transmit(Frame),
    /// Call [`RecorderNode::on_timer`] with `token` at `at`.
    SetTimer {
        /// Callback time.
        at: SimTime,
        /// Token to hand back.
        token: u64,
    },
    /// Physically restart a crashed node, then call
    /// [`RecorderNode::confirm_node_restarted`].
    RestartNode {
        /// The node.
        node: NodeId,
        /// Its new incarnation.
        incarnation: u32,
    },
    /// A process finished recovering.
    RecoveryDone {
        /// The process.
        pid: ProcessId,
    },
}

/// Configuration for a recorder node.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Watchdog pacing.
    pub manager: ManagerConfig,
    /// Checkpoint policy applied to every process.
    pub policy: CheckpointPolicy,
    /// How often the policy is evaluated.
    pub policy_tick: SimDuration,
    /// Disk service parameters (Fig 5.2).
    pub disk: DiskParams,
    /// Number of disks (Fig 5.5 sweeps 1–3).
    pub n_disks: usize,
    /// Per-message publishing CPU (§5.2.2).
    pub publish_cost: PublishCost,
    /// Transport parameters for the node's own endpoint.
    pub transport: TransportConfig,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            manager: ManagerConfig::default(),
            policy: CheckpointPolicy::Periodic(SimDuration::from_secs(2)),
            policy_tick: SimDuration::from_millis(250),
            disk: DiskParams::default(),
            n_disks: 1,
            publish_cost: PublishCost::MediaLayer,
            transport: TransportConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum RTimer {
    Transport(u64),
    Manager(u64),
    Disk(StoreIo),
    PolicyTick,
}

/// The recording node.
pub struct RecorderNode {
    node: NodeId,
    cfg: RecorderConfig,
    recorder: Recorder,
    manager: RecoveryManager,
    transport: Transport,
    kernel_seq: u64,
    timers: HashMap<u64, RTimer>,
    next_token: u64,
    checkpoint_requested: HashSet<ProcessId>,
    up: bool,
    /// When set (quorum mode), observed destination acks are queued in
    /// `observed_acks` for the consensus layer to propose instead of
    /// being sequenced locally on the spot.
    defer_sequencing: bool,
    observed_acks: Vec<(SimTime, MessageId, ProcessId)>,
    /// Whether this node drives the checkpoint-request policy (only the
    /// quorum leader does; a lone recorder always does).
    checkpoint_duty: bool,
}

impl RecorderNode {
    /// Creates a recorder node.
    pub fn new(node: NodeId, cfg: RecorderConfig) -> Self {
        let recorder = Recorder::new(node, cfg.disk.clone(), cfg.n_disks, cfg.publish_cost);
        let manager = RecoveryManager::new(cfg.manager.clone());
        let transport = Transport::new(node, cfg.transport.clone());
        RecorderNode {
            node,
            cfg,
            recorder,
            manager,
            transport,
            kernel_seq: 0,
            timers: HashMap::new(),
            next_token: 0,
            checkpoint_requested: HashSet::new(),
            up: true,
            defer_sequencing: false,
            observed_acks: Vec::new(),
            checkpoint_duty: true,
        }
    }

    /// Switches ack handling into quorum mode: observed destination acks
    /// are queued for the consensus layer ([`RecorderNode::take_observed_acks`])
    /// instead of assigning arrival sequences immediately.
    pub fn set_deferred_sequencing(&mut self, defer: bool) {
        self.defer_sequencing = defer;
        self.recorder.set_external_sequencing(defer);
    }

    /// Drains the acks observed since the last call (quorum mode only).
    pub fn take_observed_acks(&mut self) -> Vec<(SimTime, MessageId, ProcessId)> {
        std::mem::take(&mut self.observed_acks)
    }

    /// Enables or disables the checkpoint-request policy tick (only the
    /// quorum leader exercises this §5 recorder duty).
    pub fn set_checkpoint_duty(&mut self, duty: bool) {
        self.checkpoint_duty = duty;
    }

    /// Applies one committed quorum log entry: publishes `msg` at the
    /// arrival sequence the replicated log assigned it and schedules the
    /// resulting store IO.
    pub fn apply_committed(&mut self, now: SimTime, seq: u64, msg: &Message) -> Vec<RNAction> {
        let mut out = Vec::new();
        let ios = self.recorder.apply_sequenced_at(now, seq, msg);
        self.schedule_ios(ios, &mut out);
        out
    }

    /// Returns the node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Returns this node's station.
    pub fn station(&self) -> StationId {
        StationId(self.node.0)
    }

    /// Returns `true` while the recorder is up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Read access to the recorder database.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Records one consensus-layer lifecycle event (e.g. an election
    /// win) into the recorder's span log. The quorum replica calls this
    /// for transitions the recorder core itself never sees.
    pub fn record_span(
        &mut self,
        now: SimTime,
        key: publishing_obs::span::MsgKey,
        stage: publishing_obs::span::Stage,
        subject: u64,
        aux: u64,
    ) {
        self.recorder
            .spans_mut()
            .record(now, key, stage, subject, aux);
    }

    /// Re-bounds the recorder's span ring (0 = fingerprint-only mode).
    pub fn set_span_capacity(&mut self, capacity: usize) {
        self.recorder.set_span_capacity(capacity);
    }

    /// Read access to the recovery manager.
    pub fn manager(&self) -> &RecoveryManager {
        &self.manager
    }

    /// Applies a disk-fault regime (chaos injection) to the store.
    pub fn set_disk_faults(&mut self, faults: publishing_stable::disk::DiskFaults) {
        self.recorder.set_disk_faults(faults);
    }

    /// Begins operation: watchdogs for `nodes`, plus the checkpoint-policy
    /// tick.
    pub fn start(&mut self, now: SimTime, nodes: &[NodeId]) -> Vec<RNAction> {
        let mut out = Vec::new();
        for &n in nodes {
            let cmds = self.manager.watch_node(now, n);
            self.apply_cmds(now, cmds, &mut out);
        }
        self.arm(now + self.cfg.policy_tick, RTimer::PolicyTick, &mut out);
        out
    }

    fn arm(&mut self, at: SimTime, kind: RTimer, out: &mut Vec<RNAction>) {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, kind);
        out.push(RNAction::SetTimer { at, token });
    }

    fn next_kernel_id(&mut self) -> MessageId {
        self.kernel_seq += 1;
        let seq = ((self.transport.incarnation() as u64) << 40) | self.kernel_seq;
        MessageId {
            sender: ProcessId::kernel_of(self.node),
            seq,
        }
    }

    fn kernel_send(
        &mut self,
        now: SimTime,
        node: NodeId,
        body: Vec<u8>,
        guaranteed: bool,
        out: &mut Vec<RNAction>,
    ) {
        let id = self.next_kernel_id();
        let to = ProcessId::kernel_of(node);
        let header = MessageHeader {
            id,
            to,
            code: 0,
            channel: Channel::DEFAULT,
            deliver_to_kernel: false,
        };
        let msg = Message {
            header,
            passed_link: None,
            body,
        };
        let actions = if guaranteed {
            self.transport.send_guaranteed(now, node, msg)
        } else {
            self.transport.send_datagram(now, node, msg)
        };
        self.apply_transport(now, actions, out);
    }

    fn apply_transport(&mut self, now: SimTime, actions: Vec<TAction>, out: &mut Vec<RNAction>) {
        for a in actions {
            match a {
                TAction::Transmit { dst_node, payload } => {
                    let frame = Frame::new(
                        self.station(),
                        Destination::Station(StationId(dst_node.0)),
                        payload,
                    );
                    out.push(RNAction::Transmit(frame));
                }
                TAction::Deliver(msg) => self.handle_kernel_msg(now, msg, out),
                TAction::SetTimer { at, token } => self.arm(at, RTimer::Transport(token), out),
            }
        }
    }

    fn apply_cmds(&mut self, now: SimTime, cmds: Vec<MgrCmd>, out: &mut Vec<RNAction>) {
        for c in cmds {
            match c {
                MgrCmd::SendKernel { node, body } => self.kernel_send(now, node, body, true, out),
                MgrCmd::SendKernelDatagram { node, body } => {
                    self.kernel_send(now, node, body, false, out)
                }
                MgrCmd::RestartNode { node, incarnation } => {
                    out.push(RNAction::RestartNode { node, incarnation });
                }
                MgrCmd::SetTimer { at, token } => self.arm(at, RTimer::Manager(token), out),
                MgrCmd::RecoveryDone { pid } => {
                    self.checkpoint_requested.remove(&pid);
                    out.push(RNAction::RecoveryDone { pid });
                }
            }
        }
    }

    fn schedule_ios(&mut self, ios: Vec<StoreIo>, out: &mut Vec<RNAction>) {
        for io in ios {
            self.arm(io.at, RTimer::Disk(io), out);
        }
    }

    /// Handles a frame seen on the medium: passive capture of everything,
    /// plus normal endpoint processing for frames addressed to us.
    pub fn on_frame(&mut self, now: SimTime, frame: &Frame, recorder_ok: bool) -> Vec<RNAction> {
        let mut out = Vec::new();
        if !self.up || !frame.is_intact() || !recorder_ok {
            return out;
        }
        let Ok(wire) = Wire::decode_all(&frame.payload) else {
            return out;
        };
        match &wire {
            Wire::Data { msg, .. } => {
                self.recorder.on_data(now, msg);
            }
            Wire::Ack {
                msg_id, dst_pid, ..
            } => {
                if self.defer_sequencing {
                    // Quorum mode: arrival-seq assignment waits for the
                    // replicated log to commit the entry.
                    if !dst_pid.is_kernel() {
                        self.observed_acks.push((now, *msg_id, *dst_pid));
                    }
                } else {
                    let ios = self.recorder.on_ack(now, *msg_id, *dst_pid);
                    self.schedule_ios(ios, &mut out);
                }
            }
            // Datagrams, epoch notices, and quorum traffic (consensus
            // metadata, not process messages) are never published.
            Wire::Datagram { .. } | Wire::EpochNotice { .. } | Wire::Quorum { .. } => {}
        }
        if frame.dst.accepts(self.station()) {
            let actions = self.transport.on_wire(now, wire);
            self.apply_transport(now, actions, &mut out);
        }
        out
    }

    fn handle_kernel_msg(&mut self, now: SimTime, msg: Message, out: &mut Vec<RNAction>) {
        let Some((code, payload)) = decode_ctl(&msg.body) else {
            return;
        };
        match code {
            codes::PROCESS_CREATED_NOTICE => {
                if let Ok(n) = protocol::CreatedNotice::decode_all(payload) {
                    let ios = self.recorder.on_created(
                        now,
                        n.pid,
                        &n.program_name,
                        n.initial_links,
                        n.recoverable,
                    );
                    self.schedule_ios(ios, out);
                }
            }
            codes::PROCESS_DESTROYED_NOTICE => {
                if let Ok(n) = protocol::CreatedNotice::decode_all(payload) {
                    let ios = self.recorder.on_destroyed(now, n.pid);
                    self.schedule_ios(ios, out);
                    self.checkpoint_requested.remove(&n.pid);
                }
            }
            codes::READ_ORDER_NOTICE => {
                if let Ok(n) = protocol::ReadOrderNotice::decode_all(payload) {
                    self.recorder.on_read_order(now, &n);
                }
            }
            codes::CHECKPOINT_DEPOSIT => {
                if let Ok(d) = protocol::CheckpointDeposit::decode_all(payload) {
                    let ios = self.recorder.on_deposit(now, &d);
                    self.schedule_ios(ios, out);
                }
            }
            codes::PROCESS_CRASH_NOTICE => {
                if let Ok(n) = protocol::CrashNotice::decode_all(payload) {
                    let cmds = self.manager.on_crash_notice(now, &mut self.recorder, n.pid);
                    self.apply_cmds(now, cmds, out);
                }
            }
            codes::RECREATE_REPLY => {
                let mut d = Decoder::new(payload);
                if let (Ok(pid), Ok(ok)) = (ProcessId::decode(&mut d), d.bool()) {
                    let cmds = self.manager.on_recreate_reply(now, &self.recorder, pid, ok);
                    self.apply_cmds(now, cmds, out);
                }
            }
            codes::PREPARE_FINISH_REPLY => {
                let mut d = Decoder::new(payload);
                if let Ok(pid) = ProcessId::decode(&mut d) {
                    let cmds = self.manager.on_prepare_reply(now, &mut self.recorder, pid);
                    self.apply_cmds(now, cmds, out);
                }
            }
            codes::STATE_REPLY => {
                if let Ok(reply) = protocol::StateReply::decode_all(payload) {
                    let cmds = self.manager.on_state_reply(now, &mut self.recorder, &reply);
                    self.apply_cmds(now, cmds, out);
                }
            }
            codes::ALIVE_REPLY => {
                if let Ok(r) = protocol::AliveReply::decode_all(payload) {
                    self.manager.on_alive_reply(r.node, r.nonce);
                }
            }
            codes::NODE_RESTARTED => {
                if let Ok(n) = protocol::NodeRestarted::decode_all(payload) {
                    let actions = self.transport.reset_peer(now, n.node, n.incarnation);
                    self.apply_transport(now, actions, out);
                }
            }
            _ => {}
        }
    }

    /// Handles a timer callback.
    pub fn on_timer(&mut self, now: SimTime, token: u64) -> Vec<RNAction> {
        let mut out = Vec::new();
        if !self.up {
            return out;
        }
        match self.timers.remove(&token) {
            None => {}
            Some(RTimer::Transport(t)) => {
                let actions = self.transport.timer(now, t);
                self.apply_transport(now, actions, &mut out);
            }
            Some(RTimer::Manager(t)) => {
                let cmds = self.manager.on_timer(now, &mut self.recorder, t);
                self.apply_cmds(now, cmds, &mut out);
            }
            Some(RTimer::Disk(io)) => {
                let durable = self.recorder.on_disk(now, io);
                for pid in durable {
                    self.checkpoint_requested.remove(&pid);
                }
                let follow = self.recorder.take_drained_ios();
                self.schedule_ios(follow, &mut out);
            }
            Some(RTimer::PolicyTick) => {
                self.policy_tick(now, &mut out);
                let ios = self.recorder.maintain(now);
                self.schedule_ios(ios, &mut out);
                self.arm(now + self.cfg.policy_tick, RTimer::PolicyTick, &mut out);
            }
        }
        out
    }

    fn policy_tick(&mut self, now: SimTime, out: &mut Vec<RNAction>) {
        if !self.checkpoint_duty {
            return;
        }
        let due: Vec<ProcessId> = self
            .recorder
            .known_pids()
            .filter(|pid| !self.checkpoint_requested.contains(pid))
            .filter(|pid| {
                self.recorder
                    .entry(*pid)
                    .map(|e| self.cfg.policy.due(now, e))
                    .unwrap_or(false)
            })
            .collect();
        for pid in due {
            self.checkpoint_requested.insert(pid);
            let mut e = Encoder::new();
            e.u32(codes::REQUEST_CHECKPOINT);
            pid.encode(&mut e);
            self.kernel_send(now, pid.node, e.finish(), true, out);
        }
    }

    /// The world completed a node restart; broadcast it and recover the
    /// node's processes.
    pub fn confirm_node_restarted(
        &mut self,
        now: SimTime,
        node: NodeId,
        incarnation: u32,
    ) -> Vec<RNAction> {
        self.confirm_node_restarted_with(now, node, incarnation, true)
    }

    /// [`RecorderNode::confirm_node_restarted`] with an explicit
    /// `announce` flag: in a sharded tier only the leader shard
    /// broadcasts NODE_RESTARTED; the rest pass `false` so they reset
    /// their transport and recover their owned processes without
    /// duplicating the announcement.
    pub fn confirm_node_restarted_with(
        &mut self,
        now: SimTime,
        node: NodeId,
        incarnation: u32,
        announce: bool,
    ) -> Vec<RNAction> {
        let mut out = Vec::new();
        // Reset our own numbering toward the restarted node before any
        // recovery traffic is queued.
        let actions = self.transport.reset_peer(now, node, incarnation);
        self.apply_transport(now, actions, &mut out);
        let cmds = self.manager.on_node_restarted_with(
            now,
            &mut self.recorder,
            node,
            incarnation,
            announce,
        );
        self.apply_cmds(now, cmds, &mut out);
        out
    }

    /// Installs the shard ownership filter on the recorder and the
    /// matching recovery-responsibility filter on the manager.
    pub fn set_shard_filters(
        &mut self,
        owner: Option<crate::recorder::PidFilter>,
        responsible: Option<crate::recorder::PidFilter>,
    ) {
        self.recorder.set_ownership_filter(owner);
        self.manager.set_recovery_filter(responsible);
    }

    /// Issues targeted STATE_QUERYs for `pids` (shard failover: the
    /// inheriting shard asks which of the dead shard's processes need
    /// recovery).
    pub fn query_process_states(&mut self, now: SimTime, pids: &[ProcessId]) -> Vec<RNAction> {
        let mut out = Vec::new();
        let cmds = self.manager.query_states(now, &self.recorder, pids);
        self.apply_cmds(now, cmds, &mut out);
        out
    }

    /// Snapshots one owned process for handoff to another shard.
    pub fn export_process(&self, pid: ProcessId) -> Option<crate::recorder::ProcessExport> {
        self.recorder.export_process(pid)
    }

    /// Imports a process handed off from another shard and schedules the
    /// resulting store IO.
    pub fn import_process(
        &mut self,
        now: SimTime,
        export: crate::recorder::ProcessExport,
    ) -> Vec<RNAction> {
        let mut out = Vec::new();
        let ios = self.recorder.import_process(now, export);
        self.schedule_ios(ios, &mut out);
        out
    }

    /// Drops one process from this shard after a successful handoff.
    pub fn release_process(&mut self, now: SimTime, pid: ProcessId) -> Vec<RNAction> {
        let mut out = Vec::new();
        let ios = self.recorder.on_destroyed(now, pid);
        self.schedule_ios(ios, &mut out);
        self.checkpoint_requested.remove(&pid);
        out
    }

    /// Declines a proposed node restart (§6.3: a higher-priority recorder
    /// is responsible); the watchdog keeps checking.
    pub fn decline_node_restart(&mut self, node: NodeId) {
        self.manager.cancel_restart(node);
    }

    /// Starts recovery of one process (driven by a crash notice normally;
    /// public for tests and the debugger).
    pub fn recover_process(&mut self, now: SimTime, pid: ProcessId) -> Vec<RNAction> {
        let mut out = Vec::new();
        let cmds = self.manager.start_recovery(now, &mut self.recorder, pid);
        self.apply_cmds(now, cmds, &mut out);
        out
    }

    /// Crashes the recorder (volatile state lost; store survives). While
    /// down, the medium's recorder gating suspends all traffic (§3.3.4).
    pub fn crash(&mut self) {
        self.up = false;
        self.recorder.crash();
        self.timers.clear();
        self.checkpoint_requested.clear();
        self.observed_acks.clear();
    }

    /// Restarts the recorder (§3.3.4): rebuild from stable storage,
    /// announce the new incarnation, query every known process's state.
    pub fn restart(&mut self, now: SimTime) -> Vec<RNAction> {
        let mut out = Vec::new();
        self.up = true;
        let incarnation = self.transport.incarnation() + 1;
        self.transport.restart(incarnation);
        self.kernel_seq = 0;
        let known = self.recorder.restart(now);
        let drained = self.recorder.take_drained_ios();
        self.schedule_ios(drained, &mut out);
        // Peers must renumber toward us.
        let restarted = protocol::NodeRestarted {
            node: self.node,
            incarnation,
        };
        let body = encode_ctl(codes::NODE_RESTARTED, &restarted);
        let nodes: Vec<NodeId> = known
            .iter()
            .map(|p| p.node)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        let mut sorted = nodes;
        sorted.sort();
        for n in &sorted {
            self.kernel_send(now, *n, body.clone(), true, &mut out);
        }
        let cmds = self
            .manager
            .on_recorder_restart(now, &mut self.recorder, &known);
        self.apply_cmds(now, cmds, &mut out);
        self.arm(now + self.cfg.policy_tick, RTimer::PolicyTick, &mut out);
        out
    }
}

impl core::fmt::Debug for RecorderNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RecorderNode")
            .field("node", &self.node)
            .field("up", &self.up)
            .field("known", &self.recorder.known_pids().count())
            .finish()
    }
}
