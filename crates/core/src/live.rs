//! A live, real-time runtime over the same sans-IO state machines.
//!
//! The simulation `World` drives kernels and the recorder from a virtual
//! clock for reproducible experiments. This module drives the *identical*
//! protocol code from wall-clock time: every node (and the recorder) is
//! an OS thread; a hub thread plays the broadcast medium over crossbeam
//! channels, enforcing the §4.4.1 publish-before-use gate exactly like
//! the simulated media do. Nothing in `publishing-demos` or the recorder
//! knows which runtime it is under — the payoff of the sans-IO design.
//!
//! Timing is mapped by a shared epoch: `SimTime` = elapsed wall time
//! since system start. Runs are *not* deterministic (that is the point);
//! tests assert outcomes, not schedules.

use crate::node::{RNAction, RecorderConfig, RecorderNode};
use crossbeam::channel::{bounded, select, tick, Receiver, Sender};
use parking_lot::Mutex;
use publishing_demos::costs::CostModel;
use publishing_demos::harness::OutputLine;
use publishing_demos::ids::{NodeId, ProcessId};
use publishing_demos::kernel::{Kernel, KernelAction};
use publishing_demos::link::Link;
use publishing_demos::registry::{ProgramRegistry, UnknownProgram};
use publishing_demos::transport::TransportConfig;
use publishing_net::frame::Frame;
use publishing_sim::time::SimTime;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Messages between threads.
enum ToNode {
    /// A frame from the medium, with the recorder-gating flag.
    Frame(Frame, bool),
    /// Crash one local process.
    CrashProcess(u32, String),
    /// Shut the thread down.
    Quit,
}

struct HubMsg {
    frame: Frame,
}

/// Control handle for a running live system.
pub struct LiveSystem {
    epoch: Instant,
    node_tx: Vec<Sender<ToNode>>,
    recorder_tx: Sender<ToNode>,
    outputs: Arc<Mutex<Vec<OutputLine>>>,
    recorder_up: Arc<AtomicBool>,
    spawned: Arc<AtomicU32>,
    per_node_spawns: Mutex<std::collections::BTreeMap<u32, u32>>,
    registry: ProgramRegistry,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Builds and starts a live system.
pub struct LiveBuilder {
    nodes: u32,
    registry: ProgramRegistry,
    recorder_cfg: RecorderConfig,
}

impl LiveBuilder {
    /// A live system with `nodes` processing nodes plus a recorder.
    pub fn new(nodes: u32, registry: ProgramRegistry) -> Self {
        LiveBuilder {
            nodes,
            registry,
            recorder_cfg: RecorderConfig::default(),
        }
    }

    /// Overrides the recorder configuration.
    pub fn recorder(mut self, cfg: RecorderConfig) -> Self {
        self.recorder_cfg = cfg;
        self
    }

    /// Starts the threads. Spawn programs through
    /// [`LiveSystem::spawn_blocking`], then drive with real time.
    pub fn start(self) -> LiveSystem {
        let epoch = Instant::now();
        let recorder_node = NodeId(self.nodes);
        let outputs = Arc::new(Mutex::new(Vec::new()));
        let recorder_up = Arc::new(AtomicBool::new(true));

        // The hub fans frames out to every station; per-node inboxes.
        let (hub_tx, hub_rx) = bounded::<HubMsg>(1024);
        let mut node_tx = Vec::new();
        let mut node_rx = Vec::new();
        for _ in 0..=self.nodes {
            let (tx, rx) = bounded::<ToNode>(1024);
            node_tx.push(tx);
            node_rx.push(rx);
        }
        let recorder_rx = node_rx.pop().expect("recorder inbox");
        let recorder_tx = node_tx.pop().expect("recorder inbox");

        let mut handles = Vec::new();

        // Hub thread: broadcast with the publish-before-use gate.
        {
            let node_tx = node_tx.clone();
            let recorder_tx = recorder_tx.clone();
            let recorder_up = recorder_up.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(HubMsg { frame }) = hub_rx.recv() {
                    let ok = recorder_up.load(Ordering::SeqCst);
                    // Deliver to the recorder first (it must overhear
                    // everything), then to every node.
                    let _ = recorder_tx.send(ToNode::Frame(frame.clone(), ok));
                    for tx in &node_tx {
                        let _ = tx.send(ToNode::Frame(frame.clone(), ok));
                    }
                }
            }));
        }

        // Node threads.
        for (i, rx) in node_rx.into_iter().enumerate() {
            let mut kernel = Kernel::new(
                NodeId(i as u32),
                self.registry.clone(),
                CostModel::zero(),
                TransportConfig::default(),
                true,
            );
            kernel.set_recorder(recorder_node);
            let hub_tx = hub_tx.clone();
            let outputs = outputs.clone();
            handles.push(std::thread::spawn(move || {
                node_loop(epoch, kernel, rx, hub_tx, outputs)
            }));
        }

        // Recorder thread.
        {
            let mut rn = RecorderNode::new(recorder_node, self.recorder_cfg);
            let watch: Vec<NodeId> = (0..self.nodes).map(NodeId).collect();
            let hub_tx = hub_tx.clone();
            handles.push(std::thread::spawn(move || {
                recorder_loop(epoch, &mut rn, &watch, recorder_rx, hub_tx)
            }));
        }

        drop(hub_tx);
        LiveSystem {
            epoch,
            node_tx,
            recorder_tx,
            outputs,
            recorder_up,
            spawned: Arc::new(AtomicU32::new(0)),
            per_node_spawns: Mutex::new(Default::default()),
            registry: self.registry,
            handles,
        }
    }
}

/// A time-ordered pending timer.
struct PendingTimer {
    at: SimTime,
    token: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.token == other.token
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by time.
        (other.at, other.token).cmp(&(self.at, self.token))
    }
}

fn now_sim(epoch: Instant) -> SimTime {
    SimTime::from_nanos(epoch.elapsed().as_nanos() as u64)
}

fn node_loop(
    epoch: Instant,
    mut kernel: Kernel,
    rx: Receiver<ToNode>,
    hub_tx: Sender<HubMsg>,
    outputs: Arc<Mutex<Vec<OutputLine>>>,
) {
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let ticker = tick(Duration::from_millis(1));
    loop {
        // Fire due timers.
        let now = now_sim(epoch);
        while timers.peek().map(|t| t.at <= now).unwrap_or(false) {
            let t = timers.pop().expect("peeked");
            let actions = kernel.on_timer(now_sim(epoch), t.token);
            apply_kernel(epoch, actions, &hub_tx, &outputs, &mut timers);
        }
        select! {
            recv(rx) -> msg => match msg {
                Ok(ToNode::Frame(frame, ok)) => {
                    let actions = kernel.on_frame(now_sim(epoch), &frame, ok);
                    apply_kernel(epoch, actions, &hub_tx, &outputs, &mut timers);
                }
                Ok(ToNode::CrashProcess(local, reason)) => {
                    let actions = kernel.crash_process(now_sim(epoch), local, &reason);
                    apply_kernel(epoch, actions, &hub_tx, &outputs, &mut timers);
                }
                Ok(ToNode::Quit) | Err(_) => return,
            },
            recv(ticker) -> _ => {}
        }
    }
}

fn apply_kernel(
    epoch: Instant,
    actions: Vec<KernelAction>,
    hub_tx: &Sender<HubMsg>,
    outputs: &Arc<Mutex<Vec<OutputLine>>>,
    timers: &mut BinaryHeap<PendingTimer>,
) {
    for a in actions {
        match a {
            KernelAction::Transmit(frame) => {
                let _ = hub_tx.send(HubMsg { frame });
            }
            KernelAction::SetTimer { at, token } => {
                timers.push(PendingTimer { at, token });
            }
            KernelAction::Output { pid, seq, bytes } => {
                outputs.lock().push(OutputLine {
                    at: now_sim(epoch),
                    pid,
                    seq,
                    bytes,
                });
            }
        }
    }
}

fn recorder_loop(
    epoch: Instant,
    rn: &mut RecorderNode,
    watch: &[NodeId],
    rx: Receiver<ToNode>,
    hub_tx: Sender<HubMsg>,
) {
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let start = rn.start(now_sim(epoch), watch);
    apply_recorder(rn, start, &hub_tx, &mut timers);
    let ticker = tick(Duration::from_millis(1));
    loop {
        let now = now_sim(epoch);
        while timers.peek().map(|t| t.at <= now).unwrap_or(false) {
            let t = timers.pop().expect("peeked");
            let actions = rn.on_timer(now_sim(epoch), t.token);
            apply_recorder(rn, actions, &hub_tx, &mut timers);
        }
        select! {
            recv(rx) -> msg => match msg {
                Ok(ToNode::Frame(frame, ok)) => {
                    let actions = rn.on_frame(now_sim(epoch), &frame, ok);
                    apply_recorder(rn, actions, &hub_tx, &mut timers);
                }
                Ok(ToNode::CrashProcess(..)) => {}
                Ok(ToNode::Quit) | Err(_) => return,
            },
            recv(ticker) -> _ => {}
        }
    }
}

fn apply_recorder(
    rn: &mut RecorderNode,
    actions: Vec<RNAction>,
    hub_tx: &Sender<HubMsg>,
    timers: &mut BinaryHeap<PendingTimer>,
) {
    for a in actions {
        match a {
            RNAction::Transmit(frame) => {
                let _ = hub_tx.send(HubMsg { frame });
            }
            RNAction::SetTimer { at, token } => {
                timers.push(PendingTimer { at, token });
            }
            RNAction::RestartNode { node, .. } => {
                // Node restarts need an operator in live mode; decline so
                // the watchdog keeps retrying (e.g. across a recorder
                // outage that made everyone look dead).
                rn.decline_node_restart(node);
            }
            RNAction::RecoveryDone { .. } => {}
        }
    }
}

impl LiveSystem {
    /// Spawns a program on `node`, blocking briefly so the kernel thread
    /// assigns the pid deterministically (first spawn on a node is local
    /// id 1, and so on).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownProgram`] for unregistered images — checked
    /// against the registry shape used by every node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn spawn_blocking(
        &mut self,
        node: u32,
        program: &str,
        links: Vec<Link>,
    ) -> Result<ProcessId, UnknownProgram> {
        if !self.registry.contains(program) {
            return Err(UnknownProgram(program.to_string()));
        }
        self.spawn_via_control(node, program, links)
    }

    fn spawn_via_control(
        &mut self,
        node: u32,
        program: &str,
        links: Vec<Link>,
    ) -> Result<ProcessId, UnknownProgram> {
        // Send a CREATE_PROCESS control datagram to the node's kernel
        // endpoint through its inbox; local ids are deterministic (1, 2,
        // … per node), so the pid is known without waiting for a reply.
        use publishing_demos::ids::{Channel, MessageId, KERNEL_LOCAL};
        use publishing_demos::kernel::encode_ctl;
        use publishing_demos::message::{Message, MessageHeader};
        use publishing_demos::protocol::{codes, CreateProcess};
        use publishing_demos::transport::Wire;
        use publishing_sim::codec::Encode;

        // Craft a CREATE_PROCESS datagram from a synthetic operator
        // endpoint. Datagrams skip transport state, so a one-shot frame
        // works; the kernel's reply (if requested) is not needed because
        // local ids are deterministic per node: 1, 2, 3, …
        let req = CreateProcess {
            program_name: program.to_string(),
            initial_links: links,
            reply_to: None,
        };
        let body = encode_ctl(codes::CREATE_PROCESS, &req);
        let operator = ProcessId::kernel_of(NodeId(u32::MAX - 1));
        let seq = self.spawned.fetch_add(1, Ordering::SeqCst) as u64 + 1;
        let msg = Message {
            header: MessageHeader {
                id: MessageId {
                    sender: operator,
                    seq,
                },
                to: ProcessId {
                    node: NodeId(node),
                    local: KERNEL_LOCAL,
                },
                code: codes::CREATE_PROCESS,
                channel: Channel::DEFAULT,
                deliver_to_kernel: false,
            },
            passed_link: None,
            body,
        };
        let wire = Wire::Datagram {
            src_node: operator.node,
            msg,
        };
        let frame = Frame::new(
            publishing_net::frame::StationId(u32::MAX - 1),
            publishing_net::frame::Destination::Station(publishing_net::frame::StationId(node)),
            wire.encode_to_vec(),
        );
        let _ = self.node_tx[node as usize].send(ToNode::Frame(frame, true));
        // Local ids are deterministic: count prior spawns on this node.
        let local = {
            let mut counts = self.per_node_spawns.lock();
            let c = counts.entry(node).or_insert(0);
            *c += 1;
            *c
        };
        Ok(ProcessId {
            node: NodeId(node),
            local,
        })
    }

    /// Crashes one process (a detected fault).
    pub fn crash_process(&self, pid: ProcessId, reason: &str) {
        let _ = self.node_tx[pid.node.0 as usize]
            .send(ToNode::CrashProcess(pid.local, reason.to_string()));
    }

    /// Takes the recorder offline (traffic suspends) or back online.
    pub fn set_recorder_up(&self, up: bool) {
        self.recorder_up.store(up, Ordering::SeqCst);
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> SimTime {
        now_sim(self.epoch)
    }

    /// Deduplicated outputs of one process, by output sequence.
    pub fn outputs_of(&self, pid: ProcessId) -> Vec<String> {
        let outputs = self.outputs.lock();
        let mut by_seq: std::collections::BTreeMap<u64, Vec<u8>> = Default::default();
        for o in outputs.iter().filter(|o| o.pid == pid) {
            by_seq.entry(o.seq).or_insert_with(|| o.bytes.clone());
        }
        by_seq
            .values()
            .map(|b| String::from_utf8_lossy(b).into_owned())
            .collect()
    }

    /// Stops every thread and joins them.
    pub fn shutdown(mut self) {
        for tx in &self.node_tx {
            let _ = tx.send(ToNode::Quit);
        }
        let _ = self.recorder_tx.send(ToNode::Quit);
        // The Quit messages make the node/recorder loops return, which
        // drops their hub senders; the hub then sees a closed channel.
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
