//! Quorum gate: the replicated-recorder failover scenario as a CI
//! check.
//!
//! Usage: `quorum [--seed N] [--schedules K] [--smoke]`
//!
//! Two parts, both judged by the chaos recovery oracle (which, on the
//! quorum topology, folds in the consensus safety invariants — election
//! safety, log matching, state-machine safety, and gap/duplicate
//! freedom of the arrival sequence):
//!
//! 1. the **seeded leader-crash schedule** — a deterministic probe
//!    finds which replica leads while commits are in flight, the
//!    schedule kills exactly that replica mid-commit and then a
//!    processing node, and the run must converge with a *different*
//!    replica leading and the node's processes replayed by the
//!    survivors;
//! 2. `K` **generated schedules** (replica crash/restart storms, node
//!    crashes, medium bursts) that must all pass the oracle.

use publishing_chaos::driver::{run_schedule, Engine};
use publishing_chaos::oracle::OracleOptions;
use publishing_chaos::scenario::{Scenario, Topology, NODES, REPLICAS};
use publishing_chaos::schedule::{self, ChaosConfig, Fault, FaultSchedule};
use publishing_sim::time::SimTime;

fn usage() -> ! {
    eprintln!("usage: quorum [--seed N] [--schedules K] [--smoke]");
    std::process::exit(2);
}

/// The committed acceptance scenario: crash the leader mid-commit,
/// then a processing node; demand failover plus replica-served replay.
fn leader_crash_gate(seed: u64) -> Result<(), String> {
    let scenario = Scenario::new(Topology::Quorum, seed);
    let crash_at = 250;
    let old_leader = {
        let mut probe = scenario.build();
        probe.run_until_or_fault(SimTime::from_millis(crash_at));
        probe
            .quorum_leader()
            .ok_or("no leader by the crash instant")? as u32
    };
    let sched = FaultSchedule {
        workload_seed: seed,
        horizon_ms: 1200,
        faults: vec![
            Fault::CrashReplica {
                at_ms: crash_at,
                group: 0,
                idx: old_leader,
            },
            Fault::CrashNode {
                at_ms: 400,
                node: 2,
            },
        ],
    };
    let eng = Engine::new(scenario.clone(), OracleOptions::default())
        .map_err(|e| format!("baseline: {e}"))?;
    let failures = eng.run(&sched);
    if !failures.is_empty() {
        return Err(format!(
            "leader-crash schedule {sched} failed its oracle:\n  {}",
            failures.join("\n  ")
        ));
    }
    let mut t = scenario.build();
    run_schedule(t.as_mut(), &sched);
    let new_leader = t.quorum_leader().ok_or("leaderless after heal")? as u32;
    if new_leader == old_leader {
        return Err(format!(
            "replica {old_leader} still leads after its own crash"
        ));
    }
    if t.recoveries_completed() == 0 {
        return Err("node crash completed no recovery".into());
    }
    println!(
        "leader-crash gate: replica {old_leader} crashed at {crash_at}ms, \
         replica {new_leader} took over, {} recoveries completed",
        t.recoveries_completed()
    );
    Ok(())
}

fn generated_gate(seed: u64, schedules: u64) -> Result<(), String> {
    let eng = Engine::new(
        Scenario::new(Topology::Quorum, seed),
        OracleOptions::default(),
    )
    .map_err(|e| format!("baseline: {e}"))?;
    for k in 0..schedules {
        let sched = schedule::generate(&ChaosConfig {
            seed: seed.wrapping_mul(1000).wrapping_add(k),
            nodes: NODES,
            shards: 0,
            replicas: REPLICAS,
            procs: 4,
            horizon_ms: 1500,
            max_faults: 7,
        });
        let failures = eng.run(&sched);
        if failures.is_empty() {
            println!("schedule {k}: ok ({} faults)", sched.faults.len());
            continue;
        }
        println!("schedule {k}: FAILED");
        for f in &failures {
            println!("  - {f}");
        }
        let min = eng.shrink(&sched);
        return Err(format!(
            "minimal reproducer ({} faults), replay with:\n  \
             chaos --schedule '{min}'",
            min.faults.len()
        ));
    }
    println!("{schedules} generated schedules passed");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 17u64;
    let mut schedules = 10u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = v,
                _ => usage(),
            },
            "--schedules" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => schedules = v,
                _ => usage(),
            },
            "--smoke" => schedules = 3,
            _ => usage(),
        }
    }
    if let Err(e) = leader_crash_gate(seed).and_then(|()| generated_gate(seed, schedules)) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
