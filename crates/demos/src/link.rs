//! Links: the capability-like name space of DEMOS (§4.2.2.1).
//!
//! "A link is much like a capability. It allows access and is immutable
//! and unforgable. A DEMOS process must have a link to another process in
//! order to send it messages." Links live outside process address spaces,
//! in kernel-resident link tables or inside messages in transit; a process
//! refers to a link only via its link id.

use crate::ids::{Channel, LinkId, ProcessId};
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use std::collections::BTreeMap;

/// A link: the right to send messages to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// The process messages over this link are delivered to.
    pub dest: ProcessId,
    /// The code the creator assigned; carried in every message header so
    /// the receiver can tell which of its links was used (§4.2.2.1).
    pub code: u32,
    /// The channel messages over this link arrive on (§4.2.2.2).
    pub channel: Channel,
    /// A DELIVERTOKERNEL link (§4.4.3): messages sent over it are handed
    /// to the kernel process of the node hosting `dest`, which performs
    /// process-control actions while assuming `dest`'s identity.
    pub deliver_to_kernel: bool,
}

impl Link {
    /// Creates an ordinary link to `dest`.
    pub fn to(dest: ProcessId, channel: Channel, code: u32) -> Self {
        Link {
            dest,
            code,
            channel,
            deliver_to_kernel: false,
        }
    }

    /// Creates a DELIVERTOKERNEL link controlling `dest`.
    pub fn control(dest: ProcessId, code: u32) -> Self {
        Link {
            dest,
            code,
            channel: Channel::DEFAULT,
            deliver_to_kernel: true,
        }
    }
}

impl Encode for Link {
    fn encode(&self, e: &mut Encoder) {
        self.dest.encode(e);
        e.u32(self.code)
            .u8(self.channel.0)
            .bool(self.deliver_to_kernel);
    }
}

impl Decode for Link {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let dest = ProcessId::decode(d)?;
        let code = d.u32()?;
        let channel = Channel(d.u8()?);
        let deliver_to_kernel = d.bool()?;
        Ok(Link {
            dest,
            code,
            channel,
            deliver_to_kernel,
        })
    }
}

/// A kernel-resident link table (part of the process save area, §4.4.3).
///
/// Link ids are never reused within a table's lifetime, so a stale id can
/// never silently alias a new link — and the allocation counter is part of
/// the checkpoint, keeping id assignment deterministic across recovery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkTable {
    entries: BTreeMap<u32, Link>,
    next: u32,
}

impl LinkTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LinkTable::default()
    }

    /// Inserts a link, returning its id.
    pub fn insert(&mut self, link: Link) -> LinkId {
        let id = self.next;
        self.next += 1;
        self.entries.insert(id, link);
        LinkId(id)
    }

    /// Looks up a link by id.
    pub fn get(&self, id: LinkId) -> Option<&Link> {
        self.entries.get(&id.0)
    }

    /// Removes a link (used when a link is passed in a message or
    /// moved by MOVELINK; "the link is removed from the sender's link
    /// table and copied into the message", §4.2.2.3).
    pub fn remove(&mut self, id: LinkId) -> Option<Link> {
        self.entries.remove(&id.0)
    }

    /// Returns the number of links held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table holds no links.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(id, link)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.entries.iter().map(|(&id, l)| (LinkId(id), l))
    }
}

impl Encode for LinkTable {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.next);
        e.u64(self.entries.len() as u64);
        for (id, link) in &self.entries {
            e.u32(*id);
            link.encode(e);
        }
    }
}

impl Decode for LinkTable {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let next = d.u32()?;
        let n = d.u64()?;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let id = d.u32()?;
            let link = Link::decode(d)?;
            entries.insert(id, link);
        }
        Ok(LinkTable { entries, next })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn pid(n: u32, l: u32) -> ProcessId {
        ProcessId {
            node: NodeId(n),
            local: l,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut t = LinkTable::new();
        let id = t.insert(Link::to(pid(1, 2), Channel(3), 77));
        assert_eq!(t.get(id).unwrap().code, 77);
        let link = t.remove(id).unwrap();
        assert_eq!(link.dest, pid(1, 2));
        assert!(t.get(id).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn ids_never_reused() {
        let mut t = LinkTable::new();
        let a = t.insert(Link::to(pid(1, 1), Channel(0), 0));
        t.remove(a);
        let b = t.insert(Link::to(pid(1, 1), Channel(0), 0));
        assert_ne!(a, b);
    }

    #[test]
    fn codec_roundtrip_preserves_next_counter() {
        let mut t = LinkTable::new();
        t.insert(Link::to(pid(1, 1), Channel(2), 5));
        let a = t.insert(Link::control(pid(2, 3), 9));
        t.remove(a);
        let buf = t.encode_to_vec();
        let t2 = LinkTable::decode_all(&buf).unwrap();
        assert_eq!(t, t2);
        // A restored table must allocate the same next id the original
        // would — determinism across recovery.
        let (mut t, mut t2) = (t, t2);
        assert_eq!(
            t.insert(Link::to(pid(9, 9), Channel(0), 0)),
            t2.insert(Link::to(pid(9, 9), Channel(0), 0))
        );
    }

    #[test]
    fn control_links_flagged() {
        assert!(Link::control(pid(1, 1), 0).deliver_to_kernel);
        assert!(!Link::to(pid(1, 1), Channel(0), 0).deliver_to_kernel);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = LinkTable::new();
        t.insert(Link::to(pid(1, 1), Channel(0), 10));
        t.insert(Link::to(pid(1, 2), Channel(0), 20));
        let codes: Vec<u32> = t.iter().map(|(_, l)| l.code).collect();
        assert_eq!(codes, vec![10, 20]);
    }
}
