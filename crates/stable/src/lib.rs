//! Stable storage for the PUBLISHING recorder.
//!
//! §3.1 requires "a reliable recorder \[that\] saves, or publishes, in
//! stable storage all process checkpoints and all messages sent to
//! processes." This crate is that storage substrate:
//!
//! - [`disk`]: a simulated disk with the Figure 5.2 service model (3 ms
//!   positioning latency, 2 MB/s transfer);
//! - [`store`]: the page-buffered message log and checkpoint store,
//!   including the 4 KB write batching of §5.1, page compaction of §4.5,
//!   and the index rebuild used by recorder recovery (§3.3.4);
//! - [`tmr`]: triple modular redundancy voting and the reliability
//!   arithmetic behind making the recorder "a much lower probability
//!   event than other parts of the system failing";
//! - [`cell`]: a two-slot torn-write-safe cell for small critical state
//!   (the quorum tier's term/vote record).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod disk;
pub mod store;
pub mod tmr;

pub use cell::DurableCell;
pub use disk::{Disk, DiskOp, DiskParams, DiskResult, DiskStats, IoToken};
pub use store::{Checkpoint, MsgRecord, RecordKey, StableStore, StoreEvent, StoreIo, StoreStats};
pub use tmr::{tmr_mtbf_hours, tmr_reliability, vote, TmrComponent, VoteOutcome};
