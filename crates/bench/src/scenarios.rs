//! Benchmark scenarios: the runnable experiments behind every table and
//! figure in the evaluation. Each function builds a world (or medium, or
//! model), runs the paper's experiment, and returns the numbers the paper
//! reports. The `paper_tables` binary prints them; the Criterion benches
//! time them.

use publishing_core::node::RecorderConfig;
use publishing_core::world::{World, WorldBuilder};
use publishing_demos::costs::CostModel;
use publishing_demos::driver::SHORT_BYTES;
use publishing_demos::ids::{Channel, ChannelSet, LinkId, NodeId, ProcessId};
use publishing_demos::kernel::{decode_ctl, encode_ctl};
use publishing_demos::link::Link;
use publishing_demos::program::{Ctx, Program, Received};
use publishing_demos::programs;
use publishing_demos::protocol::codes;
use publishing_demos::registry::ProgramRegistry;
use publishing_demos::sysproc::{self, sys_codes, CreateDone, CreateReq};
use publishing_net::ethernet::Ethernet;
use publishing_net::frame::{Destination, Frame, StationId};
use publishing_net::lan::{Lan, LanAction, LanConfig};
use publishing_net::token_ring::TokenRing;
use publishing_sim::codec::{CodecError, Decode, Encoder};
use publishing_sim::event::Scheduler;
use publishing_sim::rng::DetRng;
use publishing_sim::time::{SimDuration, SimTime};
use publishing_sim::{Counter, Summary};

// ---------------------------------------------------------------------
// Figure 5.6/5.7: per-message overheads with and without publishing
// ---------------------------------------------------------------------

/// The Figure 5.6 measurement program: sends a message to itself `left`
/// times (512 in the paper).
#[derive(Debug, Clone)]
pub struct SelfPing {
    /// Iterations remaining.
    pub left: u64,
}

impl Program for SelfPing {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.create_link(Channel::DEFAULT, 0);
        if self.left > 0 {
            let _ = ctx.send(me, vec![0u8; 32]);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Received) {
        self.left -= 1;
        if self.left > 0 {
            let _ = ctx.send(LinkId(0), vec![0u8; 32]);
        } else {
            ctx.output(b"selfping done".to_vec());
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        self.left.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        self.left =
            u64::from_le_bytes(bytes.try_into().map_err(|_| CodecError::UnexpectedEnd {
                needed: 8,
                remaining: bytes.len(),
            })?);
        Ok(())
    }
}

/// Results of the Figure 5.7 experiment.
#[derive(Debug, Clone, Copy)]
pub struct PerMessageCosts {
    /// Mean elapsed (real) time per send/receive round, milliseconds.
    pub real_ms: f64,
    /// Mean kernel CPU time per round, milliseconds.
    pub cpu_ms: f64,
}

/// Runs the Figure 5.6 program on one node and measures per-round costs.
pub fn per_message_costs(publishing: bool, rounds: u64) -> PerMessageCosts {
    let mut reg = ProgramRegistry::new();
    reg.register("selfping", move || Box::new(SelfPing { left: rounds }));
    let mut builder = WorldBuilder::new(1)
        .registry(reg)
        .costs(CostModel::default());
    if !publishing {
        builder = builder.without_publishing();
    }
    let mut w = builder.build();
    let pid = w.spawn(0, "selfping", vec![]).unwrap();
    let start_cpu = w.kernels[&0].stats().cpu_used;
    let start_real = w.now();
    // Stop as soon as the program reports completion so background
    // watchdog chatter doesn't pollute the measurement.
    for step in 1..200_000u64 {
        w.run_until(SimTime::from_millis(step * 20));
        if !w.outputs_of(pid).is_empty() {
            break;
        }
    }
    assert_eq!(w.outputs_of(pid).len(), 1, "self-ping must complete");
    let cpu = w.kernels[&0].stats().cpu_used - start_cpu;
    let done_at = w
        .outputs
        .iter()
        .find(|o| o.pid == pid)
        .map(|o| o.at)
        .unwrap_or(w.now());
    let real = done_at.saturating_since(start_real);
    PerMessageCosts {
        real_ms: real.as_millis_f64() / rounds as f64,
        cpu_ms: cpu.as_millis_f64() / rounds as f64,
    }
}

// ---------------------------------------------------------------------
// Figure 5.8: per-process creation/destruction overheads
// ---------------------------------------------------------------------

/// Creates and destroys a null process `left` times through the §4.2.3
/// control chain, as the Figure 5.8 experiment does (25 in the paper).
#[derive(Debug)]
pub struct CreateDestroyDriver {
    left: u64,
}

impl Program for CreateDestroyDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.left > 0 {
            let reply = ctx.create_link(Channel::DEFAULT, 0);
            let req = CreateReq {
                program_name: "null".into(),
                node: NodeId(0),
                req_id: 0,
            };
            let _ = ctx.send_passing(LinkId(0), encode_ctl(sys_codes::PM_CREATE, &req), reply);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        if let Some((sys_codes::PM_REPLY, payload)) = decode_ctl(&msg.body) {
            let done = CreateDone::decode_all(payload).unwrap_or(CreateDone {
                pid: None,
                req_id: 0,
            });
            if done.pid.is_some() {
                if let Some(control) = msg.link {
                    let mut e = Encoder::new();
                    e.u32(codes::STOP_PROCESS);
                    let _ = ctx.send(control, e.finish());
                }
            }
            self.left -= 1;
            if self.left > 0 {
                let reply = ctx.create_link(Channel::DEFAULT, 0);
                let req = CreateReq {
                    program_name: "null".into(),
                    node: NodeId(0),
                    req_id: 0,
                };
                let _ = ctx.send_passing(LinkId(0), encode_ctl(sys_codes::PM_CREATE, &req), reply);
            } else {
                ctx.output(b"create-destroy done".to_vec());
            }
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        self.left.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        self.left =
            u64::from_le_bytes(bytes.try_into().map_err(|_| CodecError::UnexpectedEnd {
                needed: 8,
                remaining: bytes.len(),
            })?);
        Ok(())
    }
}

/// A program that does nothing (the "null process" of Figure 5.8).
#[derive(Debug, Default)]
pub struct NullProgram;

impl Program for NullProgram {
    fn on_start(&mut self, _: &mut Ctx<'_>) {}
    fn on_message(&mut self, _: &mut Ctx<'_>, _: Received) {}
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }
    fn restore(&mut self, _: &[u8]) -> Result<(), CodecError> {
        Ok(())
    }
}

/// Runs the Figure 5.8 experiment; returns total kernel CPU ms for
/// `cycles` create/destroy cycles.
pub fn per_process_costs(publishing: bool, cycles: u64) -> f64 {
    let mut reg = ProgramRegistry::new();
    sysproc::register_system(&mut reg);
    reg.register("null", || Box::<NullProgram>::default());
    reg.register("driver", move || {
        Box::new(CreateDestroyDriver { left: cycles })
    });
    let mut builder = WorldBuilder::new(1)
        .registry(reg)
        .costs(CostModel::default());
    if !publishing {
        builder = builder.without_publishing();
    }
    let mut w = builder.build();
    let memsched = w
        .spawn(
            0,
            "memsched",
            vec![Link::to(
                ProcessId::kernel_of(NodeId(0)),
                Channel::DEFAULT,
                0,
            )],
        )
        .unwrap();
    let procmgr = w
        .spawn(0, "procmgr", vec![Link::to(memsched, Channel::DEFAULT, 0)])
        .unwrap();
    let start_cpu = w.kernels[&0].stats().cpu_used;
    let driver = w
        .spawn(0, "driver", vec![Link::to(procmgr, Channel::DEFAULT, 0)])
        .unwrap();
    for step in 1..200_000u64 {
        w.run_until(SimTime::from_millis(step * 20));
        if !w.outputs_of(driver).is_empty() {
            break;
        }
    }
    assert_eq!(w.outputs_of(driver).len(), 1, "driver must complete");
    (w.kernels[&0].stats().cpu_used - start_cpu).as_millis_f64()
}

// ---------------------------------------------------------------------
// Figures 6.1/6.2: standard vs Acknowledging Ethernet under load
// ---------------------------------------------------------------------

/// Results of one Ethernet load experiment.
#[derive(Debug, Clone, Copy)]
pub struct EthernetRun {
    /// Offered data frames per second (all stations).
    pub offered_fps: f64,
    /// Data frames delivered per second (goodput, one receiver each).
    pub delivered_fps: f64,
    /// Collisions observed.
    pub collisions: u64,
    /// Medium busy fraction.
    pub utilization: f64,
}

/// Drives an Ethernet with Poisson data traffic from `stations` senders
/// for `horizon`; in `acknowledging` mode MAC-level ack slots cover
/// acknowledgements, otherwise every delivery triggers a contending
/// 40-byte ack frame (the Figure 6.2 situation).
pub fn ethernet_run(
    acknowledging: bool,
    stations: u32,
    frames_per_sec_per_station: f64,
    horizon: SimTime,
    seed: u64,
) -> EthernetRun {
    let cfg = LanConfig {
        seed,
        // The MAC experiment isolates medium behaviour: no interface delay.
        interpacket: SimDuration::from_micros(10),
        ..LanConfig::default()
    };
    let mut lan = if acknowledging {
        Ethernet::acknowledging(cfg)
    } else {
        Ethernet::standard(cfg)
    };
    for s in 0..stations {
        lan.attach(StationId(s));
    }
    let mut rng = DetRng::new(seed ^ 0xE771);
    let mut sched: Scheduler<Ev> = Scheduler::new();

    enum Ev {
        Submit { from: u32 },
        LanTimer(u64),
        Deliver { to: u32, data: bool },
    }

    // Seed each station's Poisson arrivals.
    let gap = 1.0 / frames_per_sec_per_station;
    for s in 0..stations {
        let dt = SimDuration::from_secs_f64(rng.exponential(gap));
        sched.schedule_at(SimTime::ZERO + dt, Ev::Submit { from: s });
    }
    let mut delivered = Counter::new();
    let mut offered = Counter::new();

    fn apply(sched: &mut Scheduler<Ev>, actions: Vec<LanAction>, delivered: &mut Counter) {
        for a in actions {
            match a {
                LanAction::SetTimer { at, token } => {
                    sched.schedule_at(at, Ev::LanTimer(token));
                }
                LanAction::Deliver { at, to, frame, .. } => {
                    // Data frames are >100 bytes; acks are 40.
                    let data = frame.payload.len() >= 100;
                    if data {
                        delivered.inc();
                    }
                    sched.schedule_at(at, Ev::Deliver { to: to.0, data });
                }
                LanAction::TxOutcome { .. } => {}
            }
        }
    }

    while let Some((now, ev)) = sched.pop() {
        if now > horizon {
            break;
        }
        match ev {
            Ev::Submit { from } => {
                offered.inc();
                let to = (from + 1 + rng.below(stations as u64 - 1) as u32) % stations;
                let frame = Frame::new(
                    StationId(from),
                    Destination::Station(StationId(to)),
                    vec![0; 200],
                );
                let actions = lan.submit(now, frame);
                apply(&mut sched, actions, &mut delivered);
                let dt = SimDuration::from_secs_f64(rng.exponential(gap));
                sched.schedule_at(now + dt, Ev::Submit { from });
            }
            Ev::LanTimer(token) => {
                let actions = lan.timer(now, token);
                apply(&mut sched, actions, &mut delivered);
            }
            Ev::Deliver { to, data } => {
                if data && !acknowledging {
                    // Standard Ethernet: the receiver's MAC-level ack is an
                    // ordinary contending frame.
                    let target = StationId((to + 1) % stations); // ack goes back; dst irrelevant
                    let frame =
                        Frame::new(StationId(to), Destination::Station(target), vec![0; 40]);
                    let actions = lan.submit(now, frame);
                    apply(&mut sched, actions, &mut delivered);
                }
            }
        }
    }
    let secs = horizon.as_secs_f64();
    EthernetRun {
        offered_fps: offered.get() as f64 / secs,
        delivered_fps: delivered.get() as f64 / secs,
        collisions: lan.stats().collisions.get(),
        utilization: lan.stats().busy.utilization(horizon),
    }
}

// ---------------------------------------------------------------------
// Figures 6.3/6.4: token-ring delivery with the recorder ack field
// ---------------------------------------------------------------------

/// Results of a token-ring placement experiment.
#[derive(Debug, Clone, Copy)]
pub struct RingRun {
    /// Ring distance from sender to recorder (hops).
    pub recorder_distance: u32,
    /// Mean delivery latency (µs).
    pub mean_latency_us: f64,
}

/// Measures delivery latency on a ring as a function of where the
/// recorder sits relative to the traffic: destinations upstream of the
/// recorder pay a second revolution (§6.1.2).
pub fn token_ring_run(stations: u32, recorder: u32, sends: u32) -> RingRun {
    let cfg = LanConfig {
        seed: 17,
        ..LanConfig::default()
    };
    let hop = SimDuration::from_micros(10);
    let mut ring = TokenRing::new(cfg, hop);
    for s in 0..stations {
        ring.attach(StationId(s));
    }
    ring.set_required_recorders(vec![StationId(recorder)]);
    let mut latency_us = Summary::new();
    let mut now = SimTime::ZERO;
    for i in 0..sends {
        let from = 0u32;
        let to = 1 + (i % (stations - 1));
        if to == recorder {
            continue;
        }
        let frame = Frame::new(
            StationId(from),
            Destination::Station(StationId(to)),
            vec![0; SHORT_BYTES],
        );
        let actions = ring.submit(now, frame);
        let mut strip = now;
        for a in &actions {
            match a {
                LanAction::Deliver { at, to: d, .. } if d.0 == to => {
                    latency_us.record(at.saturating_since(now).as_millis_f64() * 1000.0);
                }
                LanAction::SetTimer { at, token } => {
                    strip = *at;
                    // Free the ring for the next send.
                    let _ = (at, token);
                }
                _ => {}
            }
        }
        // Fire the strip timer to release the token.
        if let Some(LanAction::SetTimer { at, token }) = actions
            .iter()
            .find(|a| matches!(a, LanAction::SetTimer { .. }))
        {
            let more = ring.timer(*at, *token);
            assert!(more
                .iter()
                .all(|a| matches!(a, LanAction::TxOutcome { .. })));
            strip = *at;
        }
        now = strip;
    }
    RingRun {
        recorder_distance: recorder,
        mean_latency_us: latency_us.mean(),
    }
}

// ---------------------------------------------------------------------
// Baseline comparison: work lost after a crash
// ---------------------------------------------------------------------

/// Work lost (summed rollback across processes) under each recovery
/// scheme, for the same random workload.
#[derive(Debug, Clone, Copy)]
pub struct BaselineComparison {
    /// Rule 1 recovery lines (undirected interactions).
    pub recovery_lines_ms: f64,
    /// Rule 2 (Russell's directional messages with replay).
    pub russell_ms: f64,
    /// Publishing: only the crashed process recomputes from its own
    /// checkpoint.
    pub publishing_ms: f64,
}

/// Runs the Chapter 2 comparison over `trials` random histories.
pub fn baseline_comparison(trials: u32, seed: u64) -> BaselineComparison {
    use publishing_core::baseline::{recovery_line_rule1, recovery_line_rule2, History};
    let mut rng = DetRng::new(seed);
    let horizon = SimTime::from_secs(10);
    let mut r1 = 0.0;
    let mut r2 = 0.0;
    let mut pubs = 0.0;
    for _ in 0..trials {
        let h = History::random(
            &mut rng,
            4,
            horizon,
            SimDuration::from_millis(150),
            SimDuration::from_secs(1),
        );
        let crashed = rng.index(4);
        let crash_at = horizon;
        let l1 = recovery_line_rule1(&h, crashed, crash_at);
        let l2 = recovery_line_rule2(&h, crashed, crash_at);
        r1 += l1.work_lost(crash_at).as_millis_f64();
        r2 += l2.work_lost(crash_at).as_millis_f64();
        // Publishing: the crashed process alone recomputes from its last
        // checkpoint; nobody else loses anything.
        let own_cp = h.processes[crashed]
            .checkpoints
            .iter()
            .rev()
            .find(|&&c| c < crash_at)
            .copied()
            .unwrap_or(SimTime::ZERO);
        pubs += crash_at.saturating_since(own_cp).as_millis_f64();
    }
    let n = trials as f64;
    BaselineComparison {
        recovery_lines_ms: r1 / n,
        russell_ms: r2 / n,
        publishing_ms: pubs / n,
    }
}

// ---------------------------------------------------------------------
// Recovery-time measurement vs the §3.2.3 model
// ---------------------------------------------------------------------

/// Measured recovery latency for a crash after `work_ms` of activity,
/// with checkpoints every `checkpoint_ms` (0 = never).
pub fn measured_recovery_ms(checkpoint_ms: u64, crash_at_ms: u64) -> f64 {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("ping", || {
        let mut p = programs::PingClient::new(2000);
        p.think_ns = 1_000_000;
        Box::new(p)
    });
    let policy = if checkpoint_ms == 0 {
        publishing_core::checkpoint::CheckpointPolicy::Never
    } else {
        publishing_core::checkpoint::CheckpointPolicy::Periodic(SimDuration::from_millis(
            checkpoint_ms,
        ))
    };
    let rc = RecorderConfig {
        policy,
        policy_tick: SimDuration::from_millis(5),
        ..RecorderConfig::default()
    };
    let mut w = WorldBuilder::new(2).registry(reg).recorder(rc).build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let _client = w
        .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(crash_at_ms));
    let completed_before = w.recorder.manager().stats().completed.get();
    w.crash_process(server, "bench");
    let crash_time = w.now();
    // Run until the recovery job completes (crash notice + recreate +
    // replay + finish handshake).
    let mut recovered_at = None;
    for step in 1..20_000u64 {
        w.run_until(crash_time + SimDuration::from_millis(step));
        if w.recorder.manager().stats().completed.get() > completed_before {
            recovered_at = Some(w.now());
            break;
        }
    }
    recovered_at
        .map(|t| t.saturating_since(crash_time).as_millis_f64())
        .unwrap_or(f64::INFINITY)
}

/// A convenience: the world used by several benches (3 nodes, chatter).
pub fn chatter_world(seed: u64) -> (World, Vec<ProcessId>) {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("chat-a", move || {
        Box::new(programs::Chatter::new(seed, 2, true))
    });
    reg.register("chat-b", move || {
        Box::new(programs::Chatter::new(seed ^ 7, 2, true))
    });
    reg.register("chat-c", move || {
        Box::new(programs::Chatter::new(seed ^ 13, 2, true))
    });
    let mut w = WorldBuilder::new(3).registry(reg).build();
    let a = ProcessId::new(0, 1);
    let b = ProcessId::new(1, 1);
    let c = ProcessId::new(2, 1);
    w.spawn(
        0,
        "chat-a",
        vec![
            Link::to(b, Channel::DEFAULT, 0),
            Link::to(c, Channel::DEFAULT, 0),
        ],
    )
    .unwrap();
    w.spawn(
        1,
        "chat-b",
        vec![
            Link::to(c, Channel::DEFAULT, 0),
            Link::to(a, Channel::DEFAULT, 0),
        ],
    )
    .unwrap();
    w.spawn(
        2,
        "chat-c",
        vec![
            Link::to(a, Channel::DEFAULT, 0),
            Link::to(b, Channel::DEFAULT, 0),
        ],
    )
    .unwrap();
    (w, vec![a, b, c])
}

// Suppress an unused-import lint when ChannelSet isn't referenced here.
#[allow(unused)]
fn _mask_check(m: ChannelSet) -> bool {
    m.contains(Channel(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_message_publishing_costs_more() {
        let with = per_message_costs(true, 64);
        let without = per_message_costs(false, 64);
        assert!(
            with.cpu_ms > without.cpu_ms + 20.0,
            "with {with:?} vs without {without:?}"
        );
        assert!(with.real_ms > without.real_ms);
    }

    #[test]
    fn per_process_publishing_costs_more() {
        let with = per_process_costs(true, 5);
        let without = per_process_costs(false, 5);
        assert!(with > without * 3.0, "with {with} vs without {without}");
    }

    #[test]
    fn acknowledging_ethernet_wins_under_heavy_load() {
        let horizon = SimTime::from_secs(5);
        let heavy_plain = ethernet_run(false, 8, 60.0, horizon, 1);
        let heavy_ack = ethernet_run(true, 8, 60.0, horizon, 1);
        assert!(
            heavy_ack.collisions < heavy_plain.collisions,
            "ack {heavy_ack:?} plain {heavy_plain:?}"
        );
        assert!(heavy_ack.delivered_fps >= heavy_plain.delivered_fps * 0.95);
    }

    #[test]
    fn light_load_is_similar_for_both_ethernets() {
        let horizon = SimTime::from_secs(5);
        let plain = ethernet_run(false, 4, 3.0, horizon, 2);
        let ack = ethernet_run(true, 4, 3.0, horizon, 2);
        let ratio = ack.delivered_fps / plain.delivered_fps.max(1e-9);
        assert!((0.9..1.1).contains(&ratio), "light load parity: {ratio}");
    }

    #[test]
    fn ring_upstream_destinations_pay_second_revolution() {
        // Recorder right after the sender: cheap. Recorder at the far end:
        // destinations before it wait a revolution.
        let near = token_ring_run(8, 1, 32);
        let far = token_ring_run(8, 7, 32);
        assert!(
            far.mean_latency_us > near.mean_latency_us,
            "near {near:?} far {far:?}"
        );
    }

    #[test]
    fn publishing_loses_least_work() {
        let c = baseline_comparison(40, 11);
        assert!(c.publishing_ms <= c.russell_ms + 1e-9);
        assert!(c.russell_ms <= c.recovery_lines_ms + 1e-9);
        assert!(c.recovery_lines_ms > c.publishing_ms, "{c:?}");
    }

    #[test]
    fn windowing_beats_stop_and_wait() {
        let saw = flood_completion_ms(1, 40);
        let win = flood_completion_ms(8, 40);
        assert!(
            win < saw * 0.5,
            "window 8 ({win} ms) should be far faster than stop-and-wait ({saw} ms)"
        );
    }

    #[test]
    fn checkpoints_shorten_recovery() {
        let without = measured_recovery_ms(0, 400);
        let with = measured_recovery_ms(50, 400);
        assert!(with < without, "with {with} vs without {without}");
    }
}

// ---------------------------------------------------------------------
// §4.3.3 ablation: stop-and-wait vs windowed transport
// ---------------------------------------------------------------------

/// Floods `count` messages at a digest sink in one activation.
#[derive(Debug)]
pub struct Flooder {
    count: u64,
}

impl Program for Flooder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.count {
            let _ = ctx.send(LinkId(0), i.to_le_bytes().to_vec());
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_>, _: Received) {}
    fn snapshot(&self) -> Vec<u8> {
        self.count.to_le_bytes().to_vec()
    }
    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        self.count =
            u64::from_le_bytes(bytes.try_into().map_err(|_| CodecError::UnexpectedEnd {
                needed: 8,
                remaining: bytes.len(),
            })?);
        Ok(())
    }
}

/// Measures the virtual time for `count` one-way messages to cross the
/// LAN under the given transport window (1 = the thesis' stop-and-wait,
/// larger = the "windowing scheme" it plans to adopt). Returns
/// milliseconds to deliver all of them.
pub fn flood_completion_ms(window: usize, count: u64) -> f64 {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("flooder", move || Box::new(Flooder { count }));
    let transport = publishing_demos::transport::TransportConfig {
        window,
        ..publishing_demos::transport::TransportConfig::default()
    };
    let mut w = WorldBuilder::new(2)
        .registry(reg)
        .transport(transport)
        .build();
    let sink = w.spawn(1, "digest-sink", vec![]).unwrap();
    let _flooder = w
        .spawn(0, "flooder", vec![Link::to(sink, Channel::DEFAULT, 0)])
        .unwrap();
    for step in 1..200_000u64 {
        w.run_until(SimTime::from_millis(step * 5));
        let done = w.kernels[&1]
            .process(sink.local)
            .map(|p| p.read_count >= count)
            .unwrap_or(false);
        if done {
            break;
        }
    }
    let last = w
        .outputs
        .iter()
        .filter(|o| o.pid == sink)
        .map(|o| o.at)
        .max()
        .expect("sink produced output");
    last.as_millis_f64()
}
