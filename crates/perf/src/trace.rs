//! Chrome-trace (Perfetto JSON) export of lifecycle span logs.
//!
//! The obs layer already records every message's lifecycle transitions
//! (publish → capture → sequence → deliver, plus replay / suppress /
//! checkpoint) into per-component [`SpanLog`] rings. This module
//! converts those logs into the Trace Event Format that
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly:
//!
//! - each component (kernel, recorder shard) becomes a *process* lane,
//!   named by a `process_name` metadata event, with every retained span
//!   event as an instant (`ph:"i"`) on the subject process's thread row;
//! - a synthetic "message lifecycles" process holds one complete-event
//!   (`ph:"X"`) slice per stage gap (publish→capture, capture→sequence,
//!   publish→deliver) so recorder service time is visible as bars;
//! - flow events (`ph:"s"` / `ph:"f"`, matched by `id`) draw causal
//!   arrows from each publish to its first delivery, and from the
//!   latest replay into a recovering process to each suppression of
//!   that process's regenerated resends — the same pairings the causal
//!   graph's `SequenceDeliver`/`ReplaySuppress` edges encode.
//!
//! All timestamps are virtual-time microseconds (the format's native
//! unit), so the export is deterministic: same run, same bytes.

use crate::json::{parse, Json, ObjBuilder, ParseError};
use publishing_obs::span::{assemble, MsgKey, SpanLog, Stage};
use publishing_sim::time::SimTime;
use std::collections::BTreeMap;

/// One trace event in Chrome's Trace Event Format.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (stage name, slice name, or metadata kind).
    pub name: String,
    /// Category tag (`lifecycle`, `gap`, or `__metadata`).
    pub cat: String,
    /// Phase: `M` metadata, `i` instant, `X` complete slice, `s`/`f`
    /// flow start/finish.
    pub ph: char,
    /// Timestamp in virtual-time microseconds.
    pub ts: f64,
    /// Slice duration in microseconds (`X` events only).
    pub dur: Option<f64>,
    /// Flow id pairing an `s` event with its `f` (flow events only).
    pub id: Option<u64>,
    /// Process lane.
    pub pid: u64,
    /// Thread lane within the process.
    pub tid: u64,
    /// Free-form string arguments shown in the UI's detail pane.
    pub args: Vec<(String, String)>,
}

/// A whole trace document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChromeTrace {
    /// The events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl ChromeTrace {
    /// Serializes to Trace Event Format JSON (object form, compact).
    pub fn to_json(&self) -> String {
        let events = self
            .events
            .iter()
            .map(|e| {
                let mut o = ObjBuilder::new()
                    .field("name", Json::Str(e.name.clone()))
                    .field("cat", Json::Str(e.cat.clone()))
                    .field("ph", Json::Str(e.ph.to_string()))
                    .field("ts", Json::Num(e.ts))
                    .field("pid", Json::Num(e.pid as f64))
                    .field("tid", Json::Num(e.tid as f64));
                if let Some(dur) = e.dur {
                    o = o.field("dur", Json::Num(dur));
                }
                if let Some(id) = e.id {
                    o = o.field("id", Json::Num(id as f64));
                }
                if e.ph == 'f' {
                    // Bind the flow finish to the enclosing slice/instant
                    // so viewers draw the arrow to the event itself.
                    o = o.field("bp", Json::Str("e".into()));
                }
                if !e.args.is_empty() {
                    o = o.field(
                        "args",
                        Json::Obj(
                            e.args
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    );
                }
                o.build()
            })
            .collect();
        ObjBuilder::new()
            .field("displayTimeUnit", Json::Str("ms".into()))
            .field("traceEvents", Json::Arr(events))
            .build()
            .write()
    }

    /// Parses a document previously produced by [`ChromeTrace::to_json`].
    pub fn from_json(text: &str) -> Result<ChromeTrace, ParseError> {
        let doc = parse(text)?;
        let bad = |what: &str| ParseError {
            expected: what.to_string(),
            at: 0,
        };
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("a traceEvents array"))?;
        let mut out = Vec::with_capacity(events.len());
        for e in events {
            let field_str = |k: &str| {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad(&format!("string field {k}")))
            };
            let field_num = |k: &str| {
                e.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad(&format!("numeric field {k}")))
            };
            let ph = field_str("ph")?;
            let mut args = Vec::new();
            if let Some(pairs) = e.get("args").and_then(Json::as_obj) {
                for (k, v) in pairs {
                    args.push((
                        k.clone(),
                        v.as_str().ok_or_else(|| bad("string arg"))?.to_string(),
                    ));
                }
            }
            out.push(TraceEvent {
                name: field_str("name")?,
                cat: field_str("cat")?,
                ph: ph.chars().next().ok_or_else(|| bad("a phase char"))?,
                ts: field_num("ts")?,
                dur: e.get("dur").and_then(Json::as_f64),
                id: e.get("id").and_then(Json::as_f64).map(|v| v as u64),
                pid: field_num("pid")? as u64,
                tid: field_num("tid")? as u64,
                args,
            });
        }
        Ok(ChromeTrace { events: out })
    }

    /// Counts events of one phase (`'i'`, `'X'`, `'M'`).
    pub fn count_phase(&self, ph: char) -> usize {
        self.events.iter().filter(|e| e.ph == ph).count()
    }

    /// Returns `true` if any instant event carries `stage` as its name.
    pub fn has_stage(&self, stage: Stage) -> bool {
        self.events
            .iter()
            .any(|e| e.ph == 'i' && e.name == stage.name())
    }
}

fn us(t: publishing_sim::time::SimTime) -> f64 {
    t.as_nanos() as f64 / 1_000.0
}

/// Builds a trace from named component span logs (e.g. `node 0 kernel`,
/// `shard 1 recorder`), in the deterministic order the caller supplies.
pub fn from_spans(components: &[(String, &SpanLog)]) -> ChromeTrace {
    let mut events = Vec::new();
    for (pid, (name, _)) in components.iter().enumerate() {
        events.push(TraceEvent {
            name: "process_name".into(),
            cat: "__metadata".into(),
            ph: 'M',
            ts: 0.0,
            dur: None,
            id: None,
            pid: pid as u64,
            tid: 0,
            args: vec![("name".into(), name.clone())],
        });
    }
    let lifecycle_pid = components.len() as u64;
    events.push(TraceEvent {
        name: "process_name".into(),
        cat: "__metadata".into(),
        ph: 'M',
        ts: 0.0,
        dur: None,
        id: None,
        pid: lifecycle_pid,
        tid: 0,
        args: vec![("name".into(), "message lifecycles".into())],
    });

    for (pid, (_, log)) in components.iter().enumerate() {
        for e in log.events() {
            events.push(TraceEvent {
                name: e.stage.name().into(),
                cat: "lifecycle".into(),
                ph: 'i',
                ts: us(e.at),
                dur: None,
                id: None,
                pid: pid as u64,
                tid: e.subject,
                args: vec![
                    ("msg".into(), e.key.to_string()),
                    ("aux".into(), e.aux.to_string()),
                ],
            });
        }
    }

    // One slice per stage gap; each message gets its own three-row band
    // so overlapping gaps never have to nest.
    let spans = assemble(components.iter().map(|(_, l)| *l));
    for (lane, (key, span)) in spans.iter().enumerate() {
        let gaps = [
            (0u64, "publish→capture", Stage::Publish, Stage::Capture),
            (1, "capture→sequence", Stage::Capture, Stage::Sequence),
            (2, "publish→deliver", Stage::Publish, Stage::Deliver),
        ];
        for (row, name, from, to) in gaps {
            let (Some(a), Some(b)) = (span.first(from), span.first(to)) else {
                continue;
            };
            if b < a {
                continue;
            }
            events.push(TraceEvent {
                name: name.into(),
                cat: "gap".into(),
                ph: 'X',
                ts: us(a),
                dur: Some(us(b) - us(a)),
                id: None,
                pid: lifecycle_pid,
                tid: lane as u64 * 3 + row,
                args: vec![("msg".into(), key.to_string())],
            });
        }
    }

    // Causal arrows. Locate each flow endpoint on the component lane
    // that recorded it, so the arrow crosses lanes the way the message
    // crossed components. Flow ids are assigned in emission order,
    // which is deterministic (span keys iterate in `BTreeMap` order,
    // suppressions in component-then-recording order).
    struct Endpoint {
        pid: u64,
        tid: u64,
        at: SimTime,
    }
    let mut first_publish: BTreeMap<MsgKey, Endpoint> = BTreeMap::new();
    let mut first_deliver: BTreeMap<MsgKey, Endpoint> = BTreeMap::new();
    let mut replays_by_reader: BTreeMap<u64, Vec<Endpoint>> = BTreeMap::new();
    let mut suppresses: Vec<(MsgKey, Endpoint)> = Vec::new();
    for (pid, (_, log)) in components.iter().enumerate() {
        for e in log.events() {
            let ep = || Endpoint {
                pid: pid as u64,
                tid: e.subject,
                at: e.at,
            };
            match e.stage {
                Stage::Publish => {
                    first_publish.entry(e.key).or_insert_with(ep);
                }
                Stage::Deliver => {
                    let cur = first_deliver.entry(e.key).or_insert_with(ep);
                    if e.at < cur.at {
                        *cur = ep();
                    }
                }
                Stage::Replay => replays_by_reader.entry(e.subject).or_default().push(ep()),
                Stage::Suppress => suppresses.push((e.key, ep())),
                _ => {}
            }
        }
    }
    for v in replays_by_reader.values_mut() {
        v.sort_by_key(|ep| ep.at);
    }
    let mut flow_id = 0u64;
    let mut arrow = |events: &mut Vec<TraceEvent>, name: &str, from: &Endpoint, to: &Endpoint| {
        if to.at < from.at {
            return;
        }
        for (ph, ep) in [('s', from), ('f', to)] {
            events.push(TraceEvent {
                name: name.into(),
                cat: "flow".into(),
                ph,
                ts: us(ep.at),
                dur: None,
                id: Some(flow_id),
                pid: ep.pid,
                tid: ep.tid,
                args: Vec::new(),
            });
        }
        flow_id += 1;
    };
    for (key, publish) in &first_publish {
        if let Some(deliver) = first_deliver.get(key) {
            arrow(&mut events, "send→deliver", publish, deliver);
        }
    }
    for (key, sup) in &suppresses {
        // The latest replay into the suppressed message's sender that
        // precedes the suppression — the same pairing the causal graph's
        // ReplaySuppress edge uses.
        if let Some(replays) = replays_by_reader.get(&key.sender) {
            let before = replays.partition_point(|r| r.at <= sup.at);
            if before > 0 {
                arrow(&mut events, "replay→suppress", &replays[before - 1], sup);
            }
        }
    }
    ChromeTrace { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_obs::span::MsgKey;
    use publishing_sim::time::SimTime;

    fn sample_logs() -> (SpanLog, SpanLog) {
        let mut kernel = SpanLog::new(64);
        let mut recorder = SpanLog::new(64);
        let k = MsgKey { sender: 1, seq: 0 };
        kernel.record(SimTime::from_micros(100), k, Stage::Publish, 2, 11);
        recorder.record(SimTime::from_micros(150), k, Stage::Capture, 2, 0);
        recorder.record(SimTime::from_micros(250), k, Stage::Sequence, 2, 0);
        kernel.record(SimTime::from_micros(400), k, Stage::Deliver, 2, 0);
        (kernel, recorder)
    }

    #[test]
    fn export_names_components_and_emits_gap_slices() {
        let (kernel, recorder) = sample_logs();
        let t = from_spans(&[
            ("node 0 kernel".into(), &kernel),
            ("recorder".into(), &recorder),
        ]);
        // 3 metadata lanes (2 components + lifecycle process).
        assert_eq!(t.count_phase('M'), 3);
        assert_eq!(t.count_phase('i'), 4);
        assert_eq!(t.count_phase('X'), 3);
        assert!(t.has_stage(Stage::Publish));
        assert!(t.has_stage(Stage::Deliver));
        let slice = t
            .events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "publish→deliver")
            .expect("deliver slice");
        assert_eq!(slice.ts, 100.0);
        assert_eq!(slice.dur, Some(300.0));
    }

    #[test]
    fn flow_events_pair_send_deliver_and_replay_suppress() {
        let (mut kernel, mut recorder) = sample_logs();
        // Process 2 crashes; k is replayed into it, and its own answer
        // (sender 2) is regenerated and suppressed.
        let m = MsgKey { sender: 2, seq: 0 };
        recorder.record(
            SimTime::from_micros(900),
            MsgKey { sender: 1, seq: 0 },
            Stage::Replay,
            2,
            0,
        );
        kernel.record(SimTime::from_micros(950), m, Stage::Suppress, 1, 0);
        let t = from_spans(&[("k".into(), &kernel), ("r".into(), &recorder)]);
        assert_eq!(t.count_phase('s'), 2);
        assert_eq!(t.count_phase('f'), 2);
        let starts: Vec<&TraceEvent> = t.events.iter().filter(|e| e.ph == 's').collect();
        let finishes: Vec<&TraceEvent> = t.events.iter().filter(|e| e.ph == 'f').collect();
        // Each start pairs with a finish by id, never earlier in time.
        for s in &starts {
            let f = finishes
                .iter()
                .find(|f| f.id == s.id)
                .expect("paired finish");
            assert_eq!(f.name, s.name);
            assert!(f.ts >= s.ts);
        }
        let sd = starts.iter().find(|e| e.name == "send→deliver").unwrap();
        assert_eq!(sd.ts, 100.0); // at the publish
        let rs = starts.iter().find(|e| e.name == "replay→suppress").unwrap();
        assert_eq!(rs.ts, 900.0); // at the replay
                                  // The serialized form carries the binding point on finishes.
        assert!(t.to_json().contains("\"bp\":\"e\""));
    }

    #[test]
    fn trace_json_is_byte_deterministic() {
        let (kernel, recorder) = sample_logs();
        let a = from_spans(&[("k".into(), &kernel), ("r".into(), &recorder)]).to_json();
        let b = from_spans(&[("k".into(), &kernel), ("r".into(), &recorder)]).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn json_round_trip_is_lossless_and_stable() {
        let (kernel, recorder) = sample_logs();
        let t = from_spans(&[("k".into(), &kernel), ("r".into(), &recorder)]);
        let text = t.to_json();
        let back = ChromeTrace::from_json(&text).expect("parses");
        assert_eq!(back, t);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn document_shape_is_trace_event_format() {
        let t = from_spans(&[]);
        let doc = parse(&t.to_json()).unwrap();
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        assert!(doc.get("traceEvents").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn rejects_non_trace_documents() {
        assert!(ChromeTrace::from_json("{\"nope\":1}").is_err());
        assert!(ChromeTrace::from_json("[]").is_err());
        assert!(ChromeTrace::from_json("not json").is_err());
    }
}
