//! Property tests for the workload DSL: any spec the grammar can
//! express must print to a literal that parses back to the identical
//! value (print → parse identity), and parsing is total — arbitrary
//! token soup either parses or errors, never panics.

use proptest::collection::vec;
use proptest::prelude::*;
use publishing_demos::driver::MessageMix;
use publishing_workload::{Phase, WorkloadSpec};

fn arb_phase() -> impl Strategy<Value = Phase> {
    let at = 0u64..1_000;
    let dur = 1u64..1_000;
    prop_oneof![
        (at.clone(), dur.clone(), 1u64..500, 0u32..300, 0u32..300).prop_map(
            |(at_ms, dur_ms, period_ms, lo_pct, hi_pct)| Phase::Diurnal {
                at_ms,
                dur_ms,
                period_ms,
                lo_pct,
                hi_pct,
            }
        ),
        (at.clone(), dur.clone(), 1u32..1_000).prop_map(|(at_ms, dur_ms, pct)| Phase::Flash {
            at_ms,
            dur_ms,
            pct,
        }),
        (at.clone(), dur.clone(), 1u32..300).prop_map(|(at_ms, dur_ms, theta_centi)| {
            Phase::Zipf {
                at_ms,
                dur_ms,
                theta_centi,
            }
        }),
        (at.clone(), dur.clone(), 0u32..16).prop_map(|(at_ms, dur_ms, sink)| Phase::Stall {
            at_ms,
            dur_ms,
            sink,
        }),
        (at, dur, 1u32..8).prop_map(|(at_ms, dur_ms, burst)| Phase::Storm {
            at_ms,
            dur_ms,
            burst,
        }),
    ]
}

fn arb_mix() -> impl Strategy<Value = MessageMix> {
    (0u8..=100, 8u32..2_000, 8u32..20_000).prop_map(|(short_pct, short_bytes, long_bytes)| {
        MessageMix {
            short_pct,
            short_bytes,
            long_bytes,
        }
    })
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1u32..500,
        1u32..16,
        any::<u64>(),
        1u32..200,
        1u64..100,
        // Horizons start at 100 ms and ticks top out at 99 ms, so every
        // generated spec passes validate().
        (1u64..20).prop_map(|n| n * 100),
        arb_mix(),
        vec(arb_phase(), 0..6),
    )
        .prop_map(
            |(users, subjects, seed, rate_per_sec, tick_ms, horizon_ms, mix, phases)| {
                WorkloadSpec {
                    users,
                    subjects,
                    seed,
                    rate_per_sec,
                    tick_ms,
                    horizon_ms,
                    mix,
                    phases,
                }
            },
        )
}

proptest! {
    /// print → parse identity over the full grammar: header fields,
    /// message mix, and every phase kind in any order.
    #[test]
    fn literal_round_trips(spec in arb_spec()) {
        spec.validate().expect("generated specs are valid");
        let lit = spec.to_string();
        let back: WorkloadSpec = lit.parse().unwrap_or_else(|e| {
            panic!("own literal rejected: {lit:?}: {e}")
        });
        prop_assert_eq!(&back, &spec);
        // And printing the parse is a fixed point.
        prop_assert_eq!(back.to_string(), lit);
    }

    /// The parser is total on token soup: arbitrary strings built from
    /// grammar-adjacent fragments either parse or return Err, and any
    /// accepted value survives its own round trip.
    #[test]
    fn parser_is_total(toks in vec(
        prop_oneof![
            Just("users=4".to_string()),
            Just("subjects=2".to_string()),
            Just("seed=1".to_string()),
            Just("rate=5/s".to_string()),
            Just("tick=50ms".to_string()),
            Just("horizon=400ms".to_string()),
            Just("mix=92%x128/1024".to_string()),
            Just("flash@1ms+2ms=300%".to_string()),
            Just("zipf@0ms".to_string()),
            Just("diurnal@".to_string()),
            Just("storm@1ms+2ms=x".to_string()),
            "[a-z=@+%#~0-9]{0,12}".prop_map(|s| s),
        ],
        0..10,
    )) {
        let s = toks.join(" ");
        if let Ok(spec) = s.parse::<WorkloadSpec>() {
            let lit = spec.to_string();
            prop_assert_eq!(lit.parse::<WorkloadSpec>().unwrap(), spec);
        }
    }
}
