//! The perf-observatory scenario matrix behind the `bench` binary.
//!
//! Four canonical scenarios at fixed seeds — fault-free steady state,
//! crash+replay, mid-run shard rebalance, and one generated chaos
//! schedule — each reduced to a [`ScenarioSnapshot`] of virtual-time
//! metrics, output/span fingerprints, and host readings. The virtual
//! sections are deterministic: [`run_matrix`] twice at the same mode
//! yields byte-identical `Snapshot::virtual_json`.
//!
//! Host readings (wall clock, allocation counts) only carry data when
//! the process installed `publishing_perf::alloc::CountingAlloc` as the
//! global allocator (the `bench` binary does; tests don't need to).

use publishing_chaos::driver::run_schedule;
use publishing_chaos::scenario::{Scenario, Topology, NODES, SHARDS};
use publishing_chaos::schedule::{self, ChaosConfig};
use publishing_demos::ids::Channel;
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_perf::alloc;
use publishing_perf::snapshot::{scenario_from_report, ScenarioSnapshot, Snapshot};
use publishing_quorum::{QuorumConfig, QuorumWorld};
use publishing_shard::ShardedWorld;
use publishing_sim::fault::FaultPlan;
use publishing_sim::time::SimTime;

/// Scenario-matrix sizing: the smoke matrix is the CI gate (< 1 s), the
/// full matrix is for local investigation.
pub struct MatrixParams {
    /// Pings per client.
    pub pings: u64,
    /// Ping/echo pairs.
    pub pairs: u32,
    /// Run horizon for the non-chaos scenarios.
    pub horizon: SimTime,
    /// Injection horizon for the chaos schedule (ms).
    pub chaos_horizon_ms: u64,
    /// Fault budget for the chaos schedule.
    pub chaos_faults: usize,
}

impl MatrixParams {
    /// The canonical sizing for `smoke` or full mode.
    pub fn new(smoke: bool) -> MatrixParams {
        if smoke {
            MatrixParams {
                pings: 10,
                pairs: 2,
                horizon: SimTime::from_secs(20),
                chaos_horizon_ms: 800,
                chaos_faults: 5,
            }
        } else {
            MatrixParams {
                pings: 25,
                pairs: 4,
                horizon: SimTime::from_secs(40),
                chaos_horizon_ms: 1500,
                chaos_faults: 7,
            }
        }
    }
}

/// The standard ping/echo world every non-chaos scenario drives: echo
/// servers on node 2, pingers on nodes 0/1, four recorder shards.
pub fn build_world(p: &MatrixParams) -> ShardedWorld {
    let pings = p.pings;
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("pinger", move || {
        let mut c = PingClient::new(pings);
        c.think_ns = 2_000_000;
        Box::new(c)
    });
    let mut w = ShardedWorld::new(3, 4, reg);
    for i in 0..p.pairs {
        let server = w.spawn(2, "echo", vec![]).expect("echo registered");
        w.spawn(i % 2, "pinger", vec![Link::to(server, Channel::DEFAULT, 7)])
            .expect("pinger registered");
    }
    w
}

/// Runs one scenario body under the wall-clock and allocation meters and
/// files the host section.
fn metered(body: impl FnOnce() -> ScenarioSnapshot) -> ScenarioSnapshot {
    let alloc_before = alloc::snapshot();
    let wall_before = std::time::Instant::now();
    let mut s = body();
    let wall_ms = wall_before.elapsed().as_secs_f64() * 1e3;
    let grew = alloc::snapshot().since(alloc_before);
    s.host("wall_ms", wall_ms);
    s.host("allocations", grew.allocs as f64);
    s.host("alloc_bytes", grew.bytes as f64);
    s
}

fn steady_state(p: &MatrixParams) -> ScenarioSnapshot {
    let mut w = build_world(p);
    w.run_until(p.horizon);
    let mut s = scenario_from_report("steady_state", &w.obs_report());
    s.fingerprint("output", w.output_fingerprint());
    s.virt("recoveries_completed", w.recoveries_completed() as f64);
    s
}

fn crash_replay(p: &MatrixParams) -> ScenarioSnapshot {
    let mut w = build_world(p);
    w.run_until(SimTime::from_millis(50));
    w.crash_node(2);
    w.run_until(p.horizon);
    let mut s = scenario_from_report("crash_replay", &w.obs_report());
    s.fingerprint("output", w.output_fingerprint());
    s.virt("recoveries_completed", w.recoveries_completed() as f64);
    s
}

fn rebalance(p: &MatrixParams) -> ScenarioSnapshot {
    let mut w = build_world(p);
    w.run_until(SimTime::from_millis(40));
    w.add_shard();
    w.run_until(p.horizon);
    let mut s = scenario_from_report("rebalance", &w.obs_report());
    s.fingerprint("output", w.output_fingerprint());
    s.virt("shards", w.shards.len() as f64);
    s
}

fn chaos_smoke(p: &MatrixParams) -> ScenarioSnapshot {
    let sched = schedule::generate(&ChaosConfig {
        seed: 42,
        nodes: NODES,
        shards: SHARDS,
        replicas: 0,
        procs: 4,
        horizon_ms: p.chaos_horizon_ms,
        max_faults: p.chaos_faults,
    });
    let mut t = Scenario::new(Topology::Sharded, 42).build();
    run_schedule(t.as_mut(), &sched);
    let mut s = scenario_from_report("chaos_smoke", &t.obs_report());
    s.fingerprint("output", t.output_fingerprint());
    s.virt("faults_injected", sched.faults.len() as f64);
    s.virt("recoveries_completed", t.recoveries_completed() as f64);
    s
}

/// The quorum sequencing sweep: group size 1/3/5 × frame-loss rate,
/// one ping/echo workload each. Per combination the snapshot carries
/// the virtual completion time (consensus commit latency shows up
/// directly here), the quorum-sequenced arrival count, and how many
/// elections the group needed — the cost surface of replicated capture.
fn quorum_sweep(p: &MatrixParams) -> ScenarioSnapshot {
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut last_report = None;
    let mut output_fp = 0u64;
    for &replicas in &[1usize, 3, 5] {
        for &loss_pct in &[0u32, 10] {
            let pings = p.pings;
            let mut reg = ProgramRegistry::new();
            programs::register_standard(&mut reg);
            reg.register("pinger", move || {
                let mut c = PingClient::new(pings);
                c.think_ns = 2_000_000;
                Box::new(c)
            });
            let mut w = QuorumWorld::with_config(
                QuorumConfig {
                    nodes: 3,
                    replicas,
                    seed: 42,
                    ..QuorumConfig::default()
                },
                reg,
                Box::new(publishing_net::bus::PerfectBus::new(
                    publishing_net::lan::LanConfig::default(),
                )),
            );
            w.lan
                .set_faults(FaultPlan::new().with_frame_loss(f64::from(loss_pct) / 100.0));
            let mut clients = Vec::new();
            for i in 0..p.pairs {
                let server = w.spawn(2, "echo", vec![]).expect("echo registered");
                let client = w
                    .spawn(i % 2, "pinger", vec![Link::to(server, Channel::DEFAULT, 7)])
                    .expect("pinger registered");
                clients.push(client);
            }
            w.run_until(p.horizon);
            let done_at = clients
                .iter()
                .filter_map(|&c| {
                    w.outputs
                        .iter()
                        .filter(|o| o.pid == c && o.bytes == b"done")
                        .map(|o| o.at)
                        .next()
                })
                .max();
            let key = format!("r{replicas}_loss{loss_pct}");
            entries.push((
                format!("{key}/done_ms"),
                done_at.map_or(-1.0, |t| t.as_millis_f64()),
            ));
            entries.push((format!("{key}/sequenced"), w.sequenced_total() as f64));
            entries.push((
                format!("{key}/elections"),
                w.quorum_health().iter().map(|h| h.elections).sum::<u64>() as f64,
            ));
            assert!(
                w.quorum_invariant_failures().is_empty(),
                "quorum invariants must hold in the sweep"
            );
            output_fp ^= w
                .output_fingerprint()
                .rotate_left((replicas as u32) * 7 + loss_pct);
            last_report = Some(w.obs_report());
        }
    }
    // The report-derived metrics come from the largest combination
    // (5 replicas, lossy medium) — the worst case the gate watches.
    let mut s = scenario_from_report(
        "quorum_sweep",
        &last_report.expect("the sweep ran at least one combination"),
    );
    for (k, v) in entries {
        s.virt(k, v);
    }
    s.fingerprint("output", output_fp);
    s
}

/// The observability-overhead scenario, in two halves.
///
/// **Storage**: every span event the steady-state world recorded is
/// replayed, in order, into the legacy row-oriented ring and into the
/// columnar store that replaced it, under the allocation meter. Both
/// must agree on the fingerprint and on the happens-before DAG built
/// from their event streams, and the columnar store must retain the
/// same events in at least 3x less steady-state memory.
///
/// **Tracing tax**: the same workload runs once instrumented and once
/// with spans disabled (capacity 0); the workload's outputs must be
/// identical either way (observability never perturbs the run), and
/// both run bodies are metered so the host section carries the
/// allocation cost of keeping spans on.
fn obs_overhead(p: &MatrixParams) -> ScenarioSnapshot {
    use publishing_obs::causal::CausalGraph;
    use publishing_obs::span::SpanLog;
    use publishing_obs::RowSpanLog;

    let alloc_on = alloc::snapshot();
    let mut w = build_world(p);
    w.run_until(p.horizon);
    let grew_on = alloc::snapshot().since(alloc_on);

    let logs = w.span_logs();
    let events: Vec<Vec<_>> = logs.iter().map(|l| l.events().collect()).collect();
    for l in &logs {
        assert_eq!(
            l.dropped(),
            0,
            "overhead workload must fit in the span ring"
        );
    }

    let alloc_row = alloc::snapshot();
    let mut rows: Vec<RowSpanLog> = Vec::new();
    for stream in &events {
        let mut log = RowSpanLog::new(publishing_obs::span::DEFAULT_SPAN_CAPACITY);
        for e in stream {
            log.record(e.at, e.key, e.stage, e.subject, e.aux);
        }
        rows.push(log);
    }
    let grew_row = alloc::snapshot().since(alloc_row);

    let alloc_col = alloc::snapshot();
    let mut cols: Vec<SpanLog> = Vec::new();
    for stream in &events {
        let mut log = SpanLog::new(publishing_obs::span::DEFAULT_SPAN_CAPACITY);
        for e in stream {
            log.record(e.at, e.key, e.stage, e.subject, e.aux);
        }
        cols.push(log);
    }
    let grew_col = alloc::snapshot().since(alloc_col);

    let row_bytes: usize = rows.iter().map(|l| l.retained_bytes()).sum();
    let col_bytes: usize = cols.iter().map(|l| l.retained_bytes()).sum();
    for ((row, col), orig) in rows.iter().zip(&cols).zip(&logs) {
        assert_eq!(row.fingerprint(), orig.fingerprint());
        assert_eq!(col.fingerprint(), orig.fingerprint());
    }
    let row_events: Vec<Vec<_>> = rows.iter().map(|l| l.events().collect()).collect();
    let col_events: Vec<Vec<_>> = cols.iter().map(|l| l.events().collect()).collect();
    assert_eq!(
        CausalGraph::from_event_lists(&row_events).to_dot(),
        CausalGraph::from_event_lists(&col_events).to_dot(),
        "row and columnar stores must reconstruct the same causal DAG"
    );
    let ratio = row_bytes as f64 / col_bytes as f64;
    assert!(
        ratio >= 3.0,
        "columnar store must cut steady-state span memory 3x (got {ratio:.2}x)"
    );

    let alloc_off = alloc::snapshot();
    let mut off = build_world(p);
    off.set_span_capacity(0);
    off.run_until(p.horizon);
    let grew_off = alloc::snapshot().since(alloc_off);
    assert_eq!(
        w.output_fingerprint(),
        off.output_fingerprint(),
        "disabling span retention must not perturb the workload"
    );
    assert_eq!(
        w.obs_fingerprint(),
        off.obs_fingerprint(),
        "fingerprints hash at record time, so they survive capacity 0"
    );

    let mut s = ScenarioSnapshot::new("obs_overhead");
    s.fingerprint("output", w.output_fingerprint());
    s.fingerprint("spans", w.obs_fingerprint());
    s.virt("events_delivered", w.scheduler_probe().delivered as f64);
    s.virt(
        "events_per_virtual_sec",
        w.scheduler_probe().delivered as f64 / p.horizon.as_secs_f64(),
    );
    s.virt(
        "span_events",
        events.iter().map(Vec::len).sum::<usize>() as f64,
    );
    s.virt("row_retained_bytes", row_bytes as f64);
    s.virt("columnar_retained_bytes", col_bytes as f64);
    s.virt("columnar_shrink_ratio", (ratio * 100.0).round() / 100.0);
    s.host("instrumented_alloc_bytes", grew_on.bytes as f64);
    s.host("disabled_alloc_bytes", grew_off.bytes as f64);
    s.host("row_store_alloc_bytes", grew_row.bytes as f64);
    s.host("columnar_store_alloc_bytes", grew_col.bytes as f64);
    s
}

/// The workload-engine capacity scenario: the Fig 5.5 knee search on
/// the paper's ethernet, one knee per recorder topology, every searched
/// point chaos-validated. The knees are deterministic integers gated
/// exactly (zero allowance) by the `capacity_users` comparator rule, so
/// any change that shrinks sustainable users fails CI. Smoke caps the
/// search bracket; the single-recorder knee sits well inside either cap,
/// so both modes converge on the same numbers for it.
fn capacity(smoke: bool) -> ScenarioSnapshot {
    use publishing_chaos::Medium;
    use publishing_obs::slo::SloSpec;
    use publishing_workload::capacity::topology_name;
    use publishing_workload::{find_knee, SearchParams, WorkloadSpec};

    let base = WorkloadSpec::default();
    let params = SearchParams {
        max_users: if smoke { 64 } else { 256 },
        chaos: true,
        medium: Medium::Ethernet,
        ..SearchParams::default()
    };
    let mut s = ScenarioSnapshot::new("capacity");
    let mut fp = 0u64;
    let mut delivered_total = 0u64;
    for (i, topo) in [Topology::Single, Topology::Sharded, Topology::Quorum]
        .into_iter()
        .enumerate()
    {
        let knee = find_knee("default", topo, &base, &SloSpec::default(), &params);
        let name = topology_name(topo);
        s.virt(format!("{name}_capacity_users"), f64::from(knee.knee_users));
        s.virt(format!("{name}_trials"), knee.trials.len() as f64);
        if let Some(t) = knee.knee_trial() {
            s.virt(format!("{name}_knee_offered"), t.offered as f64);
            s.virt(format!("{name}_knee_delivered"), t.delivered as f64);
        }
        delivered_total += knee.trials.iter().map(|t| t.delivered).sum::<u64>();
        fp ^= (u64::from(knee.knee_users) << 32 | knee.trials.len() as u64)
            .rotate_left(i as u32 * 21);
    }
    // Everything every searched point drained, so the bench driver's
    // did-any-work check holds for this scenario too.
    s.virt("events_delivered", delivered_total as f64);
    s.fingerprint("knees", fp);
    s
}

/// The capacity-lens scenario: the knee search plus the full lens pass
/// — utilization attribution, queueing cross-validation, and the
/// confirmed what-if matrix — on both media. Knees, binding names, and
/// cross-validation verdicts are deterministic, so the comparator gates
/// them exactly (`lens_knee` may not shrink, `xval_divergences` may not
/// grow); the host section is the lens tax on top of the search itself.
/// Both modes run the same sizing: this scenario gates the lens
/// *machinery*, while the full-scale knees belong to `capacity`.
fn lens_overhead(_smoke: bool) -> ScenarioSnapshot {
    use publishing_chaos::Medium;
    use publishing_obs::slo::SloSpec;
    use publishing_workload::{find_knee, run_whatif, SearchParams, WorkloadSpec};

    // The same loaded point `lens --smoke` profiles: heavy enough that
    // both media knee inside the bracket (a capped bracket is not a
    // knee and would poison the what-if predictions).
    let spec = WorkloadSpec {
        subjects: 2,
        rate_per_sec: 100,
        horizon_ms: 400,
        ..WorkloadSpec::default()
    };
    let slo = SloSpec::default();
    let mut s = ScenarioSnapshot::new("lens_overhead");
    let mut fp = 0u64;
    let mut delivered_total = 0u64;
    for (i, medium) in [Medium::Perfect, Medium::Ethernet].into_iter().enumerate() {
        let name = match medium {
            Medium::Perfect => "perfect",
            Medium::Ethernet => "ethernet",
        };
        let params = SearchParams {
            max_users: 12,
            chaos: false,
            medium,
            ..SearchParams::default()
        };
        let knee = find_knee("lens", Topology::Single, &spec, &slo, &params);
        let whatif = run_whatif("lens", Topology::Single, &spec, &slo, &params, &knee, true);
        let sat = knee
            .failing_trial()
            .or_else(|| knee.knee_trial())
            .expect("the lens bracket always runs trials");
        let util = sat
            .report
            .utilization
            .as_ref()
            .expect("every world attaches the utilization ledger");
        let binding = knee.binding.clone().unwrap_or_default();
        assert!(
            !binding.is_empty(),
            "the lens must name a binding resource past the knee"
        );
        let divergences = util.xval.iter().filter(|r| !r.ok).count();
        s.virt(format!("{name}_lens_knee"), f64::from(knee.knee_users));
        s.virt(format!("{name}_whatif_rows"), whatif.rows.len() as f64);
        s.virt(format!("{name}_xval_rows"), util.xval.len() as f64);
        s.virt(format!("{name}_xval_divergences"), divergences as f64);
        for row in &whatif.rows {
            s.virt(
                format!("{name}_{}_predicted", row.knob),
                f64::from(row.predicted_knee),
            );
            if let Some(c) = row.confirmed_knee {
                s.virt(format!("{name}_{}_confirmed", row.knob), f64::from(c));
            }
        }
        delivered_total += knee.trials.iter().map(|t| t.delivered).sum::<u64>();
        for (j, b) in binding.bytes().enumerate() {
            fp ^= u64::from(b).rotate_left((i * 29 + j * 7) as u32);
        }
        fp ^= (u64::from(knee.knee_users) << 24 | whatif.rows.len() as u64)
            .rotate_left(i as u32 * 17);
    }
    s.virt("events_delivered", delivered_total as f64);
    s.fingerprint("lens", fp);
    s
}

/// Runs the whole matrix and assembles the snapshot.
pub fn run_matrix(smoke: bool) -> Snapshot {
    let p = MatrixParams::new(smoke);
    let mut snap = Snapshot::new(if smoke { "smoke" } else { "full" });
    snap.scenarios.push(metered(|| steady_state(&p)));
    snap.scenarios.push(metered(|| crash_replay(&p)));
    snap.scenarios.push(metered(|| rebalance(&p)));
    snap.scenarios.push(metered(|| chaos_smoke(&p)));
    snap.scenarios.push(metered(|| quorum_sweep(&p)));
    snap.scenarios.push(metered(|| obs_overhead(&p)));
    snap.scenarios.push(metered(|| capacity(smoke)));
    snap.scenarios.push(metered(|| lens_overhead(smoke)));
    snap
}
