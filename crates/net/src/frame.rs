//! Link-layer frames.
//!
//! A frame is the unit the medium carries: an opaque transport payload
//! wrapped with source/destination stations and a frame check sequence.
//! The media models never interpret the payload — exactly the layering of
//! Figure 4.3, where the media layer only moves checked byte strings.

use crate::crc::crc32;
use core::fmt;

/// A station attached to the LAN (a processing node's or recorder's
/// network interface).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StationId(pub u32);

impl fmt::Debug for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "st{}", self.0)
    }
}

impl fmt::Display for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Link-layer destination: one station, or every station.
///
/// In DEMOS/MP with publishing, *all* messages are physically broadcast so
/// the recorder overhears them (§4.4.1); `Station` destinations still
/// reach every attached interface, which filter on this field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// Addressed to one station (others, except recorders, discard it).
    Station(StationId),
    /// Addressed to every station.
    Broadcast,
}

impl Destination {
    /// Returns `true` if a station should pass this frame up its stack.
    pub fn accepts(self, station: StationId) -> bool {
        match self {
            Destination::Station(s) => s == station,
            Destination::Broadcast => true,
        }
    }
}

/// Fixed per-frame header overhead on the wire, in bytes (addresses, type,
/// FCS — on the order of an Ethernet header).
pub const HEADER_BYTES: usize = 18;

/// A link-layer frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Transmitting station.
    pub src: StationId,
    /// Link-layer destination.
    pub dst: Destination,
    /// Opaque transport payload.
    pub payload: Vec<u8>,
    /// Frame check sequence as carried on the wire.
    fcs: u32,
}

impl Frame {
    /// Builds a frame, computing its FCS over the payload.
    pub fn new(src: StationId, dst: Destination, payload: Vec<u8>) -> Self {
        let fcs = crc32(&payload);
        Frame {
            src,
            dst,
            payload,
            fcs,
        }
    }

    /// Returns `true` if the carried FCS matches the payload.
    pub fn is_intact(&self) -> bool {
        crc32(&self.payload) == self.fcs
    }

    /// Corrupts the frame in flight by flipping one payload bit.
    pub fn corrupt_in_flight(&mut self) {
        if self.payload.is_empty() {
            // No payload bits to damage; damage the FCS itself.
            self.fcs = !self.fcs;
        } else {
            self.payload[0] ^= 0x80;
        }
    }

    /// Complements the FCS — the token-ring recorder's §6.1.2 mechanism
    /// for invalidating a frame it failed to record.
    pub fn invalidate_fcs(&mut self) {
        self.fcs = !self.fcs;
    }

    /// Returns the frame's size on the wire, including header overhead.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Frame {
        Frame::new(
            StationId(1),
            Destination::Station(StationId(2)),
            payload.to_vec(),
        )
    }

    #[test]
    fn fresh_frame_is_intact() {
        assert!(frame(b"hello").is_intact());
        assert!(frame(b"").is_intact());
    }

    #[test]
    fn corruption_detected() {
        let mut f = frame(b"hello");
        f.corrupt_in_flight();
        assert!(!f.is_intact());
    }

    #[test]
    fn corruption_of_empty_payload_detected() {
        let mut f = frame(b"");
        f.corrupt_in_flight();
        assert!(!f.is_intact());
    }

    #[test]
    fn invalidated_fcs_never_validates() {
        let mut f = frame(b"data");
        f.invalidate_fcs();
        assert!(!f.is_intact());
        // Invalidation is reversible by complementing again (a property the
        // ring model relies on never happening accidentally).
        f.invalidate_fcs();
        assert!(f.is_intact());
    }

    #[test]
    fn destination_filtering() {
        let uni = Destination::Station(StationId(3));
        assert!(uni.accepts(StationId(3)));
        assert!(!uni.accepts(StationId(4)));
        assert!(Destination::Broadcast.accepts(StationId(9)));
    }

    #[test]
    fn wire_bytes_includes_header() {
        assert_eq!(frame(b"abcd").wire_bytes(), HEADER_BYTES + 4);
    }
}
