//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides criterion's macro/API surface with a deliberately tiny
//! harness: each benchmark runs its closure a few times and prints the
//! best-of-N wall-clock time. No statistics, plots, or baselines — just
//! enough to keep `cargo bench` and bench-compilation in tier-1 honest.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Number of timed repetitions per benchmark (best-of is reported).
const DEFAULT_REPS: usize = 3;

/// Passed to every benchmark closure; `iter` times one repetition.
pub struct Bencher {
    reps: usize,
    best: Option<Duration>,
}

impl Bencher {
    fn new(reps: usize) -> Self {
        Bencher { reps, best: None }
    }

    /// Runs `routine` `reps` times, keeping the fastest wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.reps.max(1) {
            let start = Instant::now();
            let out = routine();
            let took = start.elapsed();
            drop(out);
            if self.best.map(|b| took < b).unwrap_or(true) {
                self.best = Some(took);
            }
        }
    }
}

/// Parameterised benchmark name, e.g. `BenchmarkId::new("users", 115)`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Top-level harness handle; construct via `Criterion::default()`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration. The shim takes no options, so this
    /// ignores argv (accepting criterion's `--bench` flag silently).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            reps: DEFAULT_REPS,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&id.to_string(), DEFAULT_REPS, f);
        self
    }

    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    reps: usize,
}

impl BenchmarkGroup<'_> {
    /// Criterion uses this for statistical sample counts; the shim maps
    /// it to repetition count, capped to keep `cargo bench` quick.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.reps = n.clamp(1, 10);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.reps, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.reps, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, reps: usize, mut f: F) {
    let mut b = Bencher::new(reps);
    f(&mut b);
    match b.best {
        Some(best) => println!("bench {label:<48} best of {reps}: {best:?}"),
        None => println!("bench {label:<48} (no iterations)"),
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `fn main` (benches use `harness = false`) running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut ran = 0usize;
        g.sample_size(2).bench_function("count", |b| {
            b.iter(|| ran += 1);
        });
        g.finish();
        assert_eq!(ran, 2);
    }
}
