//! Network-wide identifiers (§4.3.1).
//!
//! DEMOS/MP makes process identifiers unique network-wide "by appending to
//! the single processor ID the unique ID of the processor on which it was
//! created", and gives every message a unique identifier made of "the
//! unique identifier of the sending process and a number from that
//! process's state block … increased every time a message is sent."

use core::fmt;
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};

/// A processing node (processor) on the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A network-wide process identifier: creating node plus a local id.
///
/// Local id 0 is reserved for the node's *kernel endpoint* — the kernel
/// process of §4.2.1. Kernel endpoints exchange control traffic that is
/// never published or replayed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId {
    /// Node the process was created on (migration keeps the id, §4.3.1).
    pub node: NodeId,
    /// Identifier unique within the creating node.
    pub local: u32,
}

/// Local id reserved for a node's kernel endpoint.
pub const KERNEL_LOCAL: u32 = 0;

impl ProcessId {
    /// Creates a process id.
    pub const fn new(node: u32, local: u32) -> Self {
        ProcessId {
            node: NodeId(node),
            local,
        }
    }

    /// Returns the kernel endpoint of `node`.
    pub const fn kernel_of(node: NodeId) -> Self {
        ProcessId {
            node,
            local: KERNEL_LOCAL,
        }
    }

    /// Returns `true` for kernel endpoints (never published, never
    /// recovered by replay).
    pub const fn is_kernel(self) -> bool {
        self.local == KERNEL_LOCAL
    }

    /// Packs the id into a single u64 (store keys).
    pub const fn as_u64(self) -> u64 {
        ((self.node.0 as u64) << 32) | self.local as u64
    }

    /// Unpacks an id packed by [`ProcessId::as_u64`].
    pub const fn from_u64(v: u64) -> Self {
        ProcessId {
            node: NodeId((v >> 32) as u32),
            local: v as u32,
        }
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}.{}", self.node.0, self.local)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Encode for ProcessId {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.node.0).u32(self.local);
    }
}

impl Decode for ProcessId {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let node = d.u32()?;
        let local = d.u32()?;
        Ok(ProcessId {
            node: NodeId(node),
            local,
        })
    }
}

/// A unique message identifier (§4.3.3): sender plus per-sender sequence.
///
/// Sequence numbers start at 1 and increase by one per message sent by the
/// process, including messages the kernel process sends while assuming the
/// process's identity (§4.4.3) — that sharing is what makes process
/// control replayable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MessageId {
    /// Sending process.
    pub sender: ProcessId,
    /// Per-sender sequence number, starting at 1.
    pub seq: u64,
}

impl fmt::Debug for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.sender, self.seq)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<MessageId> for publishing_obs::span::MsgKey {
    fn from(id: MessageId) -> Self {
        publishing_obs::span::MsgKey {
            sender: id.sender.as_u64(),
            seq: id.seq,
        }
    }
}

impl Encode for MessageId {
    fn encode(&self, e: &mut Encoder) {
        self.sender.encode(e);
        e.u64(self.seq);
    }
}

impl Decode for MessageId {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let sender = ProcessId::decode(d)?;
        let seq = d.u64()?;
        Ok(MessageId { sender, seq })
    }
}

/// A link id: the index of a link in its owner's link table (§4.2.2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// A message channel (§4.2.2.2). Channels 0–63 are supported, matching a
/// 64-bit receive mask.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Channel(pub u8);

impl Channel {
    /// The default channel.
    pub const DEFAULT: Channel = Channel(0);
}

/// A set of channels a receive call is willing to accept.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ChannelSet(u64);

impl ChannelSet {
    /// The empty set (receives nothing).
    pub const NONE: ChannelSet = ChannelSet(0);
    /// Every channel.
    pub const ALL: ChannelSet = ChannelSet(u64::MAX);

    /// Creates a set containing exactly the given channels.
    ///
    /// # Panics
    ///
    /// Panics if any channel is ≥ 64.
    pub fn of(channels: &[Channel]) -> Self {
        let mut s = ChannelSet(0);
        for &c in channels {
            s = s.with(c);
        }
        s
    }

    /// Returns the set plus `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c.0 >= 64`.
    pub fn with(self, c: Channel) -> Self {
        assert!(c.0 < 64, "channel {} out of range", c.0);
        ChannelSet(self.0 | (1u64 << c.0))
    }

    /// Returns `true` if the set contains `c`.
    pub fn contains(self, c: Channel) -> bool {
        c.0 < 64 && self.0 & (1u64 << c.0) != 0
    }

    /// Returns the raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a set from a raw bitmask.
    pub fn from_bits(bits: u64) -> Self {
        ChannelSet(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_u64_roundtrip() {
        let pid = ProcessId::new(7, 42);
        assert_eq!(ProcessId::from_u64(pid.as_u64()), pid);
        let max = ProcessId::new(u32::MAX, u32::MAX);
        assert_eq!(ProcessId::from_u64(max.as_u64()), max);
    }

    #[test]
    fn kernel_endpoint_detection() {
        assert!(ProcessId::kernel_of(NodeId(3)).is_kernel());
        assert!(!ProcessId::new(3, 1).is_kernel());
    }

    #[test]
    fn pid_codec_roundtrip() {
        let pid = ProcessId::new(9, 1234);
        let buf = pid.encode_to_vec();
        assert_eq!(ProcessId::decode_all(&buf).unwrap(), pid);
    }

    #[test]
    fn message_id_codec_roundtrip() {
        let id = MessageId {
            sender: ProcessId::new(1, 2),
            seq: 99,
        };
        assert_eq!(MessageId::decode_all(&id.encode_to_vec()).unwrap(), id);
    }

    #[test]
    fn message_id_ordering_is_seq_major_within_sender() {
        let a = MessageId {
            sender: ProcessId::new(1, 1),
            seq: 1,
        };
        let b = MessageId {
            sender: ProcessId::new(1, 1),
            seq: 2,
        };
        assert!(a < b);
    }

    #[test]
    fn message_id_to_msgkey() {
        let id = MessageId {
            sender: ProcessId::new(3, 7),
            seq: 11,
        };
        let key: publishing_obs::span::MsgKey = id.into();
        assert_eq!(key.sender, ProcessId::new(3, 7).as_u64());
        assert_eq!(key.seq, 11);
    }

    #[test]
    fn channel_set_membership() {
        let s = ChannelSet::of(&[Channel(0), Channel(5)]);
        assert!(s.contains(Channel(0)));
        assert!(s.contains(Channel(5)));
        assert!(!s.contains(Channel(1)));
        assert!(ChannelSet::ALL.contains(Channel(63)));
        assert!(!ChannelSet::NONE.contains(Channel(0)));
    }

    #[test]
    fn channel_set_bits_roundtrip() {
        let s = ChannelSet::of(&[Channel(7)]);
        assert_eq!(ChannelSet::from_bits(s.bits()), s);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_channel_rejected() {
        let _ = ChannelSet::NONE.with(Channel(64));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ProcessId::new(2, 5)), "p2.5");
        assert_eq!(
            format!(
                "{}",
                MessageId {
                    sender: ProcessId::new(2, 5),
                    seq: 3
                }
            ),
            "p2.5#3"
        );
    }
}
