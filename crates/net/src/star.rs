//! The star configuration of §4.1: the recording node is the hub.
//!
//! Every spoke has a dedicated point-to-point link to the hub. A frame
//! travels up its sender's link; the hub records it and forwards it down
//! the destination link (all links, for broadcasts). "Any messages
//! received incorrectly by the recorder are not passed on" — the hub *is*
//! the publish-before-use gate, so forwarded frames always carry
//! `recorder_ok = true`.

use crate::frame::{Destination, Frame, StationId};
use crate::lan::{Lan, LanAction, LanConfig, LanStats};
use publishing_sim::fault::FaultPlan;
use publishing_sim::rng::DetRng;
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A star topology whose hub is the recorder.
pub struct StarHub {
    cfg: LanConfig,
    hub: StationId,
    /// Processing delay inside the hub between receipt and forwarding.
    hub_delay: SimDuration,
    up: BTreeMap<StationId, bool>,
    faults: FaultPlan,
    rng: DetRng,
    stats: LanStats,
}

impl StarHub {
    /// Creates a star with the given hub station (attach it like any other
    /// station) and internal forwarding delay.
    pub fn new(cfg: LanConfig, hub: StationId, hub_delay: SimDuration) -> Self {
        let rng = DetRng::new(cfg.seed ^ 0x57A2);
        StarHub {
            cfg,
            hub,
            hub_delay,
            up: BTreeMap::new(),
            faults: FaultPlan::new(),
            rng,
            stats: LanStats::default(),
        }
    }

    /// Returns the hub station id.
    pub fn hub(&self) -> StationId {
        self.hub
    }

    fn is_up(&self, st: StationId) -> bool {
        self.up.get(&st).copied().unwrap_or(false)
    }
}

impl Lan for StarHub {
    fn attach(&mut self, station: StationId) {
        self.up.insert(station, true);
    }

    fn set_station_up(&mut self, station: StationId, up: bool) {
        self.up.insert(station, up);
    }

    fn set_required_recorders(&mut self, _recorders: Vec<StationId>) {
        // The hub is structurally the recorder; nothing to configure.
    }

    fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    fn submit(&mut self, now: SimTime, frame: Frame) -> Vec<LanAction> {
        let mut out = Vec::new();
        let src = frame.src;
        if !self.is_up(src) {
            return out;
        }
        self.stats.submitted.inc();
        self.stats.wire_bytes.add(frame.wire_bytes() as u64);
        let link_time = self.cfg.frame_time(frame.wire_bytes());
        let at_hub = now + link_time;
        out.push(LanAction::TxOutcome {
            at: at_hub,
            station: src,
            ok: true,
            collisions: 0,
        });
        if !self.is_up(self.hub) {
            // Hub (recorder) down: the frame vanishes; transport retries.
            self.stats.recorder_blocked.inc();
            return out;
        }
        // Uplink fault?
        if self.faults.roll_loss(&mut self.rng) {
            self.stats.lost.inc();
            return out;
        }
        if self.faults.roll_corruption(&mut self.rng) {
            // "Received incorrectly by the recorder": not passed on.
            self.stats.corrupted.inc();
            self.stats.recorder_blocked.inc();
            return out;
        }
        // The hub records the frame (delivery to the hub station itself,
        // unless the hub sent it).
        if src != self.hub {
            self.stats.delivered.inc();
            out.push(LanAction::Deliver {
                at: at_hub,
                to: self.hub,
                frame: frame.clone(),
                recorder_ok: true,
            });
        }
        // Forward down the destination link(s). A self-addressed frame
        // (published intranode message, §4.4.1) goes back down the
        // sender's own link.
        let targets: Vec<StationId> = match frame.dst {
            Destination::Station(st) => vec![st],
            Destination::Broadcast => self
                .up
                .keys()
                .copied()
                .filter(|&st| st != self.hub && st != src)
                .collect(),
        };
        for to in targets {
            if to == self.hub
                || (to == src && frame.dst == Destination::Broadcast)
                || !self.is_up(to)
            {
                continue;
            }
            let at = at_hub + self.hub_delay + link_time;
            if self.faults.roll_loss(&mut self.rng) {
                self.stats.lost.inc();
                continue;
            }
            let mut f = frame.clone();
            if self.faults.roll_corruption(&mut self.rng) {
                self.stats.corrupted.inc();
                f.corrupt_in_flight();
            }
            self.stats.delivered.inc();
            out.push(LanAction::Deliver {
                at,
                to,
                frame: f.clone(),
                recorder_ok: true,
            });
            if self.faults.roll_duplication(&mut self.rng) {
                // The hub forwards the frame down the link a second time
                // (spurious retransmission), one link traversal later.
                self.stats.duplicated.inc();
                self.stats.delivered.inc();
                out.push(LanAction::Deliver {
                    at: at + link_time.max(SimDuration::from_nanos(1)),
                    to,
                    frame: f,
                    recorder_ok: true,
                });
            }
        }
        out
    }

    fn timer(&mut self, _now: SimTime, _token: u64) -> Vec<LanAction> {
        Vec::new()
    }

    fn stats(&self) -> &LanStats {
        &self.stats
    }

    fn config(&self) -> Option<&LanConfig> {
        Some(&self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: u32) -> StarHub {
        let cfg = LanConfig {
            seed: 5,
            ..LanConfig::default()
        };
        let mut s = StarHub::new(cfg, StationId(0), SimDuration::from_micros(100));
        for i in 0..n {
            s.attach(StationId(i));
        }
        s
    }

    fn deliveries(actions: &[LanAction]) -> Vec<(SimTime, StationId, bool)> {
        actions
            .iter()
            .filter_map(|a| match a {
                LanAction::Deliver {
                    at,
                    to,
                    recorder_ok,
                    ..
                } => Some((*at, *to, *recorder_ok)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn unicast_goes_via_hub() {
        let mut s = star(3);
        let f = Frame::new(StationId(1), Destination::Station(StationId(2)), vec![1]);
        let actions = s.submit(SimTime::ZERO, f);
        let d = deliveries(&actions);
        // Hub records first, destination second, strictly later.
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].1, StationId(0));
        assert_eq!(d[1].1, StationId(2));
        assert!(d[1].0 > d[0].0);
        assert!(d.iter().all(|(_, _, ok)| *ok));
    }

    #[test]
    fn broadcast_forwarded_to_all_spokes() {
        let mut s = star(4);
        let f = Frame::new(StationId(1), Destination::Broadcast, vec![2]);
        let actions = s.submit(SimTime::ZERO, f);
        let mut ds: Vec<StationId> = deliveries(&actions)
            .into_iter()
            .map(|(_, s, _)| s)
            .collect();
        ds.sort();
        assert_eq!(ds, vec![StationId(0), StationId(2), StationId(3)]);
    }

    #[test]
    fn hub_down_blocks_everything() {
        let mut s = star(3);
        s.set_station_up(StationId(0), false);
        let f = Frame::new(StationId(1), Destination::Station(StationId(2)), vec![3]);
        let actions = s.submit(SimTime::ZERO, f);
        assert!(deliveries(&actions).is_empty());
        assert_eq!(s.stats().recorder_blocked.get(), 1);
    }

    #[test]
    fn corrupted_uplink_is_not_forwarded() {
        let mut s = star(3);
        s.set_faults(FaultPlan::new().with_frame_corruption(1.0));
        let f = Frame::new(StationId(1), Destination::Station(StationId(2)), vec![4]);
        let actions = s.submit(SimTime::ZERO, f);
        assert!(deliveries(&actions).is_empty());
        assert_eq!(s.stats().recorder_blocked.get(), 1);
    }

    #[test]
    fn hub_can_originate_frames() {
        let mut s = star(3);
        let f = Frame::new(StationId(0), Destination::Station(StationId(2)), vec![5]);
        let actions = s.submit(SimTime::ZERO, f);
        let d = deliveries(&actions);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, StationId(2));
    }
}
