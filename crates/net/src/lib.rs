//! Broadcast LAN models for the PUBLISHING reproduction.
//!
//! Publishing works on any medium with "a single point at which all
//! messages can be intercepted and recorded" (§6.2). This crate provides
//! the media the thesis discusses, each as a sans-IO state machine driven
//! through the [`lan::Lan`] trait:
//!
//! - [`bus::PerfectBus`] — the idealized reliable broadcast the thesis
//!   simulates on its testbeds; used by most recovery tests;
//! - [`ethernet::Ethernet`] — CSMA/CD with collisions and binary
//!   exponential backoff, in standard or *Acknowledging* (§6.1.1) mode with
//!   reserved receiver/recorder ack slots;
//! - [`token_ring::TokenRing`] — a token ring with the §6.1.2 recorder
//!   acknowledge field and checksum invalidation;
//! - [`star::StarHub`] — the §4.1 star whose hub is the recorder.
//!
//! All media enforce the publish-before-use rule: a frame a required
//! recorder failed to capture is unusable by its destination.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod crc;
pub mod ethernet;
pub mod frame;
pub mod lan;
pub mod star;
pub mod token_ring;

pub use bus::PerfectBus;
pub use ethernet::Ethernet;
pub use frame::{Destination, Frame, StationId, HEADER_BYTES};
pub use lan::{Lan, LanAction, LanConfig, LanStats};
pub use star::StarHub;
pub use token_ring::TokenRing;
