//! Smoke test for the `paper_tables` binary: runs the real executable
//! and checks the headline numbers, including the sharded-tier capacity
//! table's monotone growth.

use std::process::Command;

fn run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_paper_tables"))
        .args(args)
        .output()
        .expect("paper_tables runs");
    assert!(out.status.success(), "exit: {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn capacity_section_reports_115_users() {
    let text = run(&["capacity"]);
    let users: u32 = text
        .lines()
        .find(|l| l.contains("before any component saturates"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|n| n.parse().ok())
        .expect("capacity line");
    assert!((110..=120).contains(&users), "{users}");
}

#[test]
fn shard_capacity_table_grows_monotonically() {
    let text = run(&["shard_capacity"]);
    // Parse the table body: rows of "shards tier(R=1) tier(R=2) medium effective".
    let rows: Vec<Vec<u64>> = text
        .lines()
        .filter_map(|l| {
            let nums: Vec<u64> = l
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<_, _>>()
                .ok()?;
            (nums.len() == 5).then_some(nums)
        })
        .collect();
    assert_eq!(rows.len(), 8, "expected 8 shard rows in:\n{text}");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[0], i as u64 + 1, "shard column");
    }
    for w in rows.windows(2) {
        // Partitioned tier capacity strictly increases with each shard;
        // the replicated and effective columns never decrease.
        assert!(w[1][1] > w[0][1], "tier (R=1) must increase: {rows:?}");
        assert!(w[1][2] >= w[0][2], "tier (R=2) must not decrease: {rows:?}");
        assert!(w[1][4] >= w[0][4], "effective must not decrease: {rows:?}");
    }
    // 8 shards carry several times the single-recorder load.
    assert!(rows[7][1] >= 8 * rows[0][1] - 8);
    assert!(rows[7][4] > 3 * rows[0][4]);
}

#[test]
fn full_output_includes_every_section() {
    let text = run(&[]);
    for name in [
        "fig2_1",
        "fig3_1",
        "young",
        "fig5_1",
        "fig5_2",
        "fig5_3",
        "fig5_4",
        "fig5_5",
        "capacity",
        "shard_capacity",
        "fig5_7",
        "fig5_8",
        "publish_cost",
        "fig6_2",
        "fig6_4",
        "baselines",
        "recovery_time",
        "windowing",
        "node_unit",
    ] {
        assert!(
            text.contains(&format!("\n{name}: ")),
            "missing section {name}"
        );
    }
}
