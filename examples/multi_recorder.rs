//! Multiple recorders for reliability (§6.3).
//!
//! "During normal operation, all recorders record all messages. If there
//! are n recorders, n−1 can fail before the network becomes unavailable."
//! Two recorders watch a two-node system. We kill the recorder with top
//! priority for the worker's node, then kill the worker's node itself:
//! the surviving recorder covers the dead one's acknowledgements and runs
//! the recovery. Finally the dead recorder rejoins and catches up through
//! natural checkpointing.
//!
//! Run with: `cargo run --example multi_recorder`

use publishing::core::multi::MultiWorld;
use publishing::demos::ids::{Channel, NodeId};
use publishing::demos::link::Link;
use publishing::demos::programs::{self, PingClient};
use publishing::demos::registry::ProgramRegistry;
use publishing::sim::time::SimTime;

fn main() {
    let mut registry = ProgramRegistry::new();
    programs::register_standard(&mut registry);
    registry.register("ping", || {
        let mut p = PingClient::new(30);
        p.think_ns = 1_500_000;
        Box::new(p)
    });

    // Nodes 0 and 1; recorders on nodes 2 and 3, with round-robin
    // priority vectors.
    let mut world = MultiWorld::new(2, 2, registry);
    let server = world.spawn(1, "echo", vec![]).unwrap();
    let client = world
        .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    let top = world
        .priorities
        .responsible(NodeId(1), &[true, true])
        .unwrap();
    println!("recorder {top} has top priority for node 1's recovery");

    world.run_until(SimTime::from_millis(25));
    println!(
        "t={}  recorder {top} dies; the survivor covers its acks…",
        world.now()
    );
    world.crash_recorder(top);

    world.run_until(SimTime::from_millis(60));
    println!("t={}  node 1 (the echo server's node) dies…", world.now());
    world.crash_node(1);

    world.run_until(SimTime::from_secs(5));
    let other = 1 - top;
    println!(
        "t=5s  recorder {other} detected {} node crash(es) and ran the recovery",
        world.recorders[other].manager().stats().node_crashes.get()
    );

    println!("t=5s  recorder {top} rejoins and catches up via checkpoints…");
    world.restart_recorder(top);
    world.run_until(SimTime::from_secs(30));

    let out = world.outputs_of(client);
    println!(
        "\nclient finished with {} outputs; last = {:?}",
        out.len(),
        out.last().unwrap()
    );
    assert_eq!(out.len(), 31);
    assert_eq!(out.last().unwrap(), "done");
    assert!(world.recorders[top].is_up());
    println!("no message was lost across a recorder death, a node death, and a rejoin.");
}
