//! Transactions using published communications (§6.4).
//!
//! A two-phase-commit bank: coordinator and two branch participants, with
//! intentions and transaction state held in plain (recoverable) process
//! state — "there is no need to store intentions and transaction state in
//! stable store … only one reliable store is needed, the publishing
//! storage." We crash the coordinator mid-transfer and show every
//! transfer still executes exactly once; money is conserved.
//!
//! Run with: `cargo run --example transactions`

use publishing::core::transactions::{tx_codes, TxCoordinator, TxOp, TxParticipant, TxRequest};
use publishing::core::world::WorldBuilder;
use publishing::demos::ids::{Channel, LinkId};
use publishing::demos::kernel::{decode_ctl, encode_ctl};
use publishing::demos::link::Link;
use publishing::demos::program::{Ctx, Program, Received};
use publishing::demos::registry::ProgramRegistry;
use publishing::sim::codec::{CodecError, Decoder, Encoder};
use publishing::sim::time::{SimDuration, SimTime};

/// Issues `total` transfers of 25 from checking (participant 0) to
/// savings (participant 1), one at a time.
struct Teller {
    total: u64,
    started: u64,
}

impl Teller {
    fn begin(&mut self, ctx: &mut Ctx<'_>) {
        self.started += 1;
        let reply = ctx.create_link(Channel::DEFAULT, 0);
        let req = TxRequest {
            ops: vec![
                TxOp {
                    participant: 0,
                    account: "checking".into(),
                    delta: -25,
                },
                TxOp {
                    participant: 1,
                    account: "savings".into(),
                    delta: 25,
                },
            ],
        };
        let _ = ctx.send_passing(LinkId(0), encode_ctl(tx_codes::TX_BEGIN, &req), reply);
    }
}

impl Program for Teller {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.begin(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        if let Some((tx_codes::TX_DONE, payload)) = decode_ctl(&msg.body) {
            let mut d = Decoder::new(payload);
            let tx = d.u64().unwrap_or(0);
            let ok = d.bool().unwrap_or(false);
            ctx.output(
                format!(
                    "transfer {tx}: {}",
                    if ok { "committed" } else { "aborted" }
                )
                .into_bytes(),
            );
            ctx.compute(SimDuration::from_millis(1));
            if self.started < self.total {
                self.begin(ctx);
            } else {
                ctx.output(b"teller done".to_vec());
            }
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.total).u64(self.started);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.total = d.u64()?;
        self.started = d.u64()?;
        d.finish()
    }
}

fn main() {
    let mut registry = ProgramRegistry::new();
    registry.register("coordinator", || Box::new(TxCoordinator::new()));
    registry.register("checking", || {
        Box::new(TxParticipant::with_accounts(&[("checking", 500)]))
    });
    registry.register("savings", || {
        Box::new(TxParticipant::with_accounts(&[("savings", 0)]))
    });
    registry.register("teller", || {
        Box::new(Teller {
            total: 8,
            started: 0,
        })
    });

    let mut world = WorldBuilder::new(3).registry(registry).build();
    let checking = world.spawn(1, "checking", vec![]).unwrap();
    let savings = world.spawn(2, "savings", vec![]).unwrap();
    let coordinator = world
        .spawn(
            0,
            "coordinator",
            vec![
                Link::to(checking, Channel::DEFAULT, 0),
                Link::to(savings, Channel::DEFAULT, 0),
            ],
        )
        .unwrap();
    let teller = world
        .spawn(
            0,
            "teller",
            vec![Link::to(coordinator, Channel::DEFAULT, 0)],
        )
        .unwrap();

    println!("8 transfers of 25 from checking(500) to savings(0)\n");
    world.run_until(SimTime::from_millis(12));
    println!(
        "t={}  coordinator crashes mid two-phase commit…",
        world.now()
    );
    world.crash_process(coordinator, "injected");
    world.run_until(SimTime::from_secs(30));

    for line in world.outputs_of(teller) {
        println!("  {line}");
    }

    let read_balance = |pid: publishing::demos::ids::ProcessId, name: &str| -> i64 {
        let snap = world.kernels[&pid.node.0]
            .process(pid.local)
            .unwrap()
            .program
            .snapshot();
        let mut p = TxParticipant::default();
        p.restore(&snap).unwrap();
        p.accounts[name]
    };
    let c = read_balance(checking, "checking");
    let s = read_balance(savings, "savings");
    println!("\nfinal balances: checking={c} savings={s} (sum {})", c + s);
    assert_eq!(c, 500 - 8 * 25);
    assert_eq!(s, 8 * 25);
    println!("atomicity and exactly-once held across the coordinator crash —");
    println!("with no per-node stable storage anywhere except the recorder.");
}
