//! A minimal JSON document model.
//!
//! The workspace deliberately carries no serde; every artifact so far
//! (metrics JSONL, `obs_report --json`) is *written* by hand. The perf
//! observatory also has to *read* its artifacts back — the comparator
//! diffs two snapshots, and the trace exporter proves its output
//! round-trips — so this module adds the missing half: a small
//! recursive-descent parser and a deterministic writer over one
//! [`Json`] value type.
//!
//! Objects preserve insertion order (they are association lists, not
//! maps), so `parse(text).write() == text` for any text this module
//! itself produced — the property the round-trip tests pin.

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes the value compactly (no whitespace).
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&write_num(*n)),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a finite `f64` so whole values keep a decimal point (matching
/// the obs registry's JSON convention) and round-trip exactly.
fn write_num(v: f64) -> String {
    if !v.is_finite() {
        return "0.0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}.0", v.trunc() as i64)
    } else {
        format!("{v}")
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what was expected and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser was looking for.
    pub expected: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &str) -> ParseError {
        ParseError {
            expected: expected.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("'{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Json::Obj(pairs));
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("4 hex digits"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("4 hex digits"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("4 hex digits"))?;
                            // Surrogates are not produced by our writers;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("an escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("valid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("a character"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("a number"))
    }
}

/// Convenience: an object builder that keeps insertion order.
#[derive(Debug, Default)]
pub struct ObjBuilder {
    pairs: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ObjBuilder::default()
    }

    /// Appends a field.
    pub fn field(mut self, key: impl Into<String>, value: Json) -> Self {
        self.pairs.push((key.into(), value));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn write_then_parse_is_identity() {
        let v = ObjBuilder::new()
            .field("n", Json::Num(3.25))
            .field("whole", Json::Num(7.0))
            .field("s", Json::Str("quote \" slash \\ nl \n".into()))
            .field(
                "arr",
                Json::Arr(vec![Json::Bool(false), Json::Null, Json::Num(-2.0)]),
            )
            .build();
        let text = v.write();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // And the writer is deterministic: writing again is byte-identical.
        assert_eq!(back.write(), text);
    }

    #[test]
    fn whole_numbers_keep_a_decimal_point() {
        assert_eq!(Json::Num(7.0).write(), "7.0");
        assert_eq!(Json::Num(0.5).write(), "0.5");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.write(), r#"{"z":1.0,"a":2.0}"#);
    }
}
