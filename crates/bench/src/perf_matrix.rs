//! The perf-observatory scenario matrix behind the `bench` binary.
//!
//! Four canonical scenarios at fixed seeds — fault-free steady state,
//! crash+replay, mid-run shard rebalance, and one generated chaos
//! schedule — each reduced to a [`ScenarioSnapshot`] of virtual-time
//! metrics, output/span fingerprints, and host readings. The virtual
//! sections are deterministic: [`run_matrix`] twice at the same mode
//! yields byte-identical `Snapshot::virtual_json`.
//!
//! Host readings (wall clock, allocation counts) only carry data when
//! the process installed `publishing_perf::alloc::CountingAlloc` as the
//! global allocator (the `bench` binary does; tests don't need to).

use publishing_chaos::driver::run_schedule;
use publishing_chaos::scenario::{Scenario, Topology, NODES, SHARDS};
use publishing_chaos::schedule::{self, ChaosConfig};
use publishing_demos::ids::Channel;
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_perf::alloc;
use publishing_perf::snapshot::{scenario_from_report, ScenarioSnapshot, Snapshot};
use publishing_quorum::{QuorumConfig, QuorumWorld};
use publishing_shard::ShardedWorld;
use publishing_sim::fault::FaultPlan;
use publishing_sim::time::SimTime;

/// Scenario-matrix sizing: the smoke matrix is the CI gate (< 1 s), the
/// full matrix is for local investigation.
pub struct MatrixParams {
    /// Pings per client.
    pub pings: u64,
    /// Ping/echo pairs.
    pub pairs: u32,
    /// Run horizon for the non-chaos scenarios.
    pub horizon: SimTime,
    /// Injection horizon for the chaos schedule (ms).
    pub chaos_horizon_ms: u64,
    /// Fault budget for the chaos schedule.
    pub chaos_faults: usize,
}

impl MatrixParams {
    /// The canonical sizing for `smoke` or full mode.
    pub fn new(smoke: bool) -> MatrixParams {
        if smoke {
            MatrixParams {
                pings: 10,
                pairs: 2,
                horizon: SimTime::from_secs(20),
                chaos_horizon_ms: 800,
                chaos_faults: 5,
            }
        } else {
            MatrixParams {
                pings: 25,
                pairs: 4,
                horizon: SimTime::from_secs(40),
                chaos_horizon_ms: 1500,
                chaos_faults: 7,
            }
        }
    }
}

/// The standard ping/echo world every non-chaos scenario drives: echo
/// servers on node 2, pingers on nodes 0/1, four recorder shards.
pub fn build_world(p: &MatrixParams) -> ShardedWorld {
    let pings = p.pings;
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("pinger", move || {
        let mut c = PingClient::new(pings);
        c.think_ns = 2_000_000;
        Box::new(c)
    });
    let mut w = ShardedWorld::new(3, 4, reg);
    for i in 0..p.pairs {
        let server = w.spawn(2, "echo", vec![]).expect("echo registered");
        w.spawn(i % 2, "pinger", vec![Link::to(server, Channel::DEFAULT, 7)])
            .expect("pinger registered");
    }
    w
}

/// Runs one scenario body under the wall-clock and allocation meters and
/// files the host section.
fn metered(body: impl FnOnce() -> ScenarioSnapshot) -> ScenarioSnapshot {
    let alloc_before = alloc::snapshot();
    let wall_before = std::time::Instant::now();
    let mut s = body();
    let wall_ms = wall_before.elapsed().as_secs_f64() * 1e3;
    let grew = alloc::snapshot().since(alloc_before);
    s.host("wall_ms", wall_ms);
    s.host("allocations", grew.allocs as f64);
    s.host("alloc_bytes", grew.bytes as f64);
    s
}

fn steady_state(p: &MatrixParams) -> ScenarioSnapshot {
    let mut w = build_world(p);
    w.run_until(p.horizon);
    let mut s = scenario_from_report("steady_state", &w.obs_report());
    s.fingerprint("output", w.output_fingerprint());
    s.virt("recoveries_completed", w.recoveries_completed() as f64);
    s
}

fn crash_replay(p: &MatrixParams) -> ScenarioSnapshot {
    let mut w = build_world(p);
    w.run_until(SimTime::from_millis(50));
    w.crash_node(2);
    w.run_until(p.horizon);
    let mut s = scenario_from_report("crash_replay", &w.obs_report());
    s.fingerprint("output", w.output_fingerprint());
    s.virt("recoveries_completed", w.recoveries_completed() as f64);
    s
}

fn rebalance(p: &MatrixParams) -> ScenarioSnapshot {
    let mut w = build_world(p);
    w.run_until(SimTime::from_millis(40));
    w.add_shard();
    w.run_until(p.horizon);
    let mut s = scenario_from_report("rebalance", &w.obs_report());
    s.fingerprint("output", w.output_fingerprint());
    s.virt("shards", w.shards.len() as f64);
    s
}

fn chaos_smoke(p: &MatrixParams) -> ScenarioSnapshot {
    let sched = schedule::generate(&ChaosConfig {
        seed: 42,
        nodes: NODES,
        shards: SHARDS,
        replicas: 0,
        procs: 4,
        horizon_ms: p.chaos_horizon_ms,
        max_faults: p.chaos_faults,
    });
    let mut t = Scenario::new(Topology::Sharded, 42).build();
    run_schedule(t.as_mut(), &sched);
    let mut s = scenario_from_report("chaos_smoke", &t.obs_report());
    s.fingerprint("output", t.output_fingerprint());
    s.virt("faults_injected", sched.faults.len() as f64);
    s.virt("recoveries_completed", t.recoveries_completed() as f64);
    s
}

/// The quorum sequencing sweep: group size 1/3/5 × frame-loss rate,
/// one ping/echo workload each. Per combination the snapshot carries
/// the virtual completion time (consensus commit latency shows up
/// directly here), the quorum-sequenced arrival count, and how many
/// elections the group needed — the cost surface of replicated capture.
fn quorum_sweep(p: &MatrixParams) -> ScenarioSnapshot {
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut last_report = None;
    let mut output_fp = 0u64;
    for &replicas in &[1usize, 3, 5] {
        for &loss_pct in &[0u32, 10] {
            let pings = p.pings;
            let mut reg = ProgramRegistry::new();
            programs::register_standard(&mut reg);
            reg.register("pinger", move || {
                let mut c = PingClient::new(pings);
                c.think_ns = 2_000_000;
                Box::new(c)
            });
            let mut w = QuorumWorld::with_config(
                QuorumConfig {
                    nodes: 3,
                    replicas,
                    seed: 42,
                    ..QuorumConfig::default()
                },
                reg,
                Box::new(publishing_net::bus::PerfectBus::new(
                    publishing_net::lan::LanConfig::default(),
                )),
            );
            w.lan
                .set_faults(FaultPlan::new().with_frame_loss(f64::from(loss_pct) / 100.0));
            let mut clients = Vec::new();
            for i in 0..p.pairs {
                let server = w.spawn(2, "echo", vec![]).expect("echo registered");
                let client = w
                    .spawn(i % 2, "pinger", vec![Link::to(server, Channel::DEFAULT, 7)])
                    .expect("pinger registered");
                clients.push(client);
            }
            w.run_until(p.horizon);
            let done_at = clients
                .iter()
                .filter_map(|&c| {
                    w.outputs
                        .iter()
                        .filter(|o| o.pid == c && o.bytes == b"done")
                        .map(|o| o.at)
                        .next()
                })
                .max();
            let key = format!("r{replicas}_loss{loss_pct}");
            entries.push((
                format!("{key}/done_ms"),
                done_at.map_or(-1.0, |t| t.as_millis_f64()),
            ));
            entries.push((format!("{key}/sequenced"), w.sequenced_total() as f64));
            entries.push((
                format!("{key}/elections"),
                w.quorum_health().iter().map(|h| h.elections).sum::<u64>() as f64,
            ));
            assert!(
                w.quorum_invariant_failures().is_empty(),
                "quorum invariants must hold in the sweep"
            );
            output_fp ^= w
                .output_fingerprint()
                .rotate_left((replicas as u32) * 7 + loss_pct);
            last_report = Some(w.obs_report());
        }
    }
    // The report-derived metrics come from the largest combination
    // (5 replicas, lossy medium) — the worst case the gate watches.
    let mut s = scenario_from_report(
        "quorum_sweep",
        &last_report.expect("the sweep ran at least one combination"),
    );
    for (k, v) in entries {
        s.virt(k, v);
    }
    s.fingerprint("output", output_fp);
    s
}

/// Runs the whole matrix and assembles the snapshot.
pub fn run_matrix(smoke: bool) -> Snapshot {
    let p = MatrixParams::new(smoke);
    let mut snap = Snapshot::new(if smoke { "smoke" } else { "full" });
    snap.scenarios.push(metered(|| steady_state(&p)));
    snap.scenarios.push(metered(|| crash_replay(&p)));
    snap.scenarios.push(metered(|| rebalance(&p)));
    snap.scenarios.push(metered(|| chaos_smoke(&p)));
    snap.scenarios.push(metered(|| quorum_sweep(&p)));
    snap
}
