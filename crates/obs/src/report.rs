//! The `obs_report` run artifact.
//!
//! A world driver assembles an [`ObsReport`] at any virtual instant:
//! the full metrics snapshot, the derived health probes, the stage
//! latencies, the virtual-time profile, and the run-level span
//! fingerprint. The report renders as human-readable text or as a
//! single JSON object; the metrics section additionally exports as
//! JSON lines via [`MetricsRegistry::to_jsonl`].

use crate::causal::CriticalPath;
use crate::probe::{MediumHealth, QuorumHealth, RecoveryLag, SchedulerProbe, ShardHealth};
use crate::profile::{StageLatencies, TimeProfile};
use crate::registry::{json_escape, json_f64, MetricValue, MetricsRegistry};
use publishing_sim::stats::LinearHistogram;
use publishing_sim::time::SimDuration;

/// Version of the report's rendered shape. History:
///
/// - **1**: the original shape (no explicit `schema` field in JSON —
///   readers treat its absence as version 1).
/// - **2**: adds `schema`, the optional `critical_path` section
///   (recovery window, per-stage attribution, top segments), and
///   `spans_partial`.
/// - **3**: adds the optional consensus sections — `quorum`
///   (per-replica health), `consensus` (commit-latency percentiles,
///   replication lag, elections), and `watchdog` (online invariant
///   checks and violations). All three are absent for worlds without
///   a quorum topology, so v2 readers that ignore unknown keys keep
///   working and v2 documents still parse.
/// - **4**: adds the optional `workload` section — offered load vs.
///   goodput and the SLO violations the run tripped — populated by
///   runs driven through the workload engine and absent everywhere
///   else, so v3 documents still parse and v3 readers keep working.
/// - **5**: adds the optional capacity-lens sections — `utilization`
///   (the typed per-resource busy/queue ledger, binding-resource call,
///   and queueing-model cross-validation rows) and `whatif` (the
///   virtual-speedup profiler's knee predictions). Both are absent
///   unless the run was metered, so v4 documents still parse and v4
///   readers keep working.
/// - **6**: adds the optional `forensics` section — the differential
///   diagnosis of this run against a named baseline (ranked suspects
///   per finding: stages, resources, binding flips, critical-path
///   hops, allocation deltas). Absent unless a forensics pass diffed
///   the run, so v5 documents still parse and v5 readers keep working.
pub const REPORT_SCHEMA_VERSION: u32 = 6;

/// Consensus-level aggregates for the quorum section (schema v3).
#[derive(Debug, Clone, Default)]
pub struct ConsensusStats {
    /// Proposals whose commit latency was measured on the leader.
    pub commits: u64,
    /// Median proposal→apply latency on the leader, µs.
    pub commit_p50_us: u64,
    /// 99th-percentile proposal→apply latency on the leader, µs.
    pub commit_p99_us: u64,
    /// 95th-percentile follower replication lag, entries.
    pub replication_lag_p95: f64,
    /// Leader elections observed across the group.
    pub elections: u64,
}

impl ConsensusStats {
    /// One-line terminal rendering.
    pub fn render(&self) -> String {
        format!(
            "commits={} commit_p50={}us commit_p99={}us replication_lag_p95={:.1} elections={}",
            self.commits,
            self.commit_p50_us,
            self.commit_p99_us,
            self.replication_lag_p95,
            self.elections
        )
    }
}

/// Outcome of the online invariant watchdog (schema v3).
#[derive(Debug, Clone, Default)]
pub struct WatchdogSummary {
    /// Invariant evaluations performed over the run.
    pub checks: u64,
    /// Violations the watchdog surfaced, in detection order.
    pub violations: Vec<String>,
}

/// Offered-load accounting for workload-driven runs (schema v4).
#[derive(Debug, Clone, Default)]
pub struct WorkloadStats {
    /// Messages the load drivers offered over the run.
    pub offered: u64,
    /// Messages the subject sinks acknowledged receiving.
    pub delivered: u64,
    /// Offered messages per logical second of driver horizon.
    pub offered_per_sec: f64,
    /// SLO predicates the run violated, in evaluation order (empty =
    /// the run met its objectives).
    pub slo_violations: Vec<String>,
}

impl WorkloadStats {
    /// Delivered fraction of the offered load, 0–1 (1.0 when nothing
    /// was offered).
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }

    /// One-line terminal rendering.
    pub fn render(&self) -> String {
        format!(
            "offered={} ({:.1}/s) delivered={} goodput={:.1}% slo_violations={}",
            self.offered,
            self.offered_per_sec,
            self.delivered,
            self.goodput() * 100.0,
            self.slo_violations.len()
        )
    }
}

/// A complete observability snapshot of one run.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Rendered-shape version ([`REPORT_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Virtual time of the snapshot, in milliseconds.
    pub at_ms: f64,
    /// The full metrics snapshot.
    pub metrics: MetricsRegistry,
    /// Per-process recovery-lag probes.
    pub recovery: Vec<RecoveryLag>,
    /// Per-shard health probes (empty for unsharded worlds).
    pub shards: Vec<ShardHealth>,
    /// Medium probe, when the world drives a shared medium.
    pub medium: Option<MediumHealth>,
    /// Virtual-time attribution per category.
    pub profile: TimeProfile,
    /// The run horizon the profile fractions are computed against.
    pub horizon: SimDuration,
    /// Per-stage message latencies.
    pub latencies: StageLatencies,
    /// Event-queue statistics of the world's scheduler.
    pub sched: SchedulerProbe,
    /// Distribution of the recorder tier's pending-buffer depth, sampled
    /// at every capture (merged across shards). `None` for worlds that
    /// do not sample depth.
    pub queue_depths: Option<LinearHistogram>,
    /// Total lifecycle events recorded across all component logs.
    pub spans_total: u64,
    /// Run-level span fingerprint (determinism oracle).
    pub span_fingerprint: u64,
    /// Attributed crash→convergence critical path, when the run had a
    /// completed recovery.
    pub critical_path: Option<CriticalPath>,
    /// Per-replica consensus health (empty for non-quorum worlds).
    pub quorum: Vec<QuorumHealth>,
    /// Consensus-level aggregates, when the world runs a quorum.
    pub consensus: Option<ConsensusStats>,
    /// Invariant-watchdog outcome, when the world runs one.
    pub watchdog: Option<WatchdogSummary>,
    /// Offered-load accounting, when the run was driven by the
    /// workload engine.
    pub workload: Option<WorkloadStats>,
    /// Per-resource utilization ledger, when the world meters one.
    pub utilization: Option<crate::util::UtilizationReport>,
    /// What-if (virtual speedup) profiler results, when a lens run
    /// produced them.
    pub whatif: Option<crate::util::WhatIfReport>,
    /// Differential diagnosis against a baseline run, when a forensics
    /// pass diffed this run.
    pub forensics: Option<crate::forensics::ForensicsReport>,
}

impl Default for ObsReport {
    fn default() -> Self {
        ObsReport {
            schema: REPORT_SCHEMA_VERSION,
            at_ms: 0.0,
            metrics: MetricsRegistry::default(),
            recovery: Vec::new(),
            shards: Vec::new(),
            medium: None,
            profile: TimeProfile::default(),
            horizon: SimDuration::ZERO,
            latencies: StageLatencies::default(),
            sched: SchedulerProbe::default(),
            queue_depths: None,
            spans_total: 0,
            span_fingerprint: 0,
            critical_path: None,
            quorum: Vec::new(),
            consensus: None,
            watchdog: None,
            workload: None,
            utilization: None,
            whatif: None,
            forensics: None,
        }
    }
}

impl ObsReport {
    /// Renders the report for a terminal.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "obs report v{} @ {:.3}ms  spans={} partial={} fingerprint={:#018x}\n",
            self.schema,
            self.at_ms,
            self.spans_total,
            self.latencies.partial,
            self.span_fingerprint
        ));
        if let Some(m) = &self.medium {
            s.push_str("\nmedium:\n  ");
            s.push_str(&m.render());
            s.push('\n');
        }
        if !self.shards.is_empty() {
            s.push_str("\nshard health:\n");
            for h in &self.shards {
                s.push_str("  ");
                s.push_str(&h.render());
                s.push('\n');
            }
        }
        if !self.recovery.is_empty() {
            s.push_str("\nrecovery lag:\n");
            for r in &self.recovery {
                s.push_str("  ");
                s.push_str(&r.render());
                s.push('\n');
            }
        }
        if let Some(cp) = &self.critical_path {
            s.push_str("\nrecovery critical path:\n  ");
            s.push_str(&cp.render().trim_end().replace('\n', "\n  "));
            s.push('\n');
        }
        if !self.quorum.is_empty() {
            s.push_str("\nquorum health:\n");
            for h in &self.quorum {
                s.push_str("  ");
                s.push_str(&h.render());
                s.push('\n');
            }
        }
        if let Some(c) = &self.consensus {
            s.push_str("\nconsensus:\n  ");
            s.push_str(&c.render());
            s.push('\n');
        }
        if let Some(w) = &self.watchdog {
            s.push_str(&format!(
                "\nwatchdog: checks={} violations={}\n",
                w.checks,
                w.violations.len()
            ));
            for v in &w.violations {
                s.push_str("  ! ");
                s.push_str(v);
                s.push('\n');
            }
        }
        if let Some(wl) = &self.workload {
            s.push_str("\nworkload:\n  ");
            s.push_str(&wl.render());
            s.push('\n');
            for v in &wl.slo_violations {
                s.push_str("  ! ");
                s.push_str(v);
                s.push('\n');
            }
        }
        if let Some(u) = &self.utilization {
            s.push_str("\nresource utilization:\n");
            s.push_str(&u.render());
        }
        if let Some(w) = &self.whatif {
            s.push_str("\nwhat-if profiler:\n");
            s.push_str(&w.render());
        }
        if let Some(f) = &self.forensics {
            s.push_str("\nforensics:\n  ");
            s.push_str(&f.render().trim_end().replace('\n', "\n  "));
            s.push('\n');
        }
        s.push_str("\nstage latencies:\n");
        s.push_str(&self.latencies.render());
        s.push_str("\nscheduler:\n  ");
        s.push_str(&self.sched.render());
        s.push('\n');
        if let Some(h) = &self.queue_depths {
            s.push_str(&format!(
                "\nrecorder queue depth: n={} mean={:.2} p50={:.0} p95={:.0} p99={:.0} max={:.0}\n",
                h.summary().count(),
                h.summary().mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99),
                h.summary().max().unwrap_or(0.0),
            ));
        }
        s.push_str("\nvirtual-time profile:\n");
        s.push_str(&self.profile.render(self.horizon));
        s.push_str("\nmetrics:\n");
        s.push_str(&self.metrics.render_text());
        s
    }

    /// Renders the report as one JSON object.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"schema\":{},", self.schema));
        s.push_str(&format!("\"at_ms\":{},", json_f64(self.at_ms)));
        s.push_str(&format!("\"spans_total\":{},", self.spans_total));
        s.push_str(&format!("\"spans_partial\":{},", self.latencies.partial));
        s.push_str(&format!(
            "\"span_fingerprint\":\"{:#018x}\",",
            self.span_fingerprint
        ));
        if let Some(cp) = &self.critical_path {
            s.push_str(&format!(
                "\"critical_path\":{{\"crash_at_ms\":{},\"converged_at_ms\":{},\"total_ms\":{},\"by_stage\":{{",
                json_f64(cp.crash_at.as_millis_f64()),
                json_f64(cp.converged_at.as_millis_f64()),
                json_f64(cp.total().as_millis_f64())
            ));
            for (i, (cat, d)) in cp.by_stage().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{cat}\":{}", json_f64(d.as_millis_f64())));
            }
            s.push_str("},\"top_segments\":[");
            for (i, seg) in cp.top_segments(3).iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"category\":\"{}\",\"from_ms\":{},\"to_ms\":{},\"label\":\"{}\"}}",
                    seg.category,
                    json_f64(seg.from.as_millis_f64()),
                    json_f64(seg.to.as_millis_f64()),
                    crate::registry::json_escape(&seg.label)
                ));
            }
            s.push_str("]},");
        }
        if let Some(m) = &self.medium {
            s.push_str(&format!(
                "\"medium\":{{\"utilization\":{},\"submitted\":{},\"delivered\":{},\"collisions\":{},\"lost\":{},\"gating_stalls\":{},\"aborted\":{}}},",
                json_f64(m.utilization), m.submitted, m.delivered, m.collisions, m.lost, m.gating_stalls, m.aborted
            ));
        }
        s.push_str("\"shards\":[");
        for (i, h) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"shard\":{},\"live\":{},\"catching_up\":{},\"queue_depth\":{},\"known_processes\":{},\"recoveries_in_flight\":{},\"replay_lag\":{},\"gating_stalls\":{},\"published\":{}}}",
                h.shard, h.live, h.catching_up, h.queue_depth, h.known_processes,
                h.recoveries_in_flight, h.replay_lag, h.gating_stalls, h.published
            ));
        }
        s.push_str("],\"recovery\":[");
        for (i, r) in self.recovery.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"pid\":{},\"recovering\":{},\"messages_behind\":{},\"checkpoint_age_ms\":{},\"suppressed\":{},\"recovery_ms\":{},\"critical_path_ms\":{}}}",
                r.subject, r.recovering, r.messages_behind, json_f64(r.checkpoint_age_ms), r.suppressed,
                json_f64(r.recovery_ms), json_f64(r.critical_path_ms)
            ));
        }
        s.push_str("],\"sched\":{");
        s.push_str(&format!(
            "\"delivered\":{},\"scheduled\":{},\"pending\":{},\"peak_pending\":{}}},",
            self.sched.delivered, self.sched.scheduled, self.sched.pending, self.sched.peak_pending
        ));
        if let Some(h) = &self.queue_depths {
            s.push_str(&format!(
                "\"queue_depths\":{{\"n\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}},",
                h.summary().count(),
                json_f64(h.summary().mean()),
                json_f64(h.quantile(0.5)),
                json_f64(h.quantile(0.95)),
                json_f64(h.quantile(0.99)),
                json_f64(h.summary().max().unwrap_or(0.0)),
            ));
        }
        if !self.quorum.is_empty() {
            s.push_str("\"quorum\":[");
            for (i, h) in self.quorum.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"replica\":{},\"live\":{},\"leader\":{},\"term\":{},\"elections\":{},\"commit_index\":{},\"applied_index\":{},\"replication_lag\":{},\"compacted\":{}}}",
                    h.replica, h.live, h.leader, h.term, h.elections,
                    h.commit_index, h.applied_index, h.replication_lag, h.compacted
                ));
            }
            s.push_str("],");
        }
        if let Some(c) = &self.consensus {
            s.push_str(&format!(
                "\"consensus\":{{\"commits\":{},\"commit_p50_us\":{},\"commit_p99_us\":{},\"replication_lag_p95\":{},\"elections\":{}}},",
                c.commits, c.commit_p50_us, c.commit_p99_us,
                json_f64(c.replication_lag_p95), c.elections
            ));
        }
        if let Some(w) = &self.watchdog {
            s.push_str(&format!(
                "\"watchdog\":{{\"checks\":{},\"violations\":[",
                w.checks
            ));
            for (i, v) in w.violations.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\"", json_escape(v)));
            }
            s.push_str("]},");
        }
        if let Some(wl) = &self.workload {
            s.push_str(&format!(
                "\"workload\":{{\"offered\":{},\"delivered\":{},\"offered_per_sec\":{},\"goodput\":{},\"slo_violations\":[",
                wl.offered,
                wl.delivered,
                json_f64(wl.offered_per_sec),
                json_f64(wl.goodput())
            ));
            for (i, v) in wl.slo_violations.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\"", json_escape(v)));
            }
            s.push_str("]},");
        }
        if let Some(u) = &self.utilization {
            s.push_str(&format!(
                "\"utilization\":{{\"window_ms\":{},\"bin_ms\":{},\"binding\":{},\"resources\":[",
                json_f64(u.window_ms),
                json_f64(u.bin_ms),
                match u.binding() {
                    Some(r) => format!("\"{}\"", json_escape(&r.name)),
                    None => "null".into(),
                }
            ));
            for (i, r) in u.resources.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"kind\":\"{}\",\"name\":\"{}\",\"index\":{},\"peer\":{},\"busy_ms\":{},\"util\":{},\"active_util\":{},\"peak_util\":{},\"mean_queue\":{},\"peak_queue\":{},\"events\":{},\"contention\":{},\"saturated\":{}}}",
                    r.kind.label(),
                    json_escape(&r.name),
                    r.index,
                    r.peer,
                    json_f64(r.busy_ms),
                    json_f64(r.util),
                    json_f64(r.active_util),
                    json_f64(r.peak_util),
                    json_f64(r.mean_queue),
                    r.peak_queue,
                    r.events,
                    r.contention,
                    r.saturated()
                ));
            }
            s.push_str("],\"xval\":[");
            for (i, row) in u.xval.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"resource\":\"{}\",\"law\":\"{}\",\"predicted\":{},\"measured\":{},\"tolerance\":{},\"ok\":{}}}",
                    json_escape(&row.resource),
                    json_escape(&row.law),
                    json_f64(row.predicted),
                    json_f64(row.measured),
                    json_f64(row.tolerance),
                    row.ok
                ));
            }
            s.push_str("]},");
        }
        if let Some(w) = &self.whatif {
            s.push_str(&format!(
                "\"whatif\":{{\"baseline_knee\":{},\"rows\":[",
                w.baseline_knee
            ));
            for (i, row) in w.rows.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"knob\":\"{}\",\"multiplier\":{},\"predicted_knee\":{},\"confirmed_knee\":{},\"binding_after\":\"{}\"}}",
                    json_escape(&row.knob),
                    json_f64(row.multiplier),
                    row.predicted_knee,
                    match row.confirmed_knee {
                        Some(k) => k.to_string(),
                        None => "null".into(),
                    },
                    json_escape(&row.binding_after)
                ));
            }
            s.push_str("]},");
        }
        if let Some(f) = &self.forensics {
            s.push_str(&format!("\"forensics\":{},", f.to_json()));
        }
        s.push_str("\"profile\":{");
        for (i, (name, d)) in self.profile.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{}",
                crate::registry::json_escape(name),
                json_f64(d.as_millis_f64())
            ));
        }
        s.push_str("},\"metrics\":{");
        for (i, (path, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":", crate::registry::json_escape(path)));
            match v {
                MetricValue::Counter(c) => s.push_str(&c.to_string()),
                MetricValue::Gauge(g) => s.push_str(&json_f64(g)),
            }
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_sim::time::SimTime;

    fn sample() -> ObsReport {
        let mut report = ObsReport {
            at_ms: 100.0,
            spans_total: 42,
            span_fingerprint: 0xdead_beef,
            horizon: SimDuration::from_millis(100),
            ..Default::default()
        };
        report.metrics.counter("node/0/kernel/msgs_sent", 7);
        report.metrics.gauge("medium/utilization", 0.125);
        report.shards.push(ShardHealth {
            shard: 0,
            live: true,
            catching_up: false,
            queue_depth: 0,
            known_processes: 3,
            recoveries_in_flight: 0,
            replay_lag: 0,
            gating_stalls: 1,
            published: 10,
        });
        report.recovery.push(RecoveryLag {
            subject: 17,
            recovering: false,
            messages_behind: 2,
            checkpoint_age_ms: 5.5,
            suppressed: 0,
            recovery_ms: 40.0,
            critical_path_ms: 40.0,
        });
        report.latencies.partial = 3;
        report.critical_path = Some(CriticalPath {
            crash_at: SimTime::from_millis(50),
            converged_at: SimTime::from_millis(90),
            segments: vec![
                crate::causal::Segment {
                    category: "replay",
                    kind: None,
                    from: SimTime::from_millis(50),
                    to: SimTime::from_millis(80),
                    label: "crash → replay 0.17#3".into(),
                },
                crate::causal::Segment {
                    category: "commit",
                    kind: None,
                    from: SimTime::from_millis(80),
                    to: SimTime::from_millis(90),
                    label: "replay 0.17#3 → converged".into(),
                },
            ],
        });
        report
            .profile
            .charge("kernel_cpu", SimDuration::from_millis(10));
        report.sched = SchedulerProbe {
            delivered: 90,
            scheduled: 96,
            pending: 6,
            peak_pending: 14,
        };
        let mut depths = LinearHistogram::new(0.0, 1.0, 32);
        for d in [0.0, 1.0, 1.0, 2.0, 5.0] {
            depths.record(d);
        }
        report.queue_depths = Some(depths);
        report.quorum.push(QuorumHealth {
            replica: 1,
            live: true,
            leader: true,
            term: 3,
            elections: 2,
            commit_index: 40,
            applied_index: 40,
            replication_lag: 1,
            compacted: 8,
        });
        report.consensus = Some(ConsensusStats {
            commits: 40,
            commit_p50_us: 900,
            commit_p99_us: 4200,
            replication_lag_p95: 2.0,
            elections: 2,
        });
        report.watchdog = Some(WatchdogSummary {
            checks: 123,
            violations: vec!["commit index went backwards 5 -> 3".into()],
        });
        report.workload = Some(WorkloadStats {
            offered: 200,
            delivered: 180,
            offered_per_sec: 500.0,
            slo_violations: vec!["deliver p99 9000us > 5000us".into()],
        });
        report.utilization = Some(crate::util::UtilizationReport {
            window_ms: 100.0,
            bin_ms: 16.78,
            resources: vec![publishing_sim::ledger::ResourceUsage {
                kind: publishing_sim::ledger::ResourceKind::Transport,
                name: "xport 0->2".into(),
                index: 0,
                peer: 2,
                busy_ms: 95.0,
                window_ms: 100.0,
                util: 0.95,
                active_util: 0.95,
                peak_util: 0.98,
                mean_queue: 7.5,
                peak_queue: 12,
                events: 88,
                contention: 0,
            }],
            xval: vec![crate::util::XvalRow::check(
                "medium",
                "utilization",
                0.50,
                0.52,
                0.20,
            )],
        });
        report.whatif = Some(crate::util::WhatIfReport {
            baseline_knee: 141,
            rows: vec![crate::util::WhatIfRow {
                knob: "sink_recv".into(),
                multiplier: 0.5,
                predicted_knee: 280,
                confirmed_knee: Some(270),
                binding_after: "medium".into(),
            }],
        });
        report.forensics = Some(crate::forensics::ForensicsReport {
            baseline: "BENCH_1".into(),
            findings: vec![crate::forensics::Finding {
                scenario: "steady_state".into(),
                subject: "publish_to_deliver_us_p99".into(),
                prev: 16384.0,
                new: 32768.0,
                suspects: vec![crate::forensics::Suspect {
                    kind: crate::forensics::SuspectKind::Resource,
                    name: "util_cpu_proto_busy_ms".into(),
                    prev: 10.0,
                    new: 20.0,
                    detail: "what-if knob: proto_cpu".into(),
                }],
            }],
        });
        report
    }

    #[test]
    fn text_report_has_all_sections() {
        let text = sample().render_text();
        assert!(text.contains("obs report v6 @ 100.000ms"));
        assert!(text.contains("partial=3"));
        assert!(text.contains("quorum health:"));
        assert!(text.contains("consensus:"));
        assert!(text.contains("commit_p99=4200us"));
        assert!(text.contains("watchdog: checks=123 violations=1"));
        assert!(text.contains("! commit index went backwards"));
        assert!(text.contains("workload:"));
        assert!(text.contains("offered=200 (500.0/s) delivered=180 goodput=90.0% slo_violations=1"));
        assert!(text.contains("! deliver p99 9000us > 5000us"));
        assert!(text.contains("resource utilization:"));
        assert!(text.contains("binding=xport 0->2"));
        assert!(text.contains("<-- saturated"));
        assert!(text.contains("queueing cross-validation:"));
        assert!(text.contains("what-if profiler:"));
        assert!(text.contains("baseline_knee=141"));
        assert!(text.contains("sink_recv x0.50: predicted_knee=280 confirmed=270"));
        assert!(text.contains("forensics:"));
        assert!(text.contains("diff vs BENCH_1: 1 finding(s)"));
        assert!(text.contains("#1 [resource] util_cpu_proto_busy_ms"));
        assert!(text.contains("shard health:"));
        assert!(text.contains("recovery lag:"));
        assert!(text.contains("recovered_in=40.000ms"));
        assert!(text.contains("recovery critical path:"));
        assert!(text.contains("replay"));
        assert!(text.contains("stage latencies:"));
        assert!(text.contains("scheduler:"));
        assert!(text.contains("peak_pending=14"));
        assert!(text.contains("recorder queue depth: n=5"));
        assert!(text.contains("virtual-time profile:"));
        assert!(text.contains("node/0/kernel/msgs_sent = 7"));
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let json = sample().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema\":6"));
        assert!(json.contains("\"forensics\":{\"baseline\":\"BENCH_1\",\"findings\":[{"));
        assert!(json.contains("\"kind\":\"resource\",\"name\":\"util_cpu_proto_busy_ms\""));
        assert!(json.contains("\"utilization\":{\"window_ms\":100.0,"));
        assert!(json.contains("\"binding\":\"xport 0->2\""));
        assert!(json.contains("\"kind\":\"transport\",\"name\":\"xport 0->2\""));
        assert!(json.contains("\"saturated\":true"));
        assert!(json.contains("\"xval\":[{\"resource\":\"medium\",\"law\":\"utilization\""));
        assert!(json.contains("\"whatif\":{\"baseline_knee\":141,"));
        assert!(json.contains("\"confirmed_knee\":270"));
        assert!(json.contains("\"workload\":{\"offered\":200,\"delivered\":180,"));
        assert!(json.contains("\"slo_violations\":[\"deliver p99 9000us > 5000us\"]"));
        assert!(json.contains("\"quorum\":[{\"replica\":1,\"live\":true,\"leader\":true"));
        assert!(json.contains("\"consensus\":{\"commits\":40,"));
        assert!(json.contains("\"watchdog\":{\"checks\":123,\"violations\":["));
        assert!(json.contains("\"spans_total\":42"));
        assert!(json.contains("\"spans_partial\":3"));
        assert!(json.contains("\"critical_path\":{\"crash_at_ms\":50.0,"));
        assert!(json.contains("\"by_stage\":{"));
        assert!(json.contains("\"top_segments\":["));
        assert!(json.contains("\"recovery_ms\":40.0"));
        assert!(json.contains("\"shards\":[{\"shard\":0,\"live\":true"));
        assert!(json.contains("\"replay_lag\":0"));
        assert!(json.contains("\"recovery\":[{\"pid\":17"));
        assert!(json.contains(
            "\"sched\":{\"delivered\":90,\"scheduled\":96,\"pending\":6,\"peak_pending\":14}"
        ));
        assert!(json.contains("\"queue_depths\":{\"n\":5,"));
        assert!(json.contains("\"node/0/kernel/msgs_sent\":7"));
        // Balanced braces/brackets (no serde here, so check by counting).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
