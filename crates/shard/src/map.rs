//! Rendezvous (highest-random-weight) shard map.
//!
//! Each destination `ProcessId` is owned by the shard with the highest
//! deterministic hash score for that pid. HRW hashing gives the minimal-
//! disruption property the rebalance protocol depends on: adding or
//! removing one shard only moves the pids whose top-ranked shard was the
//! one that changed — on average `|P|/N` of them — while every other
//! pid keeps its owner. The same ranking, restricted to live shards,
//! yields failover (the dead shard's pids fall to their next-ranked
//! shard) and the capture/replication set (the top-R live shards record
//! a pid's traffic so a backup is always complete).

use publishing_demos::ids::ProcessId;
use std::collections::BTreeMap;

/// Identifies one recorder shard in the tier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// SplitMix64 finalizer — a strong deterministic mix for HRW scores.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// HRW score of `shard` for `pid`; higher wins.
fn score(shard: ShardId, pid: ProcessId) -> u64 {
    mix(pid.as_u64() ^ mix(shard.0 as u64))
}

/// The shard membership + liveness view, versioned by an epoch that the
/// rebalance protocol publishes at cutover.
#[derive(Clone, Debug, Default)]
pub struct ShardMap {
    shards: BTreeMap<ShardId, bool>, // id → live
    epoch: u64,
}

impl ShardMap {
    /// A map of shards `0..n`, all live.
    pub fn new(n: u32) -> Self {
        let mut m = ShardMap::default();
        for i in 0..n {
            m.shards.insert(ShardId(i), true);
        }
        m
    }

    /// The membership epoch; bumped by every add/remove/liveness change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of member shards (live or not).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// All member shards, in id order.
    pub fn members(&self) -> Vec<ShardId> {
        self.shards.keys().copied().collect()
    }

    /// All live shards, in id order.
    pub fn live(&self) -> Vec<ShardId> {
        self.shards
            .iter()
            .filter(|(_, &l)| l)
            .map(|(&s, _)| s)
            .collect()
    }

    pub fn contains(&self, shard: ShardId) -> bool {
        self.shards.contains_key(&shard)
    }

    pub fn is_live(&self, shard: ShardId) -> bool {
        self.shards.get(&shard).copied().unwrap_or(false)
    }

    /// Adds a (live) shard. Returns `false` if it was already a member.
    pub fn add_shard(&mut self, shard: ShardId) -> bool {
        let added = self.shards.insert(shard, true).is_none();
        if added {
            self.epoch += 1;
        }
        added
    }

    /// Removes a shard from membership entirely.
    pub fn remove_shard(&mut self, shard: ShardId) -> bool {
        let removed = self.shards.remove(&shard).is_some();
        if removed {
            self.epoch += 1;
        }
        removed
    }

    /// Marks a shard dead (still a member; its pids fail over) or live.
    pub fn set_live(&mut self, shard: ShardId, live: bool) {
        if let Some(l) = self.shards.get_mut(&shard) {
            if *l != live {
                *l = live;
                self.epoch += 1;
            }
        }
    }

    /// Member shards ranked by HRW score for `pid`, best first.
    /// Deterministic for a given membership regardless of liveness.
    pub fn ranked(&self, pid: ProcessId) -> Vec<ShardId> {
        let mut v: Vec<ShardId> = self.shards.keys().copied().collect();
        // Ties are impossible in practice (64-bit scores), but break
        // them by id so the order is total either way.
        v.sort_by_key(|&s| (std::cmp::Reverse(score(s, pid)), s));
        v
    }

    /// The owning shard of `pid` — top-ranked member, alive or not.
    /// This is the *log placement* function; liveness-aware questions
    /// go through [`ShardMap::responsible`] / [`ShardMap::capture_set`].
    pub fn owner(&self, pid: ProcessId) -> Option<ShardId> {
        self.shards
            .keys()
            .copied()
            .max_by_key(|&s| (score(s, pid), std::cmp::Reverse(s)))
    }

    /// The shard answering for `pid` right now: the top-ranked *live*
    /// shard (the owner, unless it is dead and a backup stands in).
    pub fn responsible(&self, pid: ProcessId) -> Option<ShardId> {
        self.shards
            .iter()
            .filter(|(_, &l)| l)
            .map(|(&s, _)| s)
            .max_by_key(|&s| (score(s, pid), std::cmp::Reverse(s)))
    }

    /// The top-`r` live shards for `pid`: every shard that must capture
    /// (record + ack) the pid's traffic so that `r`-way replication
    /// holds. With fewer than `r` live shards, all of them.
    pub fn capture_set(&self, pid: ProcessId, r: usize) -> Vec<ShardId> {
        let mut live: Vec<ShardId> = self.live();
        live.sort_by_key(|&s| (std::cmp::Reverse(score(s, pid)), s));
        live.truncate(r.max(1));
        live
    }

    /// The capture set as `shard` itself evaluates it: the top-`r` of
    /// the ranking over live shards *plus `shard`*. For a live shard
    /// this equals [`ShardMap::capture_set`]; for a shard marked dead it
    /// answers "would I capture this pid if I were counted?", which is
    /// what a restarted-but-not-yet-readmitted shard needs so it keeps
    /// recording its pids (and receiving their checkpoints) while it
    /// catches up.
    pub fn capture_set_for(&self, shard: ShardId, pid: ProcessId, r: usize) -> Vec<ShardId> {
        let mut v: Vec<ShardId> = self.live();
        if self.contains(shard) && !v.contains(&shard) {
            v.push(shard);
        }
        v.sort_by_key(|&s| (std::cmp::Reverse(score(s, pid)), s));
        v.truncate(r.max(1));
        v
    }

    /// The pids from `pids` whose owner is `shard`.
    pub fn owned_by<'a>(
        &'a self,
        shard: ShardId,
        pids: impl IntoIterator<Item = ProcessId> + 'a,
    ) -> impl Iterator<Item = ProcessId> + 'a {
        pids.into_iter()
            .filter(move |&p| self.owner(p) == Some(shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(n: u64) -> Vec<ProcessId> {
        (0..n)
            .map(|i| ProcessId::new((i % 7) as u32, (i / 7) as u32 + 1))
            .collect()
    }

    #[test]
    fn owner_is_deterministic_and_total() {
        let m = ShardMap::new(4);
        for p in pids(200) {
            let a = m.owner(p).unwrap();
            let b = m.owner(p).unwrap();
            assert_eq!(a, b);
            assert!(m.contains(a));
            assert_eq!(m.ranked(p)[0], a);
        }
    }

    #[test]
    fn adding_a_shard_moves_only_pids_claimed_by_it() {
        let before = ShardMap::new(4);
        let mut after = before.clone();
        after.add_shard(ShardId(4));
        for p in pids(500) {
            let old = before.owner(p).unwrap();
            let new = after.owner(p).unwrap();
            assert!(
                new == old || new == ShardId(4),
                "{p:?} moved {old:?}→{new:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_moves_only_its_pids() {
        let before = ShardMap::new(5);
        let mut after = before.clone();
        after.remove_shard(ShardId(2));
        for p in pids(500) {
            let old = before.owner(p).unwrap();
            let new = after.owner(p).unwrap();
            if old == ShardId(2) {
                assert_ne!(new, ShardId(2));
            } else {
                assert_eq!(new, old);
            }
        }
    }

    #[test]
    fn dead_shard_fails_over_to_next_ranked() {
        let mut m = ShardMap::new(3);
        for p in pids(100) {
            let ranked = m.ranked(p);
            m.set_live(ranked[0], false);
            assert_eq!(m.responsible(p), Some(ranked[1]));
            m.set_live(ranked[0], true);
        }
    }

    #[test]
    fn capture_set_is_prefix_of_live_ranking() {
        let mut m = ShardMap::new(4);
        m.set_live(ShardId(1), false);
        for p in pids(100) {
            let caps = m.capture_set(p, 2);
            assert_eq!(caps.len(), 2);
            assert!(!caps.contains(&ShardId(1)));
            assert_eq!(caps[0], m.responsible(p).unwrap());
        }
    }

    #[test]
    fn epoch_tracks_membership_changes() {
        let mut m = ShardMap::new(2);
        let e0 = m.epoch();
        assert!(m.add_shard(ShardId(9)));
        assert!(!m.add_shard(ShardId(9)));
        m.set_live(ShardId(9), false);
        m.set_live(ShardId(9), false); // no-op
        assert!(m.remove_shard(ShardId(9)));
        assert_eq!(m.epoch(), e0 + 3);
    }
}
