//! Deterministic discrete-event simulation substrate for the PUBLISHING
//! reproduction.
//!
//! This crate provides the virtual-time machinery every other crate in the
//! workspace builds on:
//!
//! - [`time`]: integer-nanosecond virtual instants and durations;
//! - [`event`]: a totally ordered, cancellable event queue with a clock;
//! - [`rng`]: self-contained deterministic PRNG and the distributions the
//!   evaluation workloads need;
//! - [`codec`]: an explicit binary codec for checkpoints and wire messages;
//! - [`stats`]: counters, summaries, histograms, and the time-weighted
//!   utilization integrator behind Figure 5.5;
//! - [`ledger`]: typed-resource busy timelines, queue-occupancy gauges,
//!   and the binding-resource ranking behind the capacity lens;
//! - [`trace`]: a bounded trace ring whose running fingerprint doubles as
//!   the determinism oracle in the test suite;
//! - [`fault`]: crash schedules and message-fault probabilities.
//!
//! Nothing here knows about networks, kernels, or recorders; those live in
//! `publishing-net`, `publishing-demos`, and `publishing-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod fault;
pub mod ledger;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use codec::{CodecError, Decode, Decoder, Encode, Encoder};
pub use event::{EventId, Scheduler};
pub use fault::{Crash, CrashTarget, FaultPlan};
pub use ledger::{LevelGauge, ResourceKind, ResourceUsage, Timeline};
pub use rng::DetRng;
pub use stats::{Counter, LinearHistogram, LogHistogram, Summary, Utilization};
pub use time::{SimDuration, SimTime};
pub use trace::{Category, Trace, TraceEvent};
