//! Deterministic event queue and scheduler.
//!
//! Every dynamic behaviour in the reproduction — frame delivery, protocol
//! timers, disk completions, watchdog timeouts, injected crashes — is an
//! event in one totally ordered queue. Determinism demands a *total* order:
//! events at the same instant are delivered in the order they were
//! scheduled (FIFO by a monotone sequence number), never in heap order.

use crate::time::{SimDuration, SimTime};
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Opaque handle identifying a scheduled event, usable to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// The standard-library heap is a max-heap; invert the ordering so the
// earliest (time, seq) pair pops first.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A pre-computed sequence of instants at which an external fault
/// injector wants control, injectable into a [`Scheduler`].
///
/// The chaos engine computes a whole schedule of fault times up front and
/// installs it here; [`Scheduler::pop_or_fault`] then yields a
/// [`Tick::Fault`] the moment the clock would otherwise run past a fault
/// instant, letting the injector crash components *between* events with
/// the same determinism as the events themselves. A fault due at `t`
/// fires before any event at `t` or later.
#[derive(Debug, Clone, Default)]
pub struct FaultClock {
    /// Fault instants, ascending; `next` indexes the first unfired one.
    instants: Vec<SimTime>,
    next: usize,
}

impl FaultClock {
    /// Builds a clock from fault instants (sorted internally).
    pub fn new(mut instants: Vec<SimTime>) -> Self {
        instants.sort();
        FaultClock { instants, next: 0 }
    }

    /// Returns the next unfired fault instant, if any.
    pub fn peek(&self) -> Option<SimTime> {
        self.instants.get(self.next).copied()
    }

    /// Number of fault instants not yet fired.
    pub fn remaining(&self) -> usize {
        self.instants.len() - self.next
    }

    fn take(&mut self) -> Option<SimTime> {
        let t = self.peek()?;
        self.next += 1;
        Some(t)
    }
}

/// One step of a fault-aware run: either a normal event or a fault
/// instant reached (see [`Scheduler::pop_or_fault`]).
#[derive(Debug, PartialEq, Eq)]
pub enum Tick<E> {
    /// A scheduled event fired at the given time.
    Event(SimTime, E),
    /// A fault instant came due; the clock now stands at this time and
    /// the caller should apply its injection before resuming.
    Fault(SimTime),
}

/// A discrete-event scheduler: a virtual clock plus a cancellable,
/// deterministically ordered pending-event queue.
///
/// `E` is the world-specific event payload type. The scheduler never
/// inspects payloads; it only orders and delivers them.
///
/// # Examples
///
/// ```
/// use publishing_sim::event::Scheduler;
/// use publishing_sim::time::SimDuration;
///
/// let mut sched: Scheduler<&str> = Scheduler::new();
/// sched.schedule_after(SimDuration::from_millis(2), "second");
/// sched.schedule_after(SimDuration::from_millis(1), "first");
/// let (t1, e1) = sched.pop().unwrap();
/// assert_eq!(e1, "first");
/// assert_eq!(t1.as_millis_f64(), 1.0);
/// assert_eq!(sched.pop().unwrap().1, "second");
/// assert!(sched.pop().is_none());
/// ```
pub struct Scheduler<E> {
    now: SimTime,
    heap: BinaryHeap<Entry<E>>,
    /// Seqs scheduled and not yet fired or cancelled.
    live: HashSet<u64>,
    /// Seqs cancelled but still physically present in the heap.
    cancelled: HashSet<u64>,
    next_seq: u64,
    delivered: u64,
    peak_pending: usize,
    faults: FaultClock,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            delivered: 0,
            peak_pending: 0,
            faults: FaultClock::default(),
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Returns the number of events scheduled but not yet fired or
    /// cancelled.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Returns the total number of events ever scheduled (fired,
    /// cancelled, or still pending).
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Returns the largest number of simultaneously pending events seen
    /// over the whole run — the event queue's high-water mark.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// `at` may equal the current time (the event fires on the next pop)
    /// but must not precede it.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time; scheduling
    /// into the past would silently reorder causality.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.peak_pending = self.peak_pending.max(self.live.len());
        self.heap.push(Entry { at, seq, payload });
        EventId(seq)
    }

    /// Schedules `payload` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) -> EventId {
        let at = self.now + after;
        self.schedule_at(at, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (and will now never
    /// fire), `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id.0) {
            return false;
        }
        // The entry stays in the heap as a tombstone; `pop`/`peek_time`
        // reap it lazily.
        self.cancelled.insert(id.0);
        true
    }

    /// Removes and returns the next event as `(fire_time, payload)`,
    /// advancing the clock to the fire time. Returns `None` when the queue
    /// is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live.remove(&entry.seq);
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.delivered += 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Returns the fire time of the next (non-cancelled) event without
    /// delivering it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Installs (or replaces) the fault clock consulted by
    /// [`pop_or_fault`](Self::pop_or_fault). Instants already in the past
    /// fire immediately on the next `pop_or_fault` without rewinding the
    /// clock.
    pub fn set_fault_clock(&mut self, clock: FaultClock) {
        self.faults = clock;
    }

    /// Returns the next unfired fault instant, if a fault clock with
    /// remaining instants is installed.
    pub fn next_fault(&self) -> Option<SimTime> {
        self.faults.peek()
    }

    /// Like [`pop`](Self::pop), but yields [`Tick::Fault`] instead of an
    /// event when the next fault instant is due at or before the next
    /// event's time (faults win ties — a crash at `t` lands before the
    /// frame that would have been delivered at `t`). The clock advances to
    /// the fault instant, clamped so it never rewinds. Returns `None` only
    /// when both the event queue and the fault clock are exhausted.
    pub fn pop_or_fault(&mut self) -> Option<Tick<E>> {
        let fault_due = match (self.faults.peek(), self.peek_time()) {
            (Some(f), Some(e)) => f <= e,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if fault_due {
            let t = self.faults.take().expect("peeked");
            self.now = self.now.max(t);
            return Some(Tick::Fault(self.now));
        }
        self.pop().map(|(t, e)| Tick::Event(t, e))
    }

    /// Advances the clock to `at` without delivering events.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current time or if an undelivered event
    /// is pending before `at` (skipping it would violate causality).
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot rewind the clock");
        if let Some(next) = self.peek_time() {
            assert!(next >= at, "cannot skip pending event at {next}");
        }
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            s.schedule_at(t, i);
        }
        for i in 0..100 {
            assert_eq!(s.pop().unwrap().1, i);
        }
    }

    #[test]
    fn time_ordering_dominates_insertion_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_millis(10), "late");
        s.schedule_at(SimTime::from_millis(5), "early");
        assert_eq!(s.pop().unwrap().1, "early");
        assert_eq!(s.pop().unwrap().1, "late");
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_after(SimDuration::from_micros(7), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_micros(7));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.schedule_after(SimDuration::from_millis(1), 1);
        let _b = s.schedule_after(SimDuration::from_millis(2), 2);
        assert!(s.cancel(a));
        assert_eq!(s.pop().unwrap().1, 2);
        assert!(s.pop().is_none());
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(!s.cancel(EventId(42)));
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.schedule_after(SimDuration::from_millis(1), 1);
        assert!(s.cancel(a));
        assert!(!s.cancel(a));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.schedule_after(SimDuration::from_millis(1), 1);
        s.schedule_after(SimDuration::from_millis(3), 2);
        s.cancel(a);
        assert_eq!(s.peek_time(), Some(SimTime::from_millis(3)));
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.schedule_after(SimDuration::from_millis(1), 1);
        s.schedule_after(SimDuration::from_millis(2), 2);
        assert_eq!(s.pending(), 2);
        s.cancel(a);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_after(SimDuration::from_millis(5), ());
        s.pop();
        s.schedule_at(SimTime::from_millis(1), ());
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.advance_to(SimTime::from_secs(1));
        assert_eq!(s.now(), SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "cannot skip pending event")]
    fn advance_past_pending_event_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_after(SimDuration::from_millis(1), ());
        s.advance_to(SimTime::from_secs(1));
    }

    #[test]
    fn fault_fires_before_later_event() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_millis(10), "ev");
        s.set_fault_clock(FaultClock::new(vec![SimTime::from_millis(5)]));
        assert_eq!(s.pop_or_fault(), Some(Tick::Fault(SimTime::from_millis(5))));
        assert_eq!(s.now(), SimTime::from_millis(5));
        assert_eq!(
            s.pop_or_fault(),
            Some(Tick::Event(SimTime::from_millis(10), "ev"))
        );
        assert!(s.pop_or_fault().is_none());
    }

    #[test]
    fn fault_wins_tie_with_same_time_event() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_millis(3), 7);
        s.set_fault_clock(FaultClock::new(vec![SimTime::from_millis(3)]));
        assert_eq!(s.pop_or_fault(), Some(Tick::Fault(SimTime::from_millis(3))));
        assert_eq!(
            s.pop_or_fault(),
            Some(Tick::Event(SimTime::from_millis(3), 7))
        );
    }

    #[test]
    fn fault_clock_sorted_and_past_instants_clamped() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_millis(4), 1);
        s.pop();
        // Installed after the clock already passed 4ms; the 1ms instant
        // fires at the current time rather than rewinding.
        s.set_fault_clock(FaultClock::new(vec![
            SimTime::from_millis(9),
            SimTime::from_millis(1),
        ]));
        assert_eq!(s.next_fault(), Some(SimTime::from_millis(1)));
        assert_eq!(s.pop_or_fault(), Some(Tick::Fault(SimTime::from_millis(4))));
        assert_eq!(s.pop_or_fault(), Some(Tick::Fault(SimTime::from_millis(9))));
        assert!(s.pop_or_fault().is_none());
    }

    #[test]
    fn pop_ignores_fault_clock() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_millis(10), 1);
        s.set_fault_clock(FaultClock::new(vec![SimTime::from_millis(5)]));
        // Plain pop is the legacy path: no fault interleaving.
        assert_eq!(s.pop(), Some((SimTime::from_millis(10), 1)));
        assert_eq!(s.faults.remaining(), 1);
    }

    #[test]
    fn delivered_counts_only_fired_events() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.schedule_after(SimDuration::from_millis(1), 1);
        s.schedule_after(SimDuration::from_millis(2), 2);
        s.cancel(a);
        s.pop();
        assert_eq!(s.delivered(), 1);
    }

    #[test]
    fn peak_pending_is_a_high_water_mark() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert_eq!(s.peak_pending(), 0);
        s.schedule_after(SimDuration::from_millis(1), 1);
        s.schedule_after(SimDuration::from_millis(2), 2);
        s.schedule_after(SimDuration::from_millis(3), 3);
        s.pop();
        s.pop();
        s.schedule_after(SimDuration::from_millis(4), 4);
        assert_eq!(s.peak_pending(), 3, "peak holds after the queue drains");
        assert_eq!(s.scheduled(), 4);
    }
}
