//! The causal explorer: a happens-before DAG over the published log.
//!
//! The paper's recovery argument is causal — a replayed process behaves
//! identically because every message it reads is re-fed in original
//! receive order — so debugging the system means asking causal
//! questions: *why* was this message delivered when it was, *where* did
//! a recovery's time actually go, and *which event first diverged*
//! between an original run and its replay. This module builds the
//! happens-before graph from the same [`SpanLog`]s every component
//! already records into, then answers those three questions:
//!
//! - [`CausalGraph::explain`]: the full causal ancestor chain behind one
//!   message's delivery, with virtual-time slack per hop;
//! - [`CausalGraph::critical_path`]: the binding chain of events from a
//!   crash instant to convergence, each segment attributed to a recovery
//!   stage (checkpoint load, replay, suppression, re-sequencing);
//! - [`divergence_diff`]: the first event where two runs' canonical
//!   event streams disagree, with the divergent event's causal cone.
//!
//! Determinism: node order is the total order `(at, log, seq)` — virtual
//! time, then the caller's (stable) log order, then the log's own
//! monotone emission number — and edges are only ever added *forward* in
//! that order, so the graph is acyclic by construction and two runs of
//! the same seed produce byte-identical DOT and flow-event output.

use crate::registry::MetricsRegistry;
use crate::span::{MsgKey, SpanEvent, SpanLog, Stage};
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Why one event happens-before another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EdgeKind {
    /// Publish at the sender → capture at the recorder (frame on the
    /// medium).
    SendCapture = 0,
    /// Capture → arrival sequencing inside the recorder (the message
    /// becomes *published*).
    CaptureSequence = 1,
    /// Sequencing → a read of the message at its destination.
    SequenceDeliver = 2,
    /// Adjacent events concerning the same subject process in one
    /// component log (that component's program order).
    ProgramOrder = 3,
    /// A sender's consecutive publishes (send order).
    SenderOrder = 4,
    /// Sequencing → a replay of the message from the published log.
    SequenceReplay = 5,
    /// The original pre-crash read → its replay at the same read index.
    DeliverReplay = 6,
    /// Publish → the §4.7 suppression of its regenerated resend.
    PublishSuppress = 7,
    /// A durable checkpoint → the first replays it set the floor for.
    CheckpointFloor = 8,
    /// The latest replay *into* a recovering process → a suppression of
    /// that process's regenerated resend (the replay drove the sender to
    /// regenerate the message the watermark then cut off).
    ReplaySuppress = 9,
    /// A quorum election win → the sequencing/replay work the new leader
    /// then performed: everything the group sequences after a failover
    /// waited on the election that restored a leader.
    ElectGate = 10,
}

impl EdgeKind {
    /// Stable short name, used in rendered chains and DOT output.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::SendCapture => "send→capture",
            EdgeKind::CaptureSequence => "capture→sequence",
            EdgeKind::SequenceDeliver => "sequence→deliver",
            EdgeKind::ProgramOrder => "program-order",
            EdgeKind::SenderOrder => "sender-order",
            EdgeKind::SequenceReplay => "sequence→replay",
            EdgeKind::DeliverReplay => "deliver→replay",
            EdgeKind::PublishSuppress => "publish→suppress",
            EdgeKind::CheckpointFloor => "checkpoint-floor",
            EdgeKind::ReplaySuppress => "replay→suppress",
            EdgeKind::ElectGate => "elect-gate",
        }
    }

    fn dot_color(self) -> &'static str {
        match self {
            EdgeKind::SendCapture => "black",
            EdgeKind::CaptureSequence => "blue",
            EdgeKind::SequenceDeliver => "forestgreen",
            EdgeKind::ProgramOrder => "gray60",
            EdgeKind::SenderOrder => "gray30",
            EdgeKind::SequenceReplay => "darkorange",
            EdgeKind::DeliverReplay => "red",
            EdgeKind::PublishSuppress => "purple",
            EdgeKind::CheckpointFloor => "brown",
            EdgeKind::ReplaySuppress => "crimson",
            EdgeKind::ElectGate => "goldenrod",
        }
    }
}

/// One happens-before edge between two graph nodes (indices into
/// [`CausalGraph::events`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source node index (always `< to`).
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Why the source happens-before the target.
    pub kind: EdgeKind,
}

/// The happens-before DAG over every retained lifecycle event.
#[derive(Debug, Clone, Default)]
pub struct CausalGraph {
    nodes: Vec<SpanEvent>,
    log_of: Vec<u32>,
    edges: Vec<Edge>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl CausalGraph {
    /// Builds the graph from component span logs. Callers must pass the
    /// logs in a stable order (node id, then shard index) — the same
    /// discipline [`crate::span::combined_fingerprint`] requires — so
    /// node order, DOT output, and query answers are deterministic.
    pub fn build<'a>(logs: impl IntoIterator<Item = &'a SpanLog>) -> CausalGraph {
        let lists: Vec<Vec<SpanEvent>> = logs.into_iter().map(|l| l.events().collect()).collect();
        CausalGraph::from_event_lists(&lists)
    }

    /// Builds the graph from per-log event lists (one list per component
    /// log, each in recording order). This is the seam the chaos engine
    /// uses: a baseline's events can be captured as plain vectors and
    /// diffed against a later run without holding the original world.
    pub fn from_event_lists(lists: &[Vec<SpanEvent>]) -> CausalGraph {
        // Total node order: virtual time, then log, then the log's own
        // monotone seq. Edges are only added forward in this order, so
        // acyclicity holds by construction and ambiguous same-instant
        // cross-log orderings are conservatively dropped.
        let mut tagged: Vec<(u32, SpanEvent)> = Vec::new();
        for (li, list) in lists.iter().enumerate() {
            for e in list {
                tagged.push((li as u32, *e));
            }
        }
        tagged.sort_by_key(|(li, e)| (e.at, *li, e.seq));
        let nodes: Vec<SpanEvent> = tagged.iter().map(|(_, e)| *e).collect();
        let log_of: Vec<u32> = tagged.iter().map(|(li, _)| *li).collect();

        let mut g = CausalGraph {
            preds: vec![Vec::new(); nodes.len()],
            succs: vec![Vec::new(); nodes.len()],
            nodes,
            log_of,
            edges: Vec::new(),
        };

        // Group node indices (already in node order) by message key, by
        // subject-within-log, and publishes by sender.
        let mut by_key: BTreeMap<MsgKey, Vec<usize>> = BTreeMap::new();
        let mut by_log_subject: BTreeMap<(u32, u64), Vec<usize>> = BTreeMap::new();
        let mut publishes_by_sender: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, e) in g.nodes.iter().enumerate() {
            by_key.entry(e.key).or_default().push(i);
            by_log_subject
                .entry((g.log_of[i], e.subject))
                .or_default()
                .push(i);
            if e.stage == Stage::Publish {
                publishes_by_sender.entry(e.key.sender).or_default().push(i);
            }
        }

        let mut seen: BTreeSet<(usize, usize, u8)> = BTreeSet::new();
        let mut add = |g: &mut CausalGraph, from: usize, to: usize, kind: EdgeKind| {
            if from >= to || !seen.insert((from, to, kind as u8)) {
                return;
            }
            let ei = g.edges.len();
            g.edges.push(Edge { from, to, kind });
            g.preds[to].push(ei);
            g.succs[from].push(ei);
        };

        // Per-component program order, per subject process.
        for idxs in by_log_subject.values() {
            for w in idxs.windows(2) {
                add(&mut g, w[0], w[1], EdgeKind::ProgramOrder);
            }
        }

        // A sender's send order over its publishes.
        for idxs in publishes_by_sender.values_mut() {
            idxs.sort_by_key(|&i| (g.nodes[i].key.seq, i));
            for w in idxs.windows(2) {
                add(&mut g, w[0], w[1], EdgeKind::SenderOrder);
            }
        }

        // Per-message lifecycle edges.
        for idxs in by_key.values() {
            let first_of = |stage: Stage| idxs.iter().copied().find(|&i| g.nodes[i].stage == stage);
            let publish = first_of(Stage::Publish);
            let capture = first_of(Stage::Capture);
            let sequence = first_of(Stage::Sequence);
            if let (Some(p), Some(c)) = (publish, capture) {
                add(&mut g, p, c, EdgeKind::SendCapture);
            }
            if let (Some(c), Some(s)) = (capture, sequence) {
                add(&mut g, c, s, EdgeKind::CaptureSequence);
            }
            for &i in idxs {
                match g.nodes[i].stage {
                    Stage::Deliver => {
                        if let Some(s) = sequence {
                            add(&mut g, s, i, EdgeKind::SequenceDeliver);
                        }
                    }
                    Stage::Replay => {
                        if let Some(s) = sequence {
                            add(&mut g, s, i, EdgeKind::SequenceReplay);
                        }
                        // The pre-crash read the replay reproduces: the
                        // first delivery of this message at the same read
                        // index to the same subject.
                        let (subject, read_idx) = (g.nodes[i].subject, g.nodes[i].aux);
                        if let Some(d) = idxs.iter().copied().find(|&j| {
                            let n = &g.nodes[j];
                            n.stage == Stage::Deliver && n.subject == subject && n.aux == read_idx
                        }) {
                            add(&mut g, d, i, EdgeKind::DeliverReplay);
                        }
                    }
                    Stage::Suppress => {
                        if let Some(p) = publish {
                            add(&mut g, p, i, EdgeKind::PublishSuppress);
                        }
                    }
                    _ => {}
                }
            }
        }

        // Checkpoint floors: the latest durable checkpoint for a subject
        // happens-before each later replay of that subject (it decided
        // where the replay starts).
        let mut by_subject: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, e) in g.nodes.iter().enumerate() {
            if matches!(e.stage, Stage::Checkpoint | Stage::Replay) {
                by_subject.entry(e.subject).or_default().push(i);
            }
        }
        for idxs in by_subject.values() {
            let mut floor: Option<usize> = None;
            for &i in idxs {
                match g.nodes[i].stage {
                    Stage::Checkpoint => floor = Some(i),
                    Stage::Replay => {
                        if let Some(c) = floor {
                            add(&mut g, c, i, EdgeKind::CheckpointFloor);
                        }
                    }
                    _ => {}
                }
            }
        }

        // Election gates: after a quorum failover, every arrival the new
        // leader sequences waited on the election that restored a leader
        // in that replica's log, and every replay a kernel receives
        // waited on the group's current leader existing at all (recovery
        // is leader-driven), so link the latest same-log election to
        // subsequent sequencing and the latest election anywhere to
        // subsequent replays. The critical path can then attribute
        // post-failover recovery time to the leader change.
        let mut last_elect: BTreeMap<u32, usize> = BTreeMap::new();
        let mut last_elect_any: Option<usize> = None;
        for i in 0..g.nodes.len() {
            match g.nodes[i].stage {
                Stage::Elect => {
                    last_elect.insert(g.log_of[i], i);
                    last_elect_any = Some(i);
                }
                Stage::Sequence => {
                    if let Some(&e) = last_elect.get(&g.log_of[i]) {
                        add(&mut g, e, i, EdgeKind::ElectGate);
                    }
                }
                Stage::Replay => {
                    if let Some(e) = last_elect_any {
                        add(&mut g, e, i, EdgeKind::ElectGate);
                    }
                }
                _ => {}
            }
        }

        // A recovering process's suppressions are driven by its replay:
        // the replayed reads made the process regenerate its sends, and
        // the §4.7 watermark cut off the resend. Link the latest replay
        // *into* the suppressed message's sender.
        let mut replays_by_reader: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, e) in g.nodes.iter().enumerate() {
            if e.stage == Stage::Replay {
                replays_by_reader.entry(e.subject).or_default().push(i);
            }
        }
        for i in 0..g.nodes.len() {
            if g.nodes[i].stage != Stage::Suppress {
                continue;
            }
            if let Some(replays) = replays_by_reader.get(&g.nodes[i].key.sender) {
                let before = replays.partition_point(|&r| r < i);
                if before > 0 {
                    let r = replays[before - 1];
                    add(&mut g, r, i, EdgeKind::ReplaySuppress);
                }
            }
        }

        g
    }

    /// The events, in node order (the indices every query speaks in).
    pub fn events(&self) -> &[SpanEvent] {
        &self.nodes
    }

    /// The happens-before edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The (caller-order) log index a node was recorded by.
    pub fn log_of(&self, node: usize) -> u32 {
        self.log_of[node]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no events.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Checks the structural invariants: every edge points forward in
    /// node order, node timestamps are non-decreasing along every edge,
    /// and the graph is acyclic (implied by the first check, verified
    /// independently by a Kahn pass).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, described.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.edges.iter().enumerate() {
            if e.from >= e.to {
                return Err(format!("edge {i} not forward: {} -> {}", e.from, e.to));
            }
            if self.nodes[e.from].at > self.nodes[e.to].at {
                return Err(format!(
                    "edge {i} ({}) goes back in time: {} -> {}",
                    e.kind.name(),
                    self.nodes[e.from].at,
                    self.nodes[e.to].at
                ));
            }
        }
        for w in self.nodes.windows(2) {
            if w[0].at > w[1].at {
                return Err("node order not time-sorted".into());
            }
        }
        // Kahn's algorithm: every node must be emitted.
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: VecDeque<usize> = (0..self.nodes.len()).filter(|&i| indeg[i] == 0).collect();
        let mut emitted = 0usize;
        while let Some(i) = queue.pop_front() {
            emitted += 1;
            for &ei in &self.succs[i] {
                let t = self.edges[ei].to;
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
        if emitted != self.nodes.len() {
            return Err(format!(
                "cycle: only {emitted} of {} nodes topologically ordered",
                self.nodes.len()
            ));
        }
        Ok(())
    }

    /// The causal ancestor cone of a node (exclusive of the node).
    pub fn ancestors(&self, node: usize) -> BTreeSet<usize> {
        let mut cone = BTreeSet::new();
        let mut queue = VecDeque::from([node]);
        while let Some(i) = queue.pop_front() {
            for &ei in &self.preds[i] {
                let f = self.edges[ei].from;
                if cone.insert(f) {
                    queue.push_back(f);
                }
            }
        }
        cone
    }

    /// The binding predecessor of a node: the incoming edge whose source
    /// is latest in node order — the hop that actually delayed the node.
    fn binding_pred(&self, node: usize) -> Option<&Edge> {
        self.preds[node]
            .iter()
            .map(|&ei| &self.edges[ei])
            .max_by_key(|e| e.from)
    }

    /// Explains one message: the causal chain (binding predecessors,
    /// walked back to a root) that led to its last delivery, plus the
    /// size of its full ancestor cone.
    ///
    /// Returns `None` when no event for `key` was retained.
    pub fn explain(&self, key: MsgKey) -> Option<Explanation> {
        let target = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, e)| e.key == key)
            .max_by_key(|&(i, e)| (e.stage == Stage::Deliver, i))
            .map(|(i, _)| i)?;
        let cone_size = self.ancestors(target).len();
        let mut rev: Vec<Hop> = Vec::new();
        let mut cur = target;
        loop {
            match self.binding_pred(cur).map(|e| (e.from, e.kind)) {
                Some((from, kind)) => {
                    rev.push(Hop {
                        event: self.nodes[cur],
                        via: Some(kind),
                        slack: self.nodes[cur].at.saturating_since(self.nodes[from].at),
                    });
                    cur = from;
                }
                None => {
                    rev.push(Hop {
                        event: self.nodes[cur],
                        via: None,
                        slack: SimDuration::ZERO,
                    });
                    break;
                }
            }
        }
        rev.reverse();
        Some(Explanation {
            key,
            target: self.nodes[target],
            cone_size,
            chain: rev,
        })
    }

    /// Computes the recovery critical path: the binding chain of events
    /// inside the window `[crash_at, converged_at]`. The opening segment
    /// (crash → first chain event, covering detection and the work that
    /// produced that event) is attributed to the first event's stage;
    /// a closing `commit` segment (last chain event → convergence)
    /// covers the manager's completion bookkeeping. Segment durations
    /// therefore telescope to exactly `converged_at - crash_at`.
    ///
    /// `subject`, when given, anchors the walk at that process's latest
    /// in-window event; otherwise the latest in-window event overall.
    ///
    /// Returns `None` when the window is empty or inverted.
    pub fn critical_path(
        &self,
        crash_at: SimTime,
        converged_at: SimTime,
        subject: Option<u64>,
    ) -> Option<CriticalPath> {
        if converged_at < crash_at {
            return None;
        }
        let anchor = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, e)| e.at >= crash_at && e.at <= converged_at)
            .filter(|(_, e)| subject.map(|s| e.subject == s).unwrap_or(true))
            .map(|(i, _)| i)
            .next_back()?;

        // Walk binding predecessors while they stay inside the window.
        let mut path = vec![anchor];
        let mut kinds: Vec<EdgeKind> = Vec::new();
        let mut cur = anchor;
        while let Some(e) = self.binding_pred(cur) {
            if self.nodes[e.from].at < crash_at {
                break;
            }
            path.push(e.from);
            kinds.push(e.kind);
            cur = e.from;
        }
        path.reverse();
        kinds.reverse();

        let mut segments = Vec::new();
        let first = &self.nodes[path[0]];
        segments.push(Segment {
            category: stage_category(first.stage),
            kind: None,
            from: crash_at,
            to: first.at,
            label: format!("crash → {} {}", first.stage.name(), first.key),
        });
        for (w, kind) in path.windows(2).zip(kinds.iter()) {
            let (a, b) = (&self.nodes[w[0]], &self.nodes[w[1]]);
            segments.push(Segment {
                category: stage_category(b.stage),
                kind: Some(*kind),
                from: a.at,
                to: b.at,
                label: format!(
                    "{} {} → {} {} [{}]",
                    a.stage.name(),
                    a.key,
                    b.stage.name(),
                    b.key,
                    kind.name()
                ),
            });
        }
        let last = &self.nodes[*path.last().expect("path non-empty")];
        segments.push(Segment {
            category: "commit",
            kind: None,
            from: last.at,
            to: converged_at,
            label: format!("{} {} → converged", last.stage.name(), last.key),
        });
        Some(CriticalPath {
            crash_at,
            converged_at,
            segments,
        })
    }

    /// Renders the graph as deterministic Graphviz DOT (nodes in node
    /// order, edges in insertion order re-sorted by `(from, to, kind)`).
    pub fn to_dot(&self) -> String {
        let mut s = String::from(
            "digraph happens_before {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n",
        );
        for (i, e) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                "  n{} [label=\"{} {}\\n@{:.3}ms subj={}\"];\n",
                i,
                e.stage.name(),
                e.key,
                e.at.as_millis_f64(),
                e.subject
            ));
        }
        let mut edges: Vec<&Edge> = self.edges.iter().collect();
        edges.sort_by_key(|e| (e.from, e.to, e.kind as u8));
        for e in edges {
            s.push_str(&format!(
                "  n{} -> n{} [color={}, label=\"{}\", fontsize=8];\n",
                e.from,
                e.to,
                e.kind.dot_color(),
                e.kind.name()
            ));
        }
        s.push_str("}\n");
        s
    }
}

/// Maps a lifecycle stage to the recovery-stage category the critical
/// path attributes its segments to.
pub fn stage_category(stage: Stage) -> &'static str {
    match stage {
        Stage::Checkpoint => "checkpoint_load",
        Stage::Replay => "replay",
        Stage::Suppress => "suppression",
        Stage::Capture | Stage::Sequence => "re_sequencing",
        Stage::Publish | Stage::Deliver => "delivery",
        Stage::Elect => "election",
    }
}

/// One hop of an [`Explanation`] chain.
#[derive(Debug, Clone)]
pub struct Hop {
    /// The event at this hop.
    pub event: SpanEvent,
    /// The edge that leads *into* this event from the previous hop
    /// (`None` for the chain's root).
    pub via: Option<EdgeKind>,
    /// Virtual time between the previous hop and this event.
    pub slack: SimDuration,
}

/// The causal chain behind one message's delivery.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The message explained.
    pub key: MsgKey,
    /// The chain's target event (the last delivery, or last event).
    pub target: SpanEvent,
    /// Size of the full causal ancestor cone of the target.
    pub cone_size: usize,
    /// Root-to-target binding chain.
    pub chain: Vec<Hop>,
}

impl Explanation {
    /// Renders the chain for a terminal.
    pub fn render(&self) -> String {
        let mut s = format!(
            "explain {}: target {} @{:.3}ms subj={} (ancestor cone: {} events)\n",
            self.key,
            self.target.stage.name(),
            self.target.at.as_millis_f64(),
            self.target.subject,
            self.cone_size
        );
        for hop in &self.chain {
            match hop.via {
                None => s.push_str(&format!(
                    "  {:>12.3}ms  {} {} subj={}\n",
                    hop.event.at.as_millis_f64(),
                    hop.event.stage.name(),
                    hop.event.key,
                    hop.event.subject
                )),
                Some(kind) => s.push_str(&format!(
                    "  {:>12.3}ms  {} {} subj={}  [{} +{:.3}ms]\n",
                    hop.event.at.as_millis_f64(),
                    hop.event.stage.name(),
                    hop.event.key,
                    hop.event.subject,
                    kind.name(),
                    hop.slack.as_millis_f64()
                )),
            }
        }
        s
    }
}

/// One attributed segment of a recovery critical path.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Recovery-stage category ([`stage_category`], or the boundary
    /// categories `detect` / `commit`).
    pub category: &'static str,
    /// The happens-before edge this segment rode, when it is one.
    pub kind: Option<EdgeKind>,
    /// Segment start (virtual time).
    pub from: SimTime,
    /// Segment end (virtual time).
    pub to: SimTime,
    /// Human-readable description.
    pub label: String,
}

impl Segment {
    /// The segment's virtual-time extent.
    pub fn duration(&self) -> SimDuration {
        self.to.saturating_since(self.from)
    }
}

/// The attributed critical path of one crash/recovery window. Segments
/// telescope: they partition `[crash_at, converged_at]` exactly, so
/// [`CriticalPath::total`] always equals the measured recovery lag.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The crash instant anchoring the window.
    pub crash_at: SimTime,
    /// The convergence instant (last recovery completion).
    pub converged_at: SimTime,
    /// The attributed segments, in time order.
    pub segments: Vec<Segment>,
}

impl CriticalPath {
    /// Sum of segment durations — by construction, exactly the window.
    pub fn total(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Per-category attribution, in category name order.
    pub fn by_stage(&self) -> BTreeMap<&'static str, SimDuration> {
        let mut out: BTreeMap<&'static str, SimDuration> = BTreeMap::new();
        for s in &self.segments {
            *out.entry(s.category).or_insert(SimDuration::ZERO) += s.duration();
        }
        out
    }

    /// The `n` longest segments, longest first (ties broken by time
    /// order, so the answer is deterministic).
    pub fn top_segments(&self, n: usize) -> Vec<&Segment> {
        let mut idx: Vec<usize> = (0..self.segments.len()).collect();
        idx.sort_by_key(|&i| (std::cmp::Reverse(self.segments[i].duration()), i));
        idx.into_iter().take(n).map(|i| &self.segments[i]).collect()
    }

    /// Files the attribution under `critical_path/...`.
    pub fn into_registry(&self, reg: &mut MetricsRegistry) {
        reg.gauge("critical_path/total_ms", self.total().as_millis_f64());
        reg.counter("critical_path/segments", self.segments.len() as u64);
        for (cat, d) in self.by_stage() {
            reg.gauge(format!("critical_path/{cat}_ms"), d.as_millis_f64());
        }
    }

    /// Renders the path for a terminal.
    pub fn render(&self) -> String {
        let total = self.total();
        let mut s = format!(
            "critical path {:.3}ms → {:.3}ms (total {:.3}ms, {} segments)\n",
            self.crash_at.as_millis_f64(),
            self.converged_at.as_millis_f64(),
            total.as_millis_f64(),
            self.segments.len()
        );
        for (cat, d) in self.by_stage() {
            let frac = if total == SimDuration::ZERO {
                0.0
            } else {
                d / total
            };
            s.push_str(&format!(
                "  {cat:<16} {:>12.3}ms ({:>5.1}%)\n",
                d.as_millis_f64(),
                frac * 100.0
            ));
        }
        s.push_str("  longest segments:\n");
        for seg in self.top_segments(3) {
            s.push_str(&format!(
                "    {:>12.3}ms  {:<16} {}\n",
                seg.duration().as_millis_f64(),
                seg.category,
                seg.label
            ));
        }
        s
    }
}

/// The first point where two runs' canonical event streams disagree.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Position in node order where the streams first differ.
    pub index: usize,
    /// The baseline's event at that position (`None`: baseline ended).
    pub want: Option<SpanEvent>,
    /// The divergent run's event there (`None`: the run ended early).
    pub have: Option<SpanEvent>,
    /// Causal ancestors of the divergent event (from whichever graph
    /// still has an event at the divergence point), time-ordered.
    pub ancestors: Vec<SpanEvent>,
}

impl Divergence {
    /// Renders the pinpoint for a terminal.
    pub fn render(&self) -> String {
        let fmt = |e: &Option<SpanEvent>| match e {
            None => "<stream ended>".to_string(),
            Some(e) => format!(
                "{} {} subj={} aux={} @{:.3}ms",
                e.stage.name(),
                e.key,
                e.subject,
                e.aux,
                e.at.as_millis_f64()
            ),
        };
        let mut s = format!(
            "first divergence at event #{}:\n  baseline: {}\n  run:      {}\n",
            self.index,
            fmt(&self.want),
            fmt(&self.have)
        );
        if !self.ancestors.is_empty() {
            s.push_str("  causal ancestors of the divergent event:\n");
            for a in &self.ancestors {
                s.push_str(&format!(
                    "    {:>12.3}ms  {} {} subj={}\n",
                    a.at.as_millis_f64(),
                    a.stage.name(),
                    a.key,
                    a.subject
                ));
            }
        }
        s
    }
}

/// Projects an event to the fields two same-seed runs must agree on.
/// The per-log emission `seq` is excluded: it numbers a log's retained
/// ring position only after eviction, while everything observable —
/// time, message, stage, subject, stage detail — must match exactly.
fn canon(e: &SpanEvent) -> (SimTime, MsgKey, Stage, u64, u64) {
    (e.at, e.key, e.stage, e.subject, e.aux)
}

/// Aligns two runs' canonical event streams (node order) and reports
/// the first divergent event with its causal ancestors, or `None` when
/// the streams agree completely.
pub fn divergence_diff(baseline: &CausalGraph, run: &CausalGraph) -> Option<Divergence> {
    let b = baseline.events();
    let r = run.events();
    let n = b.len().max(r.len());
    for i in 0..n {
        let want = b.get(i);
        let have = r.get(i);
        if let (Some(w), Some(h)) = (want, have) {
            if canon(w) == canon(h) {
                continue;
            }
        }
        // Divergent (or one stream ended). Pull the cone from the run's
        // graph when it still has an event here, else the baseline's.
        let g = if have.is_some() { run } else { baseline };
        let ancestors: Vec<SpanEvent> = g.ancestors(i).into_iter().map(|j| g.events()[j]).collect();
        return Some(Divergence {
            index: i,
            want: want.copied(),
            have: have.copied(),
            ancestors,
        });
    }
    None
}

/// How one hop of a [`PathAlignment`] maps across the two paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopStatus {
    /// The same stage category appears on both paths: compare durations.
    Matched,
    /// Work only the baseline path did (the run skipped this stage).
    OnlyBaseline,
    /// Work only the run path did (a new stage appeared).
    OnlyRun,
}

impl HopStatus {
    /// Stable lowercase label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            HopStatus::Matched => "matched",
            HopStatus::OnlyBaseline => "only_baseline",
            HopStatus::OnlyRun => "only_run",
        }
    }
}

/// One aligned hop of two critical paths: a category-matched segment
/// pair with its slack delta, or a segment only one path has.
#[derive(Debug, Clone)]
pub struct AlignedHop {
    /// How the hop maps across the two paths.
    pub status: HopStatus,
    /// Recovery-stage category of the hop.
    pub category: &'static str,
    /// Duration on the baseline path, ms (0.0 for [`HopStatus::OnlyRun`]).
    pub baseline_ms: f64,
    /// Duration on the run path, ms (0.0 for [`HopStatus::OnlyBaseline`]).
    pub run_ms: f64,
    /// The segment's label (run side when present, else baseline side).
    pub label: String,
}

impl AlignedHop {
    /// Per-hop slack delta: run duration minus baseline duration.
    pub fn delta_ms(&self) -> f64 {
        self.run_ms - self.baseline_ms
    }
}

/// The full hop-by-hop alignment of two crash→convergence critical
/// paths: [`divergence_diff`] extended from first-divergence-only to a
/// total mapping. Two invariants hold by construction (and are pinned
/// by proptests):
///
/// - **totality** — every segment of both paths is consumed by exactly
///   one hop, so nothing truncation leaves behind is silently dropped;
/// - **telescoping** — hop deltas sum to exactly
///   `run.total() - baseline.total()`, because segment durations
///   already telescope to each path's window.
#[derive(Debug, Clone, Default)]
pub struct PathAlignment {
    /// The aligned hops, in path order.
    pub hops: Vec<AlignedHop>,
    /// Baseline path total, ms.
    pub baseline_total_ms: f64,
    /// Run path total, ms.
    pub run_total_ms: f64,
}

impl PathAlignment {
    /// Total slack delta: run total minus baseline total, ms.
    pub fn delta_total_ms(&self) -> f64 {
        self.run_total_ms - self.baseline_total_ms
    }

    /// `true` when every hop matched with zero slack delta — the
    /// self-alignment invariant (virtual time is exact, so equality is
    /// meaningful).
    pub fn is_clean(&self) -> bool {
        self.hops
            .iter()
            .all(|h| h.status == HopStatus::Matched && h.delta_ms() == 0.0)
    }

    /// Renders the alignment for a terminal.
    pub fn render(&self) -> String {
        let mut s = format!(
            "path alignment: baseline {:.3}ms -> run {:.3}ms ({:+.3}ms, {} hops)\n",
            self.baseline_total_ms,
            self.run_total_ms,
            self.delta_total_ms(),
            self.hops.len()
        );
        for h in &self.hops {
            s.push_str(&format!(
                "  {:<13} {:<16} {:>10.3}ms -> {:>10.3}ms ({:+.3}ms)  {}\n",
                h.status.label(),
                h.category,
                h.baseline_ms,
                h.run_ms,
                h.delta_ms(),
                h.label
            ));
        }
        s
    }
}

/// Aligns two critical paths hop by hop: a longest-common-subsequence
/// over the segment *category* sequences pairs up the stages both
/// recoveries went through (categories recur, so index-wise pairing
/// would misattribute an inserted stage to everything after it), and
/// the leftovers become [`HopStatus::OnlyBaseline`] /
/// [`HopStatus::OnlyRun`] hops in path order.
pub fn align_paths(baseline: &CriticalPath, run: &CriticalPath) -> PathAlignment {
    let a = &baseline.segments;
    let b = &run.segments;
    // LCS table over category sequences. Paths are short (one segment
    // per binding hop inside one recovery window), so O(n·m) is cheap.
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if a[i].category == b[j].category {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut hops = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n || j < m {
        if i < n && j < m && a[i].category == b[j].category && dp[i][j] == dp[i + 1][j + 1] + 1 {
            hops.push(AlignedHop {
                status: HopStatus::Matched,
                category: a[i].category,
                baseline_ms: a[i].duration().as_millis_f64(),
                run_ms: b[j].duration().as_millis_f64(),
                label: b[j].label.clone(),
            });
            i += 1;
            j += 1;
        } else if j == m || (i < n && dp[i + 1][j] >= dp[i][j + 1]) {
            // Ties advance the baseline first, so the order (and the
            // rendered diff) is deterministic.
            hops.push(AlignedHop {
                status: HopStatus::OnlyBaseline,
                category: a[i].category,
                baseline_ms: a[i].duration().as_millis_f64(),
                run_ms: 0.0,
                label: a[i].label.clone(),
            });
            i += 1;
        } else {
            hops.push(AlignedHop {
                status: HopStatus::OnlyRun,
                category: b[j].category,
                baseline_ms: 0.0,
                run_ms: b[j].duration().as_millis_f64(),
                label: b[j].label.clone(),
            });
            j += 1;
        }
    }
    PathAlignment {
        hops,
        baseline_total_ms: baseline.total().as_millis_f64(),
        run_total_ms: run.total().as_millis_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sender: u64, seq: u64) -> MsgKey {
        MsgKey { sender, seq }
    }

    /// A small steady-state + crash/replay history over two logs (a
    /// kernel log and a recorder log). Process 1 sends k0, k1 to process
    /// 42; process 42 answers with m0 to process 1, checkpoints, crashes
    /// at t=1000µs, replays k1, and its regenerated m0 resend is
    /// suppressed at the watermark. Convergence at t=2000µs.
    fn sample_logs() -> (SpanLog, SpanLog) {
        let mut kernel = SpanLog::new(64);
        let mut recorder = SpanLog::new(64);
        let dest = 42u64;
        let k0 = key(1, 0);
        let k1 = key(1, 1);
        let m0 = key(42, 0);
        // k0, k1: full lifecycles into process 42.
        kernel.record(SimTime::from_micros(100), k0, Stage::Publish, dest, 16);
        recorder.record(SimTime::from_micros(150), k0, Stage::Capture, dest, 0);
        recorder.record(SimTime::from_micros(250), k0, Stage::Sequence, dest, 0);
        kernel.record(SimTime::from_micros(400), k0, Stage::Deliver, dest, 0);
        kernel.record(SimTime::from_micros(500), k1, Stage::Publish, dest, 16);
        recorder.record(SimTime::from_micros(550), k1, Stage::Capture, dest, 1);
        recorder.record(SimTime::from_micros(650), k1, Stage::Sequence, dest, 1);
        kernel.record(SimTime::from_micros(800), k1, Stage::Deliver, dest, 1);
        // m0: process 42's answer into process 1.
        kernel.record(SimTime::from_micros(820), m0, Stage::Publish, 1, 16);
        recorder.record(SimTime::from_micros(830), m0, Stage::Capture, 1, 0);
        recorder.record(SimTime::from_micros(840), m0, Stage::Sequence, 1, 0);
        kernel.record(SimTime::from_micros(845), m0, Stage::Deliver, 1, 0);
        // Durable checkpoint of 42 at read floor 1, crash at 1000µs,
        // replay of k1 into 42, and 42's regenerated m0 suppressed.
        recorder.record(
            SimTime::from_micros(900),
            key(42, 1),
            Stage::Checkpoint,
            dest,
            1,
        );
        recorder.record(SimTime::from_micros(1500), k1, Stage::Replay, dest, 1);
        kernel.record(SimTime::from_micros(1700), m0, Stage::Suppress, 1, 1);
        (kernel, recorder)
    }

    #[test]
    fn build_wires_all_edge_kinds() {
        let (kernel, recorder) = sample_logs();
        let g = CausalGraph::build([&kernel, &recorder]);
        assert_eq!(g.len(), 15);
        let kinds: BTreeSet<EdgeKind> = g.edges().iter().map(|e| e.kind).collect();
        for want in [
            EdgeKind::SendCapture,
            EdgeKind::CaptureSequence,
            EdgeKind::SequenceDeliver,
            EdgeKind::ProgramOrder,
            EdgeKind::SenderOrder,
            EdgeKind::SequenceReplay,
            EdgeKind::DeliverReplay,
            EdgeKind::PublishSuppress,
            EdgeKind::CheckpointFloor,
            EdgeKind::ReplaySuppress,
        ] {
            assert!(kinds.contains(&want), "missing edge kind {want:?}");
        }
        g.validate().expect("invariants hold");
    }

    #[test]
    fn explain_walks_back_to_a_root() {
        let (kernel, recorder) = sample_logs();
        let g = CausalGraph::build([&kernel, &recorder]);
        let ex = g.explain(key(1, 1)).expect("k1 retained");
        assert_eq!(ex.target.stage, Stage::Deliver);
        assert!(ex.cone_size >= 3, "cone was {}", ex.cone_size);
        assert!(ex.chain.len() >= 3);
        // Root has no inbound hop; every later hop has one.
        assert!(ex.chain[0].via.is_none());
        assert!(ex.chain[1..].iter().all(|h| h.via.is_some()));
        // Chain is time-ordered.
        for w in ex.chain.windows(2) {
            assert!(w[0].event.at <= w[1].event.at);
        }
        let text = ex.render();
        assert!(text.contains("explain 0.1#1"));
        assert!(text.contains("ancestor cone"));
    }

    #[test]
    fn explain_unknown_key_is_none() {
        let (kernel, recorder) = sample_logs();
        let g = CausalGraph::build([&kernel, &recorder]);
        assert!(g.explain(key(9, 9)).is_none());
    }

    #[test]
    fn critical_path_telescopes_to_the_window() {
        let (kernel, recorder) = sample_logs();
        let g = CausalGraph::build([&kernel, &recorder]);
        let crash = SimTime::from_micros(1000);
        let converged = SimTime::from_micros(2000);
        let cp = g.critical_path(crash, converged, None).expect("path");
        assert_eq!(cp.total(), converged.saturating_since(crash));
        // The binding chain is crash → replay k1 → suppress m0 → commit.
        assert_eq!(cp.segments.first().unwrap().category, "replay");
        assert_eq!(cp.segments.last().unwrap().category, "commit");
        let by = cp.by_stage();
        assert_eq!(by["replay"], SimDuration::from_micros(500));
        assert_eq!(by["suppression"], SimDuration::from_micros(200));
        assert_eq!(by["commit"], SimDuration::from_micros(300));
        // Registry projection totals agree.
        let mut reg = MetricsRegistry::new();
        cp.into_registry(&mut reg);
        assert_eq!(
            reg.gauge_value("critical_path/total_ms"),
            Some(cp.total().as_millis_f64())
        );
        assert!(cp.render().contains("longest segments"));
        assert!(cp.top_segments(3).len() <= 3);
    }

    #[test]
    fn critical_path_attributes_an_election_hop() {
        // Leader crash at t=1000µs: captures keep landing while the
        // group is leaderless, a new leader is elected at t=1400µs, it
        // sequences the backlog, and the destination reads it.
        let mut kernel = SpanLog::new(64);
        let mut replica = SpanLog::new(64);
        let dest = 42u64;
        let station = 2u64 << 32; // the new leader's station identity
        let k0 = key(1, 0);
        kernel.record(SimTime::from_micros(900), k0, Stage::Publish, dest, 16);
        replica.record(SimTime::from_micros(1100), k0, Stage::Capture, dest, 0);
        replica.record(
            SimTime::from_micros(1400),
            MsgKey {
                sender: station,
                seq: 3,
            },
            Stage::Elect,
            station,
            3,
        );
        replica.record(SimTime::from_micros(1600), k0, Stage::Sequence, dest, 0);
        kernel.record(SimTime::from_micros(1800), k0, Stage::Deliver, dest, 0);
        let g = CausalGraph::build([&kernel, &replica]);
        g.validate().expect("invariants hold");
        assert!(
            g.edges().iter().any(|e| e.kind == EdgeKind::ElectGate),
            "election gates the post-failover sequencing"
        );
        let cp = g
            .critical_path(
                SimTime::from_micros(1000),
                SimTime::from_micros(2000),
                Some(dest),
            )
            .expect("path");
        let by = cp.by_stage();
        assert_eq!(
            by.get("election").copied(),
            Some(SimDuration::from_micros(400)),
            "crash → elect window is attributed to the election"
        );
        assert!(cp
            .segments
            .iter()
            .any(|s| s.kind == Some(EdgeKind::ElectGate)));
        assert_eq!(cp.total(), SimDuration::from_micros(1000));
    }

    #[test]
    fn critical_path_empty_window_is_none() {
        let (kernel, recorder) = sample_logs();
        let g = CausalGraph::build([&kernel, &recorder]);
        assert!(g
            .critical_path(SimTime::from_secs(100), SimTime::from_secs(101), None)
            .is_none());
        assert!(g
            .critical_path(SimTime::from_micros(2000), SimTime::from_micros(850), None)
            .is_none());
    }

    #[test]
    fn divergence_diff_pinpoints_injected_reordering() {
        let (kernel, recorder) = sample_logs();
        let baseline = CausalGraph::build([&kernel, &recorder]);
        // Re-record the kernel log with the two deliveries into process
        // 42 swapped — a single-event reordering; everything else is
        // byte-identical.
        let mut k2 = SpanLog::new(64);
        let dest = 42u64;
        k2.record(
            SimTime::from_micros(100),
            key(1, 0),
            Stage::Publish,
            dest,
            16,
        );
        k2.record(
            SimTime::from_micros(400),
            key(1, 1),
            Stage::Deliver,
            dest,
            0,
        ); // swapped
        k2.record(
            SimTime::from_micros(500),
            key(1, 1),
            Stage::Publish,
            dest,
            16,
        );
        k2.record(
            SimTime::from_micros(800),
            key(1, 0),
            Stage::Deliver,
            dest,
            1,
        ); // swapped
        k2.record(SimTime::from_micros(820), key(42, 0), Stage::Publish, 1, 16);
        k2.record(SimTime::from_micros(845), key(42, 0), Stage::Deliver, 1, 0);
        k2.record(
            SimTime::from_micros(1700),
            key(42, 0),
            Stage::Suppress,
            1,
            1,
        );
        let run = CausalGraph::build([&k2, &recorder]);
        let d = divergence_diff(&baseline, &run).expect("diverges");
        // First divergent event is the first (swapped) delivery.
        assert_eq!(d.want.unwrap().key, key(1, 0));
        assert_eq!(d.have.unwrap().key, key(1, 1));
        assert_eq!(d.have.unwrap().stage, Stage::Deliver);
        assert!(d.render().contains("first divergence"));
        assert!(!d.ancestors.is_empty(), "divergent event has a cone");

        // Identical streams do not diverge.
        assert!(divergence_diff(&baseline, &baseline).is_none());
    }

    #[test]
    fn divergence_diff_detects_truncated_stream() {
        let (kernel, recorder) = sample_logs();
        let baseline = CausalGraph::build([&kernel, &recorder]);
        let run = CausalGraph::build([&kernel]);
        let d = divergence_diff(&baseline, &run).expect("diverges");
        assert!(d.index < baseline.len());
        assert!(d.render().contains("run:"));
    }

    #[test]
    fn self_alignment_is_clean_and_total() {
        let (kernel, recorder) = sample_logs();
        let g = CausalGraph::build([&kernel, &recorder]);
        let cp = g
            .critical_path(SimTime::from_micros(1000), SimTime::from_micros(2000), None)
            .expect("path");
        let al = align_paths(&cp, &cp);
        assert!(
            al.is_clean(),
            "self-alignment must be clean:\n{}",
            al.render()
        );
        assert_eq!(al.hops.len(), cp.segments.len());
        assert_eq!(al.delta_total_ms(), 0.0);
        assert!(al.render().contains("matched"));
    }

    #[test]
    fn alignment_attributes_an_inserted_stage_and_telescopes() {
        let (kernel, recorder) = sample_logs();
        let g = CausalGraph::build([&kernel, &recorder]);
        let crash = SimTime::from_micros(1000);
        let base = g
            .critical_path(crash, SimTime::from_micros(2000), None)
            .expect("path");
        // The run's recovery takes a detour: same stages, but with an
        // extra checkpoint_load hop spliced in and a longer commit tail.
        let mut run = base.clone();
        run.converged_at = SimTime::from_micros(2600);
        let commit = run.segments.pop().expect("commit tail");
        run.segments.push(Segment {
            category: "checkpoint_load",
            kind: None,
            from: commit.from,
            to: commit.from + SimDuration::from_micros(300),
            label: "checkpoint 0.42#1 reloaded".into(),
        });
        run.segments.push(Segment {
            category: "commit",
            kind: None,
            from: commit.from + SimDuration::from_micros(300),
            to: run.converged_at,
            label: commit.label.clone(),
        });
        let al = align_paths(&base, &run);
        assert!(!al.is_clean());
        // Totality: every segment of both paths is consumed exactly once.
        let consumed_base = al
            .hops
            .iter()
            .filter(|h| h.status != HopStatus::OnlyRun)
            .count();
        let consumed_run = al
            .hops
            .iter()
            .filter(|h| h.status != HopStatus::OnlyBaseline)
            .count();
        assert_eq!(consumed_base, base.segments.len());
        assert_eq!(consumed_run, run.segments.len());
        // The inserted stage surfaces as an only_run hop of its category.
        assert!(al
            .hops
            .iter()
            .any(|h| h.status == HopStatus::OnlyRun && h.category == "checkpoint_load"));
        // Telescoping: hop deltas sum to the total delta.
        let sum: f64 = al.hops.iter().map(AlignedHop::delta_ms).sum();
        assert!((sum - al.delta_total_ms()).abs() < 1e-9);
        assert!((al.delta_total_ms() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn dot_output_is_deterministic_and_complete() {
        let (kernel, recorder) = sample_logs();
        let a = CausalGraph::build([&kernel, &recorder]).to_dot();
        let b = CausalGraph::build([&kernel, &recorder]).to_dot();
        assert_eq!(a, b);
        assert!(a.starts_with("digraph happens_before {"));
        let node_lines = a
            .lines()
            .filter(|l| l.starts_with("  n") && !l.contains("->") && !l.starts_with("  node"))
            .count();
        assert_eq!(node_lines, 15);
        assert!(a.matches(" -> ").count() >= 15);
        assert!(a.contains("deliver→replay"));
    }

    #[test]
    fn same_instant_events_never_cycle() {
        // All events at the same virtual instant (CostModel::zero()
        // worlds do this): graph must still validate.
        let mut a = SpanLog::new(16);
        let mut b = SpanLog::new(16);
        let k0 = key(1, 0);
        a.record(SimTime::ZERO, k0, Stage::Publish, 7, 0);
        b.record(SimTime::ZERO, k0, Stage::Capture, 7, 0);
        b.record(SimTime::ZERO, k0, Stage::Sequence, 7, 0);
        a.record(SimTime::ZERO, k0, Stage::Deliver, 7, 0);
        let g = CausalGraph::build([&a, &b]);
        g.validate().expect("no cycles at a single instant");
    }
}
