//! Chaos scenarios: the workload under test and the target worlds.
//!
//! A [`Scenario`] names a topology and a [`WorkloadSource`] supplies the
//! load: a program registry plus a spawn plan. The default source is
//! independent ping/echo FIFO pairs — every client's deduplicated
//! output is pinned regardless of loss-induced interleaving — and the
//! workload engine plugs in phase-compiled publish drivers through the
//! same hook. The [`ChaosWorld`] trait is the narrow waist the driver
//! and oracle see: run-to-fault, inject, heal, and the invariant
//! probes.

use crate::schedule::Fault;
use publishing_core::world::{World, WorldBuilder};
use publishing_demos::costs::CostModel;
use publishing_demos::ids::{Channel, ProcessId};
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_demos::transport::TransportConfig;
use publishing_net::ethernet::Ethernet;
use publishing_net::lan::{Lan, LanConfig};
use publishing_obs::registry::MetricsRegistry;
use publishing_obs::span::check_replay_prefix;
use publishing_quorum::{QuorumConfig, QuorumWorld};
use publishing_shard::ShardedWorld;
use publishing_sim::event::FaultClock;
use publishing_sim::fault::FaultPlan;
use publishing_sim::time::SimTime;
use publishing_stable::disk::DiskFaults;
use std::collections::BTreeMap;

/// Which recorder tier the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// One recorder node ([`World`]).
    Single,
    /// A sharded recorder tier ([`ShardedWorld`]).
    Sharded,
    /// A replicated recorder quorum ([`QuorumWorld`]).
    Quorum,
}

/// Which broadcast medium the target world runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Medium {
    /// The idealized [`publishing_net::bus::PerfectBus`] (default).
    #[default]
    Perfect,
    /// The paper's 1983 experimental ethernet: `LanConfig::default()`'s
    /// 10 Mb/s + 1.6 ms interpacket gap, with contention.
    Ethernet,
}

/// A deterministic workload: by default `pairs` ping/echo FIFO pairs
/// exchanging `pings` round-trips, with think times derived from the
/// workload seed. [`Scenario::build_with`] accepts any other
/// [`WorkloadSource`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Target topology.
    pub topology: Topology,
    /// Seed feeding workload timing (ping think time).
    pub workload_seed: u64,
    /// Ping/echo pairs.
    pub pairs: u32,
    /// Round-trips per pair.
    pub pings: u64,
    /// Broadcast medium under the recorder tier.
    pub medium: Medium,
    /// Physical-constant knobs (costs, wire speed, transport window)
    /// the what-if profiler turns; identity by default.
    pub tuning: Tuning,
}

/// The scenario's physical constants — the knobs the what-if profiler
/// turns to apply a virtual speedup without touching protocol logic.
#[derive(Debug, Clone)]
pub struct Tuning {
    /// Node CPU cost model (zero by default, as everywhere else).
    pub costs: CostModel,
    /// Medium timing/bandwidth configuration.
    pub lan: LanConfig,
    /// Guaranteed-transport parameters (window width, retry pacing).
    pub transport: TransportConfig,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            costs: CostModel::zero(),
            lan: LanConfig::default(),
            transport: TransportConfig::default(),
        }
    }
}

/// Processing nodes in every scenario (the recorder tier sits above
/// them).
pub const NODES: u32 = 3;
/// Shards in the sharded scenario.
pub const SHARDS: u32 = 3;
/// Quorum replicas in the quorum scenario.
pub const REPLICAS: u32 = 3;

impl Scenario {
    /// A small default scenario for `topology`.
    pub fn new(topology: Topology, workload_seed: u64) -> Self {
        Scenario {
            topology,
            workload_seed,
            pairs: 2,
            pings: 8,
            medium: Medium::Perfect,
            tuning: Tuning::default(),
        }
    }

    /// The scenario on the paper's 1983 ethernet instead of the perfect
    /// bus.
    pub fn on_ethernet(mut self) -> Self {
        self.medium = Medium::Ethernet;
        self
    }

    /// The scenario with explicit physical-constant knobs.
    pub fn tuned(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// A fresh instance of the configured medium.
    fn medium_box(&self) -> Box<dyn Lan> {
        match self.medium {
            Medium::Perfect => Box::new(publishing_net::bus::PerfectBus::new(
                self.tuning.lan.clone(),
            )),
            Medium::Ethernet => Box::new(Ethernet::acknowledging(self.tuning.lan.clone())),
        }
    }

    /// The default ping/echo workload source for this scenario.
    pub fn default_source(&self) -> PingEcho {
        PingEcho {
            topology: self.topology,
            pairs: self.pairs,
            pings: self.pings,
            seed: self.workload_seed,
        }
    }

    /// Builds a fresh target world with the default ping/echo workload
    /// spawned.
    pub fn build(&self) -> Box<dyn ChaosWorld> {
        self.build_with(&self.default_source())
    }

    /// Builds a fresh target world with `source`'s workload spawned —
    /// the pluggable load-driver hook: the workload engine compiles a
    /// spec into a [`WorkloadSource`] and every topology runs it through
    /// the same spawn path the default ping/echo load uses.
    ///
    /// # Panics
    ///
    /// Panics if the plan names an unregistered program or links to a
    /// spawn at or after itself.
    pub fn build_with(&self, source: &dyn WorkloadSource) -> Box<dyn ChaosWorld> {
        let plan = source.plan();
        match self.topology {
            Topology::Single => {
                let mut w = WorldBuilder::new(NODES)
                    .registry(source.registry())
                    .medium(self.medium_box())
                    .costs(self.tuning.costs.clone())
                    .transport(self.tuning.transport.clone())
                    .build();
                let (procs, clients) = spawn_plan(&plan, |node, prog, links| {
                    w.spawn(node, prog, links).expect("spawn")
                });
                Box::new(SingleTarget {
                    w,
                    procs,
                    clients,
                    injected: BTreeMap::new(),
                })
            }
            Topology::Sharded => {
                let mut w = ShardedWorld::with_tuning(
                    NODES,
                    SHARDS as usize,
                    source.registry(),
                    self.medium_box(),
                    self.tuning.costs.clone(),
                    self.tuning.transport.clone(),
                );
                let (procs, clients) = spawn_plan(&plan, |node, prog, links| {
                    w.spawn(node, prog, links).expect("spawn")
                });
                Box::new(ShardedTarget {
                    w,
                    procs,
                    clients,
                    injected: BTreeMap::new(),
                })
            }
            Topology::Quorum => {
                let mut w = QuorumWorld::with_config(
                    QuorumConfig {
                        nodes: NODES,
                        replicas: REPLICAS as usize,
                        seed: self.workload_seed,
                        costs: self.tuning.costs.clone(),
                        transport: self.tuning.transport.clone(),
                        ..QuorumConfig::default()
                    },
                    source.registry(),
                    self.medium_box(),
                );
                let (procs, clients) = spawn_plan(&plan, |node, prog, links| {
                    w.spawn(node, prog, links).expect("spawn")
                });
                Box::new(QuorumTarget {
                    w,
                    procs,
                    clients,
                    injected: BTreeMap::new(),
                })
            }
        }
    }
}

/// A link in a spawn plan, pointing at an earlier spawn by plan index.
/// Resolved to the spawned [`ProcessId`] at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanLink {
    /// Index into the plan of the spawn this link targets.
    pub target: usize,
    /// Channel the link sends on.
    pub channel: Channel,
    /// Link code the receiver sees.
    pub code: u32,
}

/// One process in a workload's spawn plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSpawn {
    /// Processing node (taken modulo [`NODES`]).
    pub node: u32,
    /// Registered program name.
    pub program: String,
    /// Initial links, each to an earlier spawn in the plan.
    pub links: Vec<PlanLink>,
    /// Whether this spawn's deduplicated output feeds the baseline
    /// oracle (its last line must be `"done"` for the chaos engine).
    pub client: bool,
}

/// A pluggable source of scenario load: the programs to register and
/// the processes to spawn. Implementations must be deterministic —
/// the chaos engine builds the same source several times (baseline
/// twice, then every faulted run) and demands identical behavior.
pub trait WorkloadSource {
    /// The program registry the workload needs (including everything
    /// recovery must re-instantiate by name).
    fn registry(&self) -> ProgramRegistry;
    /// The spawn plan, in spawn order.
    fn plan(&self) -> Vec<PlanSpawn>;
}

/// Spawns a plan through a world's spawn function, resolving plan links
/// to pids. Returns `(procs, clients)`.
fn spawn_plan(
    plan: &[PlanSpawn],
    mut spawn: impl FnMut(u32, &str, Vec<Link>) -> ProcessId,
) -> (Vec<ProcessId>, Vec<ProcessId>) {
    let mut pids: Vec<ProcessId> = Vec::with_capacity(plan.len());
    let mut clients = Vec::new();
    for (i, s) in plan.iter().enumerate() {
        let links: Vec<Link> = s
            .links
            .iter()
            .map(|l| {
                assert!(l.target < i, "plan link must point at an earlier spawn");
                Link::to(pids[l.target], l.channel, l.code)
            })
            .collect();
        let pid = spawn(s.node % NODES, &s.program, links);
        pids.push(pid);
        if s.client {
            clients.push(pid);
        }
    }
    (pids, clients)
}

/// The default workload: independent ping/echo FIFO pairs. Placement
/// mirrors the historical per-topology layout so existing seeds and
/// shrunk reproducer literals keep their meaning.
#[derive(Debug, Clone)]
pub struct PingEcho {
    /// Target topology (placement differs per tier).
    pub topology: Topology,
    /// Ping/echo pairs.
    pub pairs: u32,
    /// Round-trips per pair.
    pub pings: u64,
    /// Seed feeding ping think time.
    pub seed: u64,
}

impl WorkloadSource for PingEcho {
    fn registry(&self) -> ProgramRegistry {
        let mut reg = ProgramRegistry::new();
        programs::register_standard(&mut reg);
        let pings = self.pings;
        let think_ns = 1_500_000 + (self.seed % 5) * 250_000;
        reg.register("chaos-pinger", move || {
            let mut p = PingClient::new(pings);
            p.think_ns = think_ns;
            Box::new(p)
        });
        reg
    }

    fn plan(&self) -> Vec<PlanSpawn> {
        let mut plan = Vec::new();
        for i in 0..self.pairs {
            let (server_node, client_node) = match self.topology {
                Topology::Single => (1 + i % 2, 0),
                Topology::Sharded | Topology::Quorum => (2, i % 2),
            };
            plan.push(PlanSpawn {
                node: server_node,
                program: "echo".into(),
                links: vec![],
                client: false,
            });
            plan.push(PlanSpawn {
                node: client_node,
                program: "chaos-pinger".into(),
                links: vec![PlanLink {
                    target: plan.len() - 1,
                    channel: Channel::DEFAULT,
                    code: 7,
                }],
                client: true,
            });
        }
        plan
    }
}

/// The narrow interface the chaos driver and oracle need from a world.
pub trait ChaosWorld {
    /// Installs the schedule's fault clock.
    fn set_fault_clock(&mut self, clock: FaultClock);
    /// Runs until `deadline` or the next fault instant; `Some(t)` pauses
    /// for injection at `t`.
    fn run_until_or_fault(&mut self, deadline: SimTime) -> Option<SimTime>;
    /// Injects one fault now. Faults that do not apply to the topology
    /// or the current state (e.g. restarting a recorder that is up) are
    /// no-ops, so shrunk schedules stay runnable.
    fn inject(&mut self, fault: &Fault);
    /// Reapplies the medium fault plan (burst boundaries).
    fn set_medium_faults(&mut self, plan: FaultPlan);
    /// Reapplies the disk fault regime (window boundaries).
    fn set_disk_faults(&mut self, faults: DiskFaults);
    /// End-of-schedule heal: restart everything still down and clear all
    /// injected fault regimes, so convergence is demanded of recovery,
    /// not blocked on a fault the shrinker happened to keep.
    fn heal(&mut self);
    /// Deduplicated-output fingerprint (must match the fault-free
    /// baseline).
    fn output_fingerprint(&self) -> u64;
    /// Span-log fingerprint (run-level determinism oracle).
    fn obs_fingerprint(&self) -> u64;
    /// Each client's deduplicated output lines.
    fn client_outputs(&self) -> Vec<(ProcessId, Vec<String>)>;
    /// Convergence violations: recoveries still in flight, replay lag,
    /// downed or catching-up recorders.
    fn convergence_failures(&self) -> Vec<String>;
    /// Replay-prefix violations across every kernel × subject pid.
    fn replay_prefix_failures(&self) -> Vec<String>;
    /// Suppression-coverage violations: suppressions for unknown
    /// senders, or suppressions in a run that performed no recovery.
    fn suppression_failures(&self) -> Vec<String>;
    /// Completed recoveries across the tier.
    fn recoveries_completed(&self) -> u64;
    /// The target world's metrics snapshot with the chaos counters
    /// merged in: `chaos/injected/<kind>` per injected fault kind, plus
    /// the fault-consumption counters the injections drove
    /// (`chaos/disk/io_retries`, `chaos/disk/transient_errors`,
    /// `chaos/disk/torn_writes`).
    fn metrics(&self) -> MetricsRegistry;
    /// The target world's full observability report, with the chaos
    /// counters of [`ChaosWorld::metrics`] merged into its registry.
    fn obs_report(&self) -> publishing_obs::report::ObsReport;
    /// Every component's span events, one list per log, in the world's
    /// deterministic log order — the input to causal-graph construction
    /// and divergence diffing.
    fn span_events(&self) -> Vec<Vec<publishing_obs::span::SpanEvent>>;
    /// The happens-before DAG over the current span logs.
    fn causal_graph(&self) -> publishing_obs::causal::CausalGraph {
        publishing_obs::causal::CausalGraph::from_event_lists(&self.span_events())
    }
    /// The index of the current quorum leader, for targets with a
    /// consensus tier (`None` elsewhere, or while leaderless).
    fn quorum_leader(&self) -> Option<usize> {
        None
    }
}

/// Files the per-kind injection counters and the store/disk fault
/// consumption counters shared by both targets.
fn chaos_metrics(
    reg: &mut MetricsRegistry,
    injected: &BTreeMap<&'static str, u64>,
    recorders: &[&publishing_core::recorder::Recorder],
) {
    for (kind, n) in injected {
        reg.counter(format!("chaos/injected/{kind}"), *n);
    }
    let (mut retries, mut transient, mut torn) = (0u64, 0u64, 0u64);
    for rec in recorders {
        let store = rec.store();
        retries += store.stats().io_retries.get();
        for i in 0..store.n_disks() {
            let d = store.disk_stats(i);
            transient += d.transient_errors.get();
            torn += d.torn_writes.get();
        }
    }
    reg.counter("chaos/disk/io_retries", retries);
    reg.counter("chaos/disk/transient_errors", transient);
    reg.counter("chaos/disk/torn_writes", torn);
}

/// [`ChaosWorld`] over the single-recorder [`World`].
struct SingleTarget {
    w: World,
    procs: Vec<ProcessId>,
    clients: Vec<ProcessId>,
    injected: BTreeMap<&'static str, u64>,
}

impl ChaosWorld for SingleTarget {
    fn set_fault_clock(&mut self, clock: FaultClock) {
        self.w.set_fault_clock(clock);
    }

    fn run_until_or_fault(&mut self, deadline: SimTime) -> Option<SimTime> {
        self.w.run_until_or_fault(deadline)
    }

    fn inject(&mut self, fault: &Fault) {
        *self.injected.entry(fault.kind()).or_insert(0) += 1;
        match fault {
            Fault::CrashProcess { victim, .. } => {
                let pid = self.procs[*victim as usize % self.procs.len()];
                self.w.crash_process(pid, "chaos");
            }
            Fault::CrashNode { node, .. } => self.w.crash_node(node % NODES),
            Fault::CrashRecorder { .. } if self.w.recorder.is_up() => {
                self.w.crash_recorder();
            }
            Fault::RestartRecorder { .. } if !self.w.recorder.is_up() => {
                self.w.restart_recorder();
            }
            // Rebalance and windowed faults are driven via the
            // set_*_faults hooks / are sharded-only.
            _ => {}
        }
    }

    fn set_medium_faults(&mut self, plan: FaultPlan) {
        self.w.lan.set_faults(plan);
    }

    fn set_disk_faults(&mut self, faults: DiskFaults) {
        self.w.recorder.set_disk_faults(faults);
    }

    fn heal(&mut self) {
        if !self.w.recorder.is_up() {
            self.w.restart_recorder();
        }
        self.w.lan.set_faults(FaultPlan::new());
        self.w.recorder.set_disk_faults(DiskFaults::default());
    }

    fn output_fingerprint(&self) -> u64 {
        self.w.output_fingerprint()
    }

    fn obs_fingerprint(&self) -> u64 {
        self.w.obs_fingerprint()
    }

    fn client_outputs(&self) -> Vec<(ProcessId, Vec<String>)> {
        self.clients
            .iter()
            .map(|&c| (c, self.w.outputs_of(c)))
            .collect()
    }

    fn convergence_failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.w.recorder.is_up() {
            out.push("recorder still down".into());
        }
        let lag =
            publishing_core::obs::replay_lag(self.w.recorder.recorder(), self.w.recorder.manager());
        if lag != 0 {
            out.push(format!("replay lag {lag} has not drained"));
        }
        for l in self.w.recovery_lags() {
            if l.recovering {
                out.push(format!("pid {} still marked recovering", l.subject));
            }
        }
        out
    }

    fn replay_prefix_failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (node, k) in &self.w.kernels {
            for pid in &self.procs {
                if let Err(e) = check_replay_prefix(k.spans(), pid.as_u64()) {
                    out.push(format!("node {node}, subject {pid}: {e}"));
                }
            }
        }
        out
    }

    fn suppression_failures(&self) -> Vec<String> {
        suppression_check(
            self.w.kernels.values().map(|k| k.spans()),
            &self.procs,
            self.recoveries_completed(),
        )
    }

    fn recoveries_completed(&self) -> u64 {
        self.w.recorder.manager().stats().completed.get()
    }

    fn metrics(&self) -> MetricsRegistry {
        let mut reg = self.w.collect_metrics();
        chaos_metrics(&mut reg, &self.injected, &[self.w.recorder.recorder()]);
        reg
    }

    fn obs_report(&self) -> publishing_obs::report::ObsReport {
        let mut report = self.w.obs_report();
        report.metrics = self.metrics();
        report
    }

    fn span_events(&self) -> Vec<Vec<publishing_obs::span::SpanEvent>> {
        self.w
            .span_logs()
            .iter()
            .map(|l| l.events().collect())
            .collect()
    }
}

/// [`ChaosWorld`] over the [`ShardedWorld`].
struct ShardedTarget {
    w: ShardedWorld,
    procs: Vec<ProcessId>,
    clients: Vec<ProcessId>,
    injected: BTreeMap<&'static str, u64>,
}

impl ShardedTarget {
    fn live_count(&self) -> usize {
        self.w.shards.iter().filter(|s| s.is_up()).count()
    }
}

impl ChaosWorld for ShardedTarget {
    fn set_fault_clock(&mut self, clock: FaultClock) {
        self.w.set_fault_clock(clock);
    }

    fn run_until_or_fault(&mut self, deadline: SimTime) -> Option<SimTime> {
        self.w.run_until_or_fault(deadline)
    }

    fn inject(&mut self, fault: &Fault) {
        *self.injected.entry(fault.kind()).or_insert(0) += 1;
        match fault {
            Fault::CrashProcess { victim, .. } => {
                let pid = self.procs[*victim as usize % self.procs.len()];
                self.w.crash_process(pid, "chaos");
            }
            Fault::CrashNode { node, .. } => self.w.crash_node(node % NODES),
            Fault::CrashRecorder { shard, .. } => {
                let idx = *shard as usize % self.w.shards.len();
                // Keep at least one live shard: with every shard down
                // the tier cannot ack anything and the run degenerates.
                if self.w.shards[idx].is_up() && self.live_count() > 1 {
                    self.w.crash_shard(idx);
                }
            }
            Fault::RestartRecorder { shard, .. } => {
                let idx = *shard as usize % self.w.shards.len();
                if !self.w.shards[idx].is_up() {
                    self.w.restart_shard(idx);
                }
            }
            Fault::AddShard { .. } => {
                self.w.add_shard();
            }
            _ => {}
        }
    }

    fn set_medium_faults(&mut self, plan: FaultPlan) {
        self.w.lan.set_faults(plan);
    }

    fn set_disk_faults(&mut self, faults: DiskFaults) {
        for s in &mut self.w.shards {
            s.set_disk_faults(faults.clone());
        }
    }

    fn heal(&mut self) {
        for i in 0..self.w.shards.len() {
            if !self.w.shards[i].is_up() {
                self.w.restart_shard(i);
            }
        }
        self.w.lan.set_faults(FaultPlan::new());
        self.set_disk_faults(DiskFaults::default());
    }

    fn output_fingerprint(&self) -> u64 {
        self.w.output_fingerprint()
    }

    fn obs_fingerprint(&self) -> u64 {
        self.w.obs_fingerprint()
    }

    fn client_outputs(&self) -> Vec<(ProcessId, Vec<String>)> {
        self.clients
            .iter()
            .map(|&c| (c, self.w.outputs_of(c)))
            .collect()
    }

    fn convergence_failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for h in self.w.shard_health() {
            if !h.live {
                out.push(format!("shard {} still down", h.shard));
            }
            if h.catching_up {
                out.push(format!("shard {} still catching up", h.shard));
            }
            if h.recoveries_in_flight != 0 {
                out.push(format!(
                    "shard {}: {} recoveries still in flight",
                    h.shard, h.recoveries_in_flight
                ));
            }
            if h.replay_lag != 0 {
                out.push(format!(
                    "shard {}: replay lag {} has not drained",
                    h.shard, h.replay_lag
                ));
            }
        }
        for l in self.w.recovery_lags() {
            if l.recovering {
                out.push(format!("pid {} still marked recovering", l.subject));
            }
        }
        out
    }

    fn replay_prefix_failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (node, k) in &self.w.kernels {
            for pid in &self.procs {
                if let Err(e) = check_replay_prefix(k.spans(), pid.as_u64()) {
                    out.push(format!("node {node}, subject {pid}: {e}"));
                }
            }
        }
        out
    }

    fn suppression_failures(&self) -> Vec<String> {
        suppression_check(
            self.w.kernels.values().map(|k| k.spans()),
            &self.procs,
            self.recoveries_completed(),
        )
    }

    fn recoveries_completed(&self) -> u64 {
        self.w.recoveries_completed()
    }

    fn metrics(&self) -> MetricsRegistry {
        let mut reg = self.w.collect_metrics();
        let recorders: Vec<_> = self.w.shards.iter().map(|rn| rn.recorder()).collect();
        chaos_metrics(&mut reg, &self.injected, &recorders);
        reg
    }

    fn obs_report(&self) -> publishing_obs::report::ObsReport {
        let mut report = self.w.obs_report();
        report.metrics = self.metrics();
        report
    }

    fn span_events(&self) -> Vec<Vec<publishing_obs::span::SpanEvent>> {
        self.w
            .span_logs()
            .iter()
            .map(|l| l.events().collect())
            .collect()
    }
}

/// [`ChaosWorld`] over the [`QuorumWorld`].
struct QuorumTarget {
    w: QuorumWorld,
    procs: Vec<ProcessId>,
    clients: Vec<ProcessId>,
    injected: BTreeMap<&'static str, u64>,
}

impl QuorumTarget {
    /// True if crashing one more replica still leaves a strict majority
    /// of the group alive. Chaos that silences the quorum entirely
    /// proves nothing — consensus only promises progress with a
    /// majority, so the injector honors that precondition and the
    /// oracle then gets to demand full convergence.
    fn can_lose_one(&self) -> bool {
        let n = self.w.replica_count();
        let live = self.w.live_replicas();
        live >= 1 && (live - 1) * 2 > n
    }

    fn crash_replica_guarded(&mut self, idx: usize) {
        if self.w.replicas[idx].is_up() && self.can_lose_one() {
            self.w.crash_replica(idx);
        }
    }
}

impl ChaosWorld for QuorumTarget {
    fn set_fault_clock(&mut self, clock: FaultClock) {
        self.w.set_fault_clock(clock);
    }

    fn run_until_or_fault(&mut self, deadline: SimTime) -> Option<SimTime> {
        self.w.run_until_or_fault(deadline)
    }

    fn inject(&mut self, fault: &Fault) {
        *self.injected.entry(fault.kind()).or_insert(0) += 1;
        match fault {
            Fault::CrashProcess { victim, .. } => {
                let pid = self.procs[*victim as usize % self.procs.len()];
                self.w.crash_process(pid, "chaos");
            }
            Fault::CrashNode { node, .. } => self.w.crash_node(node % NODES),
            Fault::CrashReplica { idx, .. } => {
                let idx = *idx as usize % self.w.replica_count();
                self.crash_replica_guarded(idx);
            }
            Fault::RestartReplica { idx, .. } => {
                let idx = *idx as usize % self.w.replica_count();
                if !self.w.replicas[idx].is_up() {
                    self.w.restart_replica(idx);
                }
            }
            // Single/sharded recorder faults address the same tier here:
            // a recorder crash is a replica crash.
            Fault::CrashRecorder { shard, .. } => {
                let idx = *shard as usize % self.w.replica_count();
                self.crash_replica_guarded(idx);
            }
            Fault::RestartRecorder { shard, .. } => {
                let idx = *shard as usize % self.w.replica_count();
                if !self.w.replicas[idx].is_up() {
                    self.w.restart_replica(idx);
                }
            }
            _ => {}
        }
    }

    fn set_medium_faults(&mut self, plan: FaultPlan) {
        self.w.lan.set_faults(plan);
    }

    fn set_disk_faults(&mut self, faults: DiskFaults) {
        for r in &mut self.w.replicas {
            r.set_disk_faults(faults.clone());
        }
    }

    fn heal(&mut self) {
        for i in 0..self.w.replica_count() {
            if !self.w.replicas[i].is_up() {
                self.w.restart_replica(i);
            }
        }
        self.w.lan.set_faults(FaultPlan::new());
        self.set_disk_faults(DiskFaults::default());
    }

    fn output_fingerprint(&self) -> u64 {
        self.w.output_fingerprint()
    }

    fn obs_fingerprint(&self) -> u64 {
        self.w.obs_fingerprint()
    }

    fn client_outputs(&self) -> Vec<(ProcessId, Vec<String>)> {
        self.clients
            .iter()
            .map(|&c| (c, self.w.outputs_of(c)))
            .collect()
    }

    fn convergence_failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        let health = self.w.quorum_health();
        for h in &health {
            if !h.live {
                out.push(format!("replica {} still down", h.replica));
            }
        }
        if self.w.leader().is_none() {
            out.push("quorum is leaderless".into());
        }
        for h in &health {
            if h.leader && h.replication_lag != 0 {
                out.push(format!(
                    "leader {}: replication lag {} has not drained",
                    h.replica, h.replication_lag
                ));
            }
        }
        for l in self.w.recovery_lags() {
            if l.recovering {
                out.push(format!("pid {} still marked recovering", l.subject));
            }
        }
        // The consensus safety oracles ride along with convergence:
        // election safety, state-machine safety, log matching, and
        // gap/duplicate freedom of the arrival sequence.
        out.extend(self.w.quorum_invariant_failures());
        // Plus everything the online watchdog flagged while the run
        // was still in flight (arrival gaps or leaderless stalls that
        // outlived their virtual-time deadlines, commit regressions).
        out.extend(self.w.watchdog_violations().iter().cloned());
        out
    }

    fn replay_prefix_failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (node, k) in &self.w.kernels {
            for pid in &self.procs {
                if let Err(e) = check_replay_prefix(k.spans(), pid.as_u64()) {
                    out.push(format!("node {node}, subject {pid}: {e}"));
                }
            }
        }
        out
    }

    fn suppression_failures(&self) -> Vec<String> {
        suppression_check(
            self.w.kernels.values().map(|k| k.spans()),
            &self.procs,
            self.recoveries_completed(),
        )
    }

    fn recoveries_completed(&self) -> u64 {
        self.w.recoveries_completed()
    }

    fn metrics(&self) -> MetricsRegistry {
        let mut reg = self.w.collect_metrics();
        let recorders: Vec<_> = self
            .w
            .replicas
            .iter()
            .map(|r| r.recorder_node().recorder())
            .collect();
        chaos_metrics(&mut reg, &self.injected, &recorders);
        reg
    }

    fn obs_report(&self) -> publishing_obs::report::ObsReport {
        let mut report = self.w.obs_report();
        report.metrics = self.metrics();
        report
    }

    fn span_events(&self) -> Vec<Vec<publishing_obs::span::SpanEvent>> {
        self.w
            .span_logs()
            .iter()
            .map(|l| l.events().collect())
            .collect()
    }

    fn quorum_leader(&self) -> Option<usize> {
        self.w.leader()
    }
}

/// Suppressions exist only to cut off a recovering process's re-sends
/// (§4.7), so (a) every suppressed sender must be a process the
/// scenario spawned, and (b) a run that completed no recovery must show
/// no suppressions at all.
fn suppression_check<'a>(
    logs: impl IntoIterator<Item = &'a publishing_obs::span::SpanLog>,
    procs: &[ProcessId],
    recoveries: u64,
) -> Vec<String> {
    let by_sender = publishing_core::obs::suppressed_by_sender(logs);
    let mut out = Vec::new();
    for (&sender, &n) in &by_sender {
        if !procs.iter().any(|p| p.as_u64() == sender) {
            out.push(format!("{n} suppressions for unknown sender {sender}"));
        }
    }
    if recoveries == 0 && !by_sender.is_empty() {
        out.push(format!(
            "{} suppressions but no recovery ever completed",
            by_sender.values().sum::<u64>()
        ));
    }
    out
}
