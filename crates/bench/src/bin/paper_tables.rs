//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `paper_tables [section ...]` — with no arguments, prints all of
//! them. Section names: fig2_1, fig3_1, young, fig5_1, fig5_2, fig5_3,
//! fig5_4, fig5_5, capacity, shard_capacity, fig5_7, fig5_8,
//! publish_cost, fig6_2,
//! fig6_4, baselines, recovery_time, windowing, node_unit.

use publishing_bench::scenarios;
use publishing_core::baseline::{recovery_line_rule1, History};
use publishing_core::checkpoint::{young_interval, young_overhead};
use publishing_core::recorder::PublishCost;
use publishing_core::recovery_time::{LoadParams, RecoveryEstimator};
use publishing_queueing::{
    figure_5_5, max_users, operating_points, shard_capacity_curve, StateSizes, SystemConfig,
};
use publishing_sim::rng::DetRng;
use publishing_sim::time::{SimDuration, SimTime};

fn section(name: &str, title: &str, wanted: &[String]) -> bool {
    if !wanted.is_empty() && !wanted.iter().any(|w| w == name) {
        return false;
    }
    println!("\n================================================================");
    println!("{name}: {title}");
    println!("================================================================");
    true
}

fn main() {
    let wanted: Vec<String> = std::env::args().skip(1).collect();

    if section(
        "fig2_1",
        "Recovery lines and the domino effect (baseline)",
        &wanted,
    ) {
        // The staircase history: every checkpoint bracketed by messages.
        let ms = SimTime::from_millis;
        let mut h = History::new(2);
        for k in 1..=5u64 {
            h.interact(1, 0, ms(k * 10 - 2));
            h.checkpoint(0, ms(k * 10));
            h.interact(0, 1, ms(k * 10 + 2));
            h.checkpoint(1, ms(k * 10 + 4));
        }
        let line = recovery_line_rule1(&h, 0, ms(55));
        println!("staircase history, crash of P0 at t=55ms:");
        for (i, t) in line.restart_at.iter().enumerate() {
            println!("  process {i} rolls back to {t}");
        }
        println!("  work lost: {}", line.work_lost(ms(55)));
        println!("  (publishing would lose only P0's 5 ms since its last checkpoint)");
    }

    if section(
        "fig3_1",
        "Recovery-time bound walkthrough (§3.2.3)",
        &wanted,
    ) {
        let p = LoadParams::figure_3_1();
        let mut est = RecoveryEstimator::new(SimTime::from_millis(100), 4);
        println!("t_cfix=100ms t_page=10ms/page t_mfix=2ms t_byte=0.01ms/B f_cpu=0.5");
        println!(
            "after 4-page checkpoint:        t_max = {}  (paper: 140ms)",
            est.t_max(&p)
        );
        est.on_compute(SimDuration::from_millis(100));
        println!(
            "after 100ms of execution:       t_max = {}  (paper: 340ms)",
            est.t_max(&p)
        );
        est.on_message(128);
        println!(
            "after one 128-byte message:     t_max = {}  (paper: ~343.3ms)",
            est.t_max(&p)
        );
    }

    if section(
        "young",
        "Young's optimum checkpoint interval (§3.2.4)",
        &wanted,
    ) {
        let t_s = SimDuration::from_secs(1);
        let t_f = SimDuration::from_secs(200);
        let opt = young_interval(t_s, t_f);
        println!("Ts=1s Tf=200s  →  optimum Tc = √(2·Ts·Tf) = {opt}");
        println!("{:>10} {:>12}", "Tc", "overhead");
        for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let tc = opt.mul_f64(factor);
            println!(
                "{:>10} {:>12.5}",
                format!("{tc}"),
                young_overhead(tc, t_s, t_f)
            );
        }
    }

    if section("fig5_1", "The open queuing model (topology)", &wanted) {
        println!("sources (processing nodes) → network → recorder NIC → recorder CPU → disk(s)");
        println!("message classes: short 128 B (syscalls), long 1024 B (I/O),");
        println!("checkpoint 1024 B fragments; recorder acks return on the network.");
    }

    if section(
        "fig5_2",
        "Hardware parameters for the queuing model",
        &wanted,
    ) {
        println!("Ethernet interface interpacket delay   1.6 ms");
        println!("Network bandwidth                      10 megabits per second");
        println!("Disk latency                           3 ms");
        println!("Disk transfer rate                     2 megabytes per second");
        println!("Time to process a packet               0.8 ms");
    }

    if section(
        "fig5_3",
        "State sizes for UNIX processes (synthesized)",
        &wanted,
    ) {
        let mut rng = DetRng::new(53);
        let d = StateSizes::default();
        let hist = d.histogram(&mut rng, 200_000, 12);
        let mut rng2 = DetRng::new(53);
        println!(
            "mean state size: {:.1} KB",
            d.mean_bytes(&mut rng2, 100_000) / 1024.0
        );
        println!("{:>12} {:>8}  histogram", "size (KB)", "frac");
        for (i, f) in hist.iter().enumerate() {
            let lo = 4.0 + i as f64 * 5.0;
            let bar = "#".repeat((f * 200.0) as usize);
            println!(
                "{:>12} {:>8.3}  {}",
                format!("{lo:.0}-{:.0}", lo + 5.0),
                f,
                bar
            );
        }
    }

    if section("fig5_4", "Operating points for the queuing model", &wanted) {
        println!(
            "{:<18} {:>10} {:>12} {:>10} {:>10} {:>12}",
            "point", "procs/node", "state (KB)", "short/s", "long/s", "ckpt msgs/s"
        );
        for op in operating_points() {
            println!(
                "{:<18} {:>10.1} {:>12.0} {:>10.1} {:>10.2} {:>12.2}",
                op.name,
                op.procs_per_node,
                op.state_bytes / 1024.0,
                op.traffic.short_per_sec,
                op.traffic.long_per_sec,
                op.checkpoint_msgs_per_proc(),
            );
        }
    }

    if section(
        "fig5_5",
        "Utilization of system components (1–5 nodes, 1–3 disks)",
        &wanted,
    ) {
        for buffered in [true, false] {
            println!(
                "\n--- {} ---",
                if buffered {
                    "with 4 KB write buffering"
                } else {
                    "one disk write per message"
                }
            );
            println!(
                "{:<18} {:>5} {:>5} {:>8} {:>8} {:>8} {:>8}",
                "point", "nodes", "disks", "cpu", "disk", "nic", "net"
            );
            for row in figure_5_5(buffered) {
                if row.disks != 1 && row.point != "max-disk-rate" {
                    continue; // extra disks only matter where the disk works
                }
                println!(
                    "{:<18} {:>5} {:>5} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                    row.point, row.nodes, row.disks, row.cpu, row.disk, row.nic, row.network
                );
            }
        }
        println!("\nshape checks: unbuffered disk saturates at max-disk-rate (≥1.0);");
        println!("max-syscall-rate saturates the recorder beyond 3 nodes; the mean");
        println!("point stays viable through 5 nodes.");
    }

    if section(
        "capacity",
        "Recorder capacity (abstract: 115 users)",
        &wanted,
    ) {
        let users = max_users(&SystemConfig::default());
        println!("max users at the mean operating point before any component saturates: {users}");
        let more =
            publishing_queueing::max_users_with_unrecoverable(&SystemConfig::default(), 0.15);
        println!("with 15% of traffic unrecoverable (§6.6.1):                          {more}");
    }

    if section(
        "shard_capacity",
        "User capacity vs recorder shard count (sharded tier)",
        &wanted,
    ) {
        let r1 = shard_capacity_curve(8, 1);
        let r2 = shard_capacity_curve(8, 2);
        println!("(mean operating point; tier = max users before any shard NIC/CPU/disk");
        println!(" saturates; medium = the shared wire's own limit; effective = min)");
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "shards", "tier (R=1)", "tier (R=2)", "medium", "effective"
        );
        for (a, b) in r1.iter().zip(&r2) {
            println!(
                "{:>6} {:>12} {:>12} {:>12} {:>12}",
                a.shards, a.tier_users, b.tier_users, b.medium_users, b.effective_users
            );
        }
        println!("\ntier capacity grows with every shard added; the unsharded broadcast");
        println!("medium becomes the binding resource once the tier outgrows the wire.");
    }

    if section(
        "fig5_7",
        "Per-message overheads, with/without publishing",
        &wanted,
    ) {
        let with = scenarios::per_message_costs(true, 512);
        let without = scenarios::per_message_costs(false, 512);
        println!("(512 send-to-self rounds, Figure 5.6 program)");
        println!("{:<12} {:>12} {:>12}", "", "realTime", "cpuTime");
        println!(
            "{:<12} {:>10.1}ms {:>10.1}ms",
            "with", with.real_ms, with.cpu_ms
        );
        println!(
            "{:<12} {:>10.1}ms {:>10.1}ms",
            "without", without.real_ms, without.cpu_ms
        );
        println!(
            "publishing adds {:.1} ms CPU per message (paper: ~26 ms on a VAX 11/750)",
            with.cpu_ms - without.cpu_ms
        );
    }

    if section("fig5_8", "Per-process create/destroy overheads", &wanted) {
        let with = scenarios::per_process_costs(true, 25);
        let without = scenarios::per_process_costs(false, 25);
        println!("(25 create/destroy cycles of a null process via the control chain)");
        println!("with publishing:    {with:>8.0} ms CPU   (paper: 5135 ms)");
        println!("without publishing: {without:>8.0} ms CPU   (paper: 608 ms)");
        println!("ratio: {:.1}x (paper: 8.4x)", with / without);
    }

    if section(
        "publish_cost",
        "Recorder per-message publish CPU (§5.2.2)",
        &wanted,
    ) {
        for (mode, label) in [
            (PublishCost::FullStack, "full protocol stack (measured)"),
            (PublishCost::Inlined, "after inlining (measured)"),
            (PublishCost::MediaLayer, "media-layer intercept (goal)"),
        ] {
            println!("{:<32} {}", label, {
                let d = mode.per_message();
                format!("{d}")
            });
        }
    }

    if section(
        "fig6_2",
        "Standard vs Acknowledging Ethernet under load",
        &wanted,
    ) {
        let horizon = SimTime::from_secs(5);
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            "load/st", "plain del/s", "ack del/s", "plain coll", "ack coll"
        );
        for load in [2.0, 10.0, 30.0, 60.0, 100.0] {
            let plain = scenarios::ethernet_run(false, 8, load, horizon, 4);
            let ack = scenarios::ethernet_run(true, 8, load, horizon, 4);
            println!(
                "{:>8.0} {:>12.1} {:>12.1} {:>12} {:>12}",
                load, plain.delivered_fps, ack.delivered_fps, plain.collisions, ack.collisions
            );
        }
        println!("(light load: both behave alike; heavy load: the acknowledging");
        println!("Ethernet suffers fewer collisions — §6.1.1's claim)");
    }

    if section(
        "fig6_4",
        "Token ring with the recorder acknowledge field",
        &wanted,
    ) {
        println!("{:>20} {:>16}", "recorder position", "mean latency");
        for recorder in [1, 3, 5, 7] {
            let run = scenarios::token_ring_run(8, recorder, 64);
            println!(
                "{:>20} {:>13.1} us",
                run.recorder_distance, run.mean_latency_us
            );
        }
        println!("(destinations upstream of the recorder wait a second revolution)");
    }

    if section(
        "baselines",
        "Work lost after a crash: Chapter 2 methods vs publishing",
        &wanted,
    ) {
        let c = scenarios::baseline_comparison(100, 7);
        println!("mean work discarded per crash (4 processes, 10 s histories):");
        println!(
            "  recovery lines (Rule 1):   {:>10.1} ms",
            c.recovery_lines_ms
        );
        println!("  Russell replay (Rule 2):   {:>10.1} ms", c.russell_ms);
        println!("  published communications:  {:>10.1} ms", c.publishing_ms);
        // Steady-state comparison against shadow processes (§2.3).
        use publishing_core::baseline::ShadowCosts;
        use publishing_sim::time::SimDuration as D;
        let shadow = ShadowCosts {
            update_send: D::from_millis(13),
            update_apply: D::from_millis(13),
            update_bytes: 256,
        };
        println!("\nsteady-state cost of 1000 state updates:");
        println!(
            "  shadow processes: {} of *application node* CPU (per §2.3, every\n  update crosses to the shadow)",
            shadow.cpu_overhead(1000)
        );
        println!(
            "  publishing:       {} at the dedicated recorder (media-layer mode);\n  application nodes pay only the broadcast send",
            publishing_core::recorder::PublishCost::MediaLayer
                .per_message()
                .saturating_mul(1000)
        );
    }

    if section(
        "recovery_time",
        "Measured recovery latency vs checkpoint interval",
        &wanted,
    ) {
        println!("{:>20} {:>16}", "checkpoint every", "recovery takes");
        for interval in [0u64, 200, 100, 50] {
            let ms = scenarios::measured_recovery_ms(interval, 400);
            let label = if interval == 0 {
                "never".to_string()
            } else {
                format!("{interval} ms")
            };
            println!("{:>20} {:>13.1} ms", label, ms);
        }
        println!("(more frequent checkpoints bound recovery — §3.2.3)");
    }

    if section(
        "windowing",
        "Stop-and-wait vs windowed transport (§4.3.3)",
        &wanted,
    ) {
        println!("{:>10} {:>18}", "window", "40-msg flood time");
        for window in [1usize, 2, 4, 8] {
            let ms = scenarios::flood_completion_ms(window, 40);
            println!("{:>10} {:>15.1} ms", window, ms);
        }
        println!("(the thesis ships window 1 — \"only one unacknowledged message in");
        println!("transit from each processor\" — and plans the windowing scheme)");
    }

    if section(
        "node_unit",
        "Recovering nodes rather than processes (§6.6.2)",
        &wanted,
    ) {
        use publishing_core::node_recovery::{run_workload, NodeUnit};
        let mut rng = DetRng::new(21);
        let (live, log) = run_workload(6, 3, 300, &mut rng);
        let recovered = NodeUnit::replay(6, 3, &log);
        println!("6-process node, 300 extranode events:");
        println!(
            "  intranode messages (unpublished): {}",
            live.intranode_messages
        );
        println!("  extranode messages (published):   {}", log.len());
        println!(
            "  published fraction: {:.1}%",
            100.0 * log.len() as f64 / (log.len() as f64 + live.intranode_messages as f64)
        );
        println!(
            "  replay reproduces the node exactly: {}",
            recovered.state_digest() == live.state_digest()
        );
    }

    println!();
}
