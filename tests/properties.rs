//! Property-based tests of the system's core invariants.
//!
//! The headline properties are the paper's theorem, split into its two
//! sound halves:
//!
//! 1. *strict transparency* — for FIFO-pair workloads (where every
//!    process's input order is fully committed), any crash schedule
//!    leaves outputs bit-identical to the crash-free run;
//! 2. *exactly-once and liveness* — for arbitrary multi-sender
//!    workloads, where undelivered cross-sender messages have no
//!    committed order and recovery may legally interleave them
//!    differently, outputs are still gap-free exactly-once and every
//!    recovery completes.
//!
//! The rest pin down the substrate invariants recovery rests on.

use proptest::prelude::*;
use publishing::core::baseline::{recovery_line_rule1, recovery_line_rule2, History};
use publishing::core::node_recovery::{run_workload, NodeUnit};
use publishing::core::world::WorldBuilder;
use publishing::demos::ids::{Channel, ChannelSet, MessageId, ProcessId};
use publishing::demos::link::{Link, LinkTable};
use publishing::demos::message::{Message, MessageHeader};
use publishing::demos::process::ProcessImage;
use publishing::demos::programs::{self, Chatter};
use publishing::demos::queue::MessageQueue;
use publishing::demos::registry::ProgramRegistry;
use publishing::sim::codec::{Decode, Encode};
use publishing::sim::rng::DetRng;
use publishing::sim::time::{SimDuration, SimTime};

// ---------------------------------------------------------------------
// The recovery equivalence theorem
// ---------------------------------------------------------------------

fn chatter_world(seed: u64) -> publishing::core::world::World {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("chat-a", move || Box::new(Chatter::new(seed, 2, true)));
    reg.register("chat-b", move || {
        Box::new(Chatter::new(seed ^ 0x1111, 2, true))
    });
    reg.register("chat-c", move || {
        Box::new(Chatter::new(seed ^ 0x2222, 2, true))
    });
    let mut w = WorldBuilder::new(3).registry(reg).build();
    let a = ProcessId::new(0, 1);
    let b = ProcessId::new(1, 1);
    let c = ProcessId::new(2, 1);
    w.spawn(
        0,
        "chat-a",
        vec![
            Link::to(b, Channel::DEFAULT, 0),
            Link::to(c, Channel::DEFAULT, 0),
        ],
    )
    .unwrap();
    w.spawn(
        1,
        "chat-b",
        vec![
            Link::to(c, Channel::DEFAULT, 0),
            Link::to(a, Channel::DEFAULT, 0),
        ],
    )
    .unwrap();
    w.spawn(
        2,
        "chat-c",
        vec![
            Link::to(a, Channel::DEFAULT, 0),
            Link::to(b, Channel::DEFAULT, 0),
        ],
    )
    .unwrap();
    w
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The strict form of the theorem, sound for FIFO-pair workloads (a
    /// single sender→receiver pair has a committed total order): any
    /// schedule of crashes of either endpoint leaves the client's outputs
    /// bit-identical to the crash-free run.
    ///
    /// For multi-sender topologies, messages *not yet delivered* at crash
    /// time have no committed order, so recovery may legally interleave
    /// them differently; the checked guarantees there are exactly-once
    /// and recovery liveness (next property).
    #[test]
    fn recovery_is_transparent_under_random_crashes(
        seed in 1u64..1_000,
        crashes in proptest::collection::vec((any::<bool>(), 20u64..400), 1..=3),
    ) {
        let run = |crash: bool| {
            let mut reg = ProgramRegistry::new();
            programs::register_standard(&mut reg);
            reg.register("ping", move || {
                let mut p = programs::PingClient::new(40);
                p.think_ns = 500_000 + (seed % 7) * 300_000;
                Box::new(p)
            });
            let mut w = WorldBuilder::new(2).registry(reg).build();
            let server = w.spawn(1, "echo", vec![]).unwrap();
            let client = w
                .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
                .unwrap();
            if crash {
                let mut schedule = crashes.clone();
                schedule.sort_by_key(|&(_, at)| at);
                for (hit_server, at_ms) in schedule {
                    w.run_until(SimTime::from_millis(at_ms));
                    let victim = if hit_server { server } else { client };
                    w.crash_process(victim, "prop");
                }
            }
            w.run_until(SimTime::from_secs(20));
            w.outputs_of(client)
        };
        let clean = run(false);
        let crashed = run(true);
        prop_assert_eq!(&clean, &crashed);
        prop_assert_eq!(clean.len(), 41);
    }

    /// Node crashes against a FIFO-pair workload: still bit-identical.
    #[test]
    fn node_crash_is_transparent_to_fifo_pairs(
        seed in 1u64..500,
        at_ms in 30u64..300,
    ) {
        let run = |crash: bool| {
            let mut reg = ProgramRegistry::new();
            programs::register_standard(&mut reg);
            reg.register("ping", move || {
                let mut p = programs::PingClient::new(30);
                p.think_ns = 1_000_000 + seed; // vary timing a little
                Box::new(p)
            });
            let mut w = WorldBuilder::new(2).registry(reg).build();
            let server = w.spawn(1, "echo", vec![]).unwrap();
            let client = w
                .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
                .unwrap();
            if crash {
                w.run_until(SimTime::from_millis(at_ms));
                w.crash_node(1);
            }
            w.run_until(SimTime::from_secs(20));
            w.outputs_of(client)
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// Multi-sender workload under arbitrary crashes: every process ends
    /// healthy, every recovery completes, and outputs are exactly-once
    /// and gap-free — the paper's guarantees that survive legal
    /// reordering of undelivered cross-sender traffic.
    #[test]
    fn crashes_preserve_exactly_once_and_liveness(
        seed in 1u64..500,
        node in 0u32..3,
        at_ms in 30u64..400,
        whole_node in any::<bool>(),
    ) {
        let mut w = chatter_world(seed);
        w.run_until(SimTime::from_millis(at_ms));
        if whole_node {
            w.crash_node(node);
        } else {
            w.crash_process(ProcessId::new(node, 1), "prop");
        }
        w.run_until(SimTime::from_secs(30));
        for p in [ProcessId::new(0, 1), ProcessId::new(1, 1), ProcessId::new(2, 1)] {
            let max_seq = w
                .outputs
                .iter()
                .filter(|o| o.pid == p)
                .map(|o| o.seq)
                .max()
                .unwrap_or(0);
            let deduped = w.outputs_of(p);
            // Dense: sequences 1..=max all present exactly once.
            prop_assert_eq!(deduped.len() as u64, max_seq, "gaps for {}", p);
            // Healthy: nobody is left crashed or mid-recovery.
            let proc = w.kernels[&p.node.0].process(p.local).expect("alive");
            prop_assert!(
                matches!(
                    proc.run,
                    publishing::demos::process::RunState::Waiting
                        | publishing::demos::process::RunState::Ready
                ),
                "{} ended in {:?}",
                p,
                proc.run
            );
        }
        prop_assert!(!w.recorder.manager().busy(), "recovery jobs left open");
    }
}

// ---------------------------------------------------------------------
// Substrate invariants
// ---------------------------------------------------------------------

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (0u32..8, 0u32..16).prop_map(|(n, l)| ProcessId::new(n, l))
}

fn arb_link() -> impl Strategy<Value = Link> {
    (arb_pid(), 0u8..64, any::<u32>(), any::<bool>()).prop_map(|(dest, ch, code, ctl)| Link {
        dest,
        code,
        channel: Channel(ch),
        deliver_to_kernel: ctl,
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        arb_pid(),
        any::<u64>(),
        arb_pid(),
        any::<u32>(),
        0u8..64,
        any::<bool>(),
        proptest::option::of(arb_link()),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(
            |(sender, seq, to, code, ch, ctl, passed_link, body)| Message {
                header: MessageHeader {
                    id: MessageId { sender, seq },
                    to,
                    code,
                    channel: Channel(ch),
                    deliver_to_kernel: ctl,
                },
                passed_link,
                body,
            },
        )
}

proptest! {
    /// Messages survive the wire codec bit-exactly.
    #[test]
    fn message_codec_roundtrip(msg in arb_message()) {
        let buf = msg.encode_to_vec();
        prop_assert_eq!(Message::decode_all(&buf).unwrap(), msg);
    }

    /// Process images survive the checkpoint codec bit-exactly.
    #[test]
    fn process_image_roundtrip(
        name in "[a-z]{1,12}",
        state in proptest::collection::vec(any::<u8>(), 0..512),
        links in proptest::collection::vec(arb_link(), 0..8),
        mask in any::<u64>(),
        sent in any::<u64>(),
        read in any::<u64>(),
        outputs in any::<u64>(),
        seen in proptest::collection::btree_map(arb_pid(), any::<u64>(), 0..6),
    ) {
        let mut table = LinkTable::new();
        for l in links {
            table.insert(l);
        }
        let img = ProcessImage {
            program_name: name,
            program_state: state,
            links: table,
            recv_mask_bits: mask,
            sent_seq: sent,
            read_count: read,
            seen,
            outputs_emitted: outputs,
            cpu_since_checkpoint_ns: 7,
        };
        let buf = img.encode_to_vec();
        prop_assert_eq!(ProcessImage::decode_all(&buf).unwrap(), img);
    }

    /// Selective receive matches a reference model: it always returns the
    /// first queued message whose channel is in the mask (control
    /// messages match any mask), and reports a skip iff that message was
    /// not the head.
    #[test]
    fn selective_receive_matches_reference(
        channels in proptest::collection::vec((0u8..8, any::<bool>()), 1..20),
        mask_bits in any::<u64>(),
    ) {
        let mask = ChannelSet::from_bits(mask_bits | 1); // keep it nonempty-ish
        let mut q = MessageQueue::new();
        let mut model: Vec<(u64, u8, bool)> = Vec::new();
        for (i, (ch, ctl)) in channels.iter().enumerate() {
            let msg = Message {
                header: MessageHeader {
                    id: MessageId { sender: ProcessId::new(1, 1), seq: i as u64 + 1 },
                    to: ProcessId::new(2, 1),
                    code: 0,
                    channel: Channel(*ch),
                    deliver_to_kernel: *ctl,
                },
                passed_link: None,
                body: vec![],
            };
            q.enqueue(msg);
            model.push((i as u64 + 1, *ch, *ctl));
        }
        // Drain both until the queue yields nothing.
        loop {
            let expected_pos =
                model.iter().position(|(_, ch, ctl)| *ctl || mask.contains(Channel(*ch)));
            let got = q.receive_for_process(mask);
            match (expected_pos, got) {
                (None, None) => break,
                (Some(pos), Some(read)) => {
                    let (seq, _, _) = model.remove(pos);
                    prop_assert_eq!(read.message.header.id.seq, seq);
                    prop_assert_eq!(read.skipped_head.is_some(), pos != 0);
                }
                (e, g) => prop_assert!(false, "model {e:?} vs queue {:?}", g.is_some()),
            }
        }
    }

    /// Russell's directional rule never loses more work than undirected
    /// recovery lines, on any history.
    #[test]
    fn rule2_never_worse_than_rule1(seed in any::<u64>(), crashed in 0usize..4) {
        let mut rng = DetRng::new(seed);
        let h = History::random(
            &mut rng,
            4,
            SimTime::from_secs(8),
            SimDuration::from_millis(120),
            SimDuration::from_millis(900),
        );
        let at = SimTime::from_secs(8);
        let l1 = recovery_line_rule1(&h, crashed, at);
        let l2 = recovery_line_rule2(&h, crashed, at);
        prop_assert!(l2.work_lost(at) <= l1.work_lost(at));
        // And every restart point is at or before the crash.
        for (r1, r2) in l1.restart_at.iter().zip(&l2.restart_at) {
            prop_assert!(*r1 <= at);
            prop_assert!(r2 >= r1);
        }
    }

    /// §6.6.2 node-as-unit recovery reproduces any node exactly from its
    /// extranode log alone.
    #[test]
    fn node_unit_replay_always_exact(seed in any::<u64>(), n in 2usize..6, events in 10usize..80) {
        let mut rng = DetRng::new(seed);
        let (live, log) = run_workload(n, seed, events, &mut rng);
        let recovered = NodeUnit::replay(n, seed, &log);
        prop_assert_eq!(recovered.state_digest(), live.state_digest());
        prop_assert_eq!(recovered.outputs, live.outputs);
    }
}
