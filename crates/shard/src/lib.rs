//! Sharded recorder tier: partitions the published-message log and
//! checkpoint store across N recorder instances by rendezvous (HRW)
//! hashing over destination `ProcessId`.

pub mod map;
pub mod router;
pub mod world;

pub use map::{ShardId, ShardMap};
pub use router::ShardRouter;
pub use world::ShardedWorld;
