//! The perf-regression comparator behind the CI gate.
//!
//! Diffs two snapshots scenario-by-scenario over their *virtual*
//! metrics only — host readings (wall clock, allocations) are noise by
//! design and never gated. Each metric is matched to a [`Rule`] by name
//! suffix; a change is a regression when it moves in the rule's "worse"
//! direction by more than `max(rel · previous, abs)`. Metrics no rule
//! matches are reported but never gate, as are fingerprint changes
//! (fingerprints legitimately change whenever behavior-affecting code
//! changes; the determinism *tests* are what pin same-build stability).
//!
//! Exit-code contract (used by `ci.sh`): `0` no regression, `1` at
//! least one regression, `2` snapshots not comparable (schema or mode
//! mismatch, scenario lost).

use crate::snapshot::Snapshot;

/// Which way a metric gets worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Growth is a regression (latency, queue depth).
    HigherIsWorse,
    /// Shrinkage is a regression (throughput).
    LowerIsWorse,
}

/// A per-metric gating rule, matched by metric-name suffix.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Metric-name suffix this rule applies to.
    pub suffix: &'static str,
    /// Worse direction.
    pub direction: Direction,
    /// Relative noise allowance (fraction of the previous value).
    pub rel: f64,
    /// Absolute noise allowance (same unit as the metric).
    pub abs: f64,
}

/// The default rule set for the canonical scenario matrix. First match
/// (in order) wins.
pub fn default_rules() -> Vec<Rule> {
    vec![
        Rule {
            // Capacity knees are deterministic integers found by a
            // seeded binary search: any drop in sustainable users is a
            // real regression, so the allowance is exactly zero.
            suffix: "capacity_users",
            direction: Direction::LowerIsWorse,
            rel: 0.0,
            abs: 0.0,
        },
        Rule {
            // Lens knees are the same deterministic searches at the
            // lens scenario's fixed operating point: zero allowance.
            suffix: "lens_knee",
            direction: Direction::LowerIsWorse,
            rel: 0.0,
            abs: 0.0,
        },
        Rule {
            // The queueing cross-validation must stay clean: a model
            // row drifting outside tolerance is a ledger bug, not
            // noise.
            suffix: "xval_divergences",
            direction: Direction::HigherIsWorse,
            rel: 0.0,
            abs: 0.0,
        },
        Rule {
            suffix: "events_per_virtual_sec",
            direction: Direction::LowerIsWorse,
            rel: 0.10,
            abs: 1.0,
        },
        Rule {
            suffix: "_p50",
            direction: Direction::HigherIsWorse,
            rel: 0.25,
            abs: 50.0,
        },
        Rule {
            suffix: "_p95",
            direction: Direction::HigherIsWorse,
            rel: 0.25,
            abs: 50.0,
        },
        Rule {
            suffix: "_p99",
            direction: Direction::HigherIsWorse,
            rel: 0.25,
            abs: 50.0,
        },
        Rule {
            suffix: "peak_queue_depth",
            direction: Direction::HigherIsWorse,
            rel: 0.50,
            abs: 4.0,
        },
        Rule {
            suffix: "peak_sched_pending",
            direction: Direction::HigherIsWorse,
            rel: 0.50,
            abs: 16.0,
        },
    ]
}

/// One metric's before/after reading.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Scenario the metric belongs to.
    pub scenario: String,
    /// Metric name.
    pub metric: String,
    /// Previous snapshot's value.
    pub prev: f64,
    /// New snapshot's value.
    pub new: f64,
    /// Whether the change crossed the matched rule's threshold in the
    /// worse direction. Always `false` for unmatched (ungated) metrics.
    pub regression: bool,
    /// Whether any rule gates this metric.
    pub gated: bool,
}

/// The comparator's verdict.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Per-metric readings, scenario-major in snapshot order.
    pub deltas: Vec<Delta>,
    /// Fingerprints whose value changed (informational).
    pub fingerprint_changes: Vec<String>,
    /// Set when the snapshots cannot be compared at all.
    pub incomparable: Option<String>,
}

impl Comparison {
    /// The regressions, if any.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.regression)
    }

    /// The process exit code the CI gate uses.
    pub fn exit_code(&self) -> i32 {
        if self.incomparable.is_some() {
            2
        } else if self.regressions().next().is_some() {
            1
        } else {
            0
        }
    }

    /// Renders a human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if let Some(why) = &self.incomparable {
            s.push_str(&format!("snapshots not comparable: {why}\n"));
            return s;
        }
        let mut scenario = "";
        for d in &self.deltas {
            if d.scenario != scenario {
                scenario = &d.scenario;
                s.push_str(&format!("{scenario}:\n"));
            }
            let pct = if d.prev != 0.0 {
                (d.new - d.prev) / d.prev * 100.0
            } else {
                0.0
            };
            s.push_str(&format!(
                "  {} {:<32} {:>14.3} -> {:>14.3} ({:+.1}%){}\n",
                if d.regression { "REGRESSION" } else { "ok" },
                d.metric,
                d.prev,
                d.new,
                pct,
                if d.gated { "" } else { " [ungated]" }
            ));
        }
        for f in &self.fingerprint_changes {
            s.push_str(&format!("  note: fingerprint changed: {f}\n"));
        }
        let n = self.regressions().count();
        s.push_str(&format!(
            "{}: {} metric(s) compared, {} regression(s)\n",
            if n == 0 { "PASS" } else { "FAIL" },
            self.deltas.len(),
            n
        ));
        s
    }

    /// Serializes the verdict as one JSON document (`bench_compare
    /// --json`). The exit-code contract is embedded so scripts need not
    /// re-derive it.
    pub fn to_json(&self) -> String {
        use crate::json::{Json, ObjBuilder};
        let deltas = Json::Arr(
            self.deltas
                .iter()
                .map(|d| {
                    ObjBuilder::new()
                        .field("scenario", Json::Str(d.scenario.clone()))
                        .field("metric", Json::Str(d.metric.clone()))
                        .field("prev", Json::Num(d.prev))
                        .field("new", Json::Num(d.new))
                        .field("regression", Json::Bool(d.regression))
                        .field("gated", Json::Bool(d.gated))
                        .build()
                })
                .collect(),
        );
        ObjBuilder::new()
            .field(
                "incomparable",
                match &self.incomparable {
                    Some(why) => Json::Str(why.clone()),
                    None => Json::Null,
                },
            )
            .field("exit_code", Json::Num(self.exit_code() as f64))
            .field("regressions", Json::Num(self.regressions().count() as f64))
            .field("deltas", deltas)
            .field(
                "fingerprint_changes",
                Json::Arr(
                    self.fingerprint_changes
                        .iter()
                        .map(|f| Json::Str(f.clone()))
                        .collect(),
                ),
            )
            .build()
            .write()
    }
}

fn rule_for<'r>(rules: &'r [Rule], metric: &str) -> Option<&'r Rule> {
    rules.iter().find(|r| metric.ends_with(r.suffix))
}

fn is_regression(rule: &Rule, prev: f64, new: f64) -> bool {
    let allowance = (rule.rel * prev.abs()).max(rule.abs);
    match rule.direction {
        Direction::HigherIsWorse => new - prev > allowance,
        Direction::LowerIsWorse => prev - new > allowance,
    }
}

/// Diffs `new` against `prev` under `rules`.
pub fn compare(prev: &Snapshot, new: &Snapshot, rules: &[Rule]) -> Comparison {
    let mut out = Comparison::default();
    if prev.schema != new.schema {
        out.incomparable = Some(format!("schema {} vs {}", prev.schema, new.schema));
        return out;
    }
    if prev.mode != new.mode {
        out.incomparable = Some(format!("mode \"{}\" vs \"{}\"", prev.mode, new.mode));
        return out;
    }
    for ps in &prev.scenarios {
        let Some(ns) = new.scenario(&ps.name) else {
            out.incomparable = Some(format!("scenario \"{}\" disappeared", ps.name));
            return out;
        };
        for (metric, &pv) in &ps.virt {
            // Metrics only one side has are layout drift within the same
            // schema version; skip rather than invent a baseline.
            let Some(&nv) = ns.virt.get(metric) else {
                continue;
            };
            let rule = rule_for(rules, metric);
            out.deltas.push(Delta {
                scenario: ps.name.clone(),
                metric: metric.clone(),
                prev: pv,
                new: nv,
                regression: rule.map(|r| is_regression(r, pv, nv)).unwrap_or(false),
                gated: rule.is_some(),
            });
        }
        for (name, pf) in &ps.fingerprints {
            if let Some(nf) = ns.fingerprints.get(name) {
                if nf != pf {
                    out.fingerprint_changes
                        .push(format!("{}/{}: {} -> {}", ps.name, name, pf, nf));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ScenarioSnapshot;

    fn snap(name_vals: &[(&str, f64)]) -> Snapshot {
        let mut s = Snapshot::new("smoke");
        let mut sc = ScenarioSnapshot::new("steady_state");
        for (k, v) in name_vals {
            sc.virt(*k, *v);
        }
        sc.fingerprint("output", 1);
        s.scenarios.push(sc);
        s
    }

    #[test]
    fn within_noise_passes() {
        let prev = snap(&[
            ("events_per_virtual_sec", 1000.0),
            ("deliver_us_p99", 400.0),
        ]);
        let new = snap(&[("events_per_virtual_sec", 950.0), ("deliver_us_p99", 440.0)]);
        let c = compare(&prev, &new, &default_rules());
        assert_eq!(c.exit_code(), 0, "{}", c.render());
    }

    #[test]
    fn throughput_drop_beyond_threshold_fails() {
        let prev = snap(&[("events_per_virtual_sec", 1000.0)]);
        let new = snap(&[("events_per_virtual_sec", 850.0)]);
        let c = compare(&prev, &new, &default_rules());
        assert_eq!(c.exit_code(), 1);
        assert_eq!(c.regressions().count(), 1);
        assert!(c.render().contains("REGRESSION"));
    }

    #[test]
    fn latency_gain_is_not_a_regression() {
        let prev = snap(&[("deliver_us_p99", 1000.0)]);
        let new = snap(&[("deliver_us_p99", 100.0)]);
        let c = compare(&prev, &new, &default_rules());
        assert_eq!(c.exit_code(), 0);
    }

    #[test]
    fn latency_blowup_fails_and_small_abs_jitter_passes() {
        let prev = snap(&[("deliver_us_p99", 100.0)]);
        // +40us is above 25% of 100 but under the 50us absolute slack.
        let ok = compare(&prev, &snap(&[("deliver_us_p99", 140.0)]), &default_rules());
        assert_eq!(ok.exit_code(), 0, "{}", ok.render());
        let bad = compare(&prev, &snap(&[("deliver_us_p99", 200.0)]), &default_rules());
        assert_eq!(bad.exit_code(), 1);
    }

    #[test]
    fn capacity_knee_gates_exactly() {
        // The knee is a deterministic integer: a drop of even one user
        // fails, growth and equality pass.
        let prev = snap(&[("single_capacity_users", 28.0)]);
        let same = compare(
            &prev,
            &snap(&[("single_capacity_users", 28.0)]),
            &default_rules(),
        );
        assert_eq!(same.exit_code(), 0, "{}", same.render());
        let up = compare(
            &prev,
            &snap(&[("single_capacity_users", 29.0)]),
            &default_rules(),
        );
        assert_eq!(up.exit_code(), 0, "{}", up.render());
        let down = compare(
            &prev,
            &snap(&[("single_capacity_users", 27.0)]),
            &default_rules(),
        );
        assert_eq!(down.exit_code(), 1);
        assert!(down.render().contains("REGRESSION"));
    }

    #[test]
    fn lens_rules_gate_knee_and_divergence_exactly() {
        // Lens knees gate like capacity knees: any shrink fails.
        let prev = snap(&[
            ("perfect_lens_knee", 6.0),
            ("perfect_xval_divergences", 0.0),
        ]);
        let same = compare(&prev, &prev, &default_rules());
        assert_eq!(same.exit_code(), 0, "{}", same.render());
        let knee_down = compare(
            &prev,
            &snap(&[
                ("perfect_lens_knee", 5.0),
                ("perfect_xval_divergences", 0.0),
            ]),
            &default_rules(),
        );
        assert_eq!(knee_down.exit_code(), 1);
        // A queueing-model row drifting outside tolerance is a bug.
        let diverged = compare(
            &prev,
            &snap(&[
                ("perfect_lens_knee", 6.0),
                ("perfect_xval_divergences", 1.0),
            ]),
            &default_rules(),
        );
        assert_eq!(diverged.exit_code(), 1);
        assert!(diverged.render().contains("REGRESSION"));
    }

    #[test]
    fn ungated_metrics_never_fail() {
        let prev = snap(&[("spans_total", 10.0)]);
        let new = snap(&[("spans_total", 100_000.0)]);
        let c = compare(&prev, &new, &default_rules());
        assert_eq!(c.exit_code(), 0);
        assert!(c.render().contains("[ungated]"));
    }

    #[test]
    fn mode_and_schema_mismatch_are_incomparable() {
        let prev = snap(&[]);
        let mut other_mode = snap(&[]);
        other_mode.mode = "full".into();
        assert_eq!(compare(&prev, &other_mode, &default_rules()).exit_code(), 2);
        let mut other_schema = snap(&[]);
        other_schema.schema = 99;
        assert_eq!(
            compare(&prev, &other_schema, &default_rules()).exit_code(),
            2
        );
    }

    #[test]
    fn lost_scenario_is_incomparable() {
        let prev = snap(&[]);
        let new = Snapshot::new("smoke");
        assert_eq!(compare(&prev, &new, &default_rules()).exit_code(), 2);
    }

    #[test]
    fn json_verdict_parses_and_carries_the_exit_code() {
        use crate::json::parse;
        let prev = snap(&[("events_per_virtual_sec", 1000.0)]);
        let new = snap(&[("events_per_virtual_sec", 850.0)]);
        let c = compare(&prev, &new, &default_rules());
        let doc = parse(&c.to_json()).expect("valid json");
        assert_eq!(
            doc.get("exit_code").and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            doc.get("regressions").and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        let Some(crate::json::Json::Arr(deltas)) = doc.get("deltas") else {
            panic!("deltas array");
        };
        assert_eq!(deltas.len(), 1);
        assert_eq!(
            deltas[0].get("metric").and_then(crate::json::Json::as_str),
            Some("events_per_virtual_sec")
        );
        let incomparable = compare(&prev, &Snapshot::new("full"), &default_rules());
        let doc = parse(&incomparable.to_json()).expect("valid json");
        assert_eq!(
            doc.get("exit_code").and_then(crate::json::Json::as_f64),
            Some(2.0)
        );
        assert!(doc
            .get("incomparable")
            .and_then(crate::json::Json::as_str)
            .is_some());
    }

    #[test]
    fn fingerprint_changes_are_informational() {
        let prev = snap(&[]);
        let mut new = snap(&[]);
        new.scenarios[0].fingerprint("output", 2);
        let c = compare(&prev, &new, &default_rules());
        assert_eq!(c.exit_code(), 0);
        assert_eq!(c.fingerprint_changes.len(), 1);
    }
}
