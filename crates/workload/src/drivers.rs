//! The compiled publish drivers: per-user load generators and
//! per-subject sinks.
//!
//! A [`LoadGen`] is a deterministic [`Program`] modeling a *cohort* of
//! simulated users — the same structure as the paper's §5.3 user
//! simulators, where a few processes generated the load of many users.
//! It self-paces with tick messages: each tick it charges one tick of
//! virtual CPU, accrues fractional publish credit at `cohort ×` the
//! spec's phase-modulated per-user rate, and publishes that many
//! messages to subject sinks (Zipf-skewed when a hotspot phase is
//! active, uniform otherwise). At the horizon it sends a flush to every
//! sink, reports `sent N` / `done`, and stops. One generator per node
//! keeps the pacing honest: processing nodes have one CPU, so a second
//! co-located generator would queue behind the first's compute and
//! distort every latency the SLOs measure. A [`SubjectSink`] counts
//! arrivals — burning a tick of CPU per message while a stall phase
//! covers it — and reports `got N` / `done` once every generator's
//! flush has arrived, which per-sender FIFO links guarantee happens
//! after all of that generator's data.
//!
//! Programs see no clock, so logical time is *derived*: the generator
//! advances `logical_ms` by one tick per self-message and stamps it into
//! every body; the sink reads the stamp back to decide whether a stall
//! window covers the message it is draining. Self-sent ticks traverse
//! the broadcast medium like any published message — the closest the
//! model gets to the per-iteration OS overhead of the paper's §5.3 user
//! simulators.

use crate::spec::WorkloadSpec;
use publishing_demos::driver::{lcg_next, CHECKPOINT_BYTES};
use publishing_demos::ids::{Channel, LinkId};
use publishing_demos::program::{Ctx, Program, Received};
use publishing_sim::codec::{CodecError, Decoder, Encoder};
use publishing_sim::time::SimDuration;

/// Link code for user→sink data links.
pub const DATA_CODE: u32 = 11;
/// Link code for a generator's self-tick link.
pub const TICK_CODE: u32 = 12;
/// Channel ticks arrive on (data uses [`Channel::DEFAULT`]).
pub const TICK_CHANNEL: Channel = Channel(1);

/// Body kind tags (first byte of every workload message).
pub const KIND_DATA: u8 = 1;
/// Flush marker: the sender has published its last data message.
pub const KIND_FLUSH: u8 = 2;
/// Checkpoint-storm burst message.
pub const KIND_STORM: u8 = 3;

/// Minimum body size: kind byte + u32 logical-time stamp + padding.
pub const MIN_BODY: usize = 8;

fn body(kind: u8, logical_ms: u64, size: usize) -> Vec<u8> {
    let mut b = vec![0u8; size.max(MIN_BODY)];
    b[0] = kind;
    b[1..5].copy_from_slice(&(logical_ms as u32).to_le_bytes());
    b
}

fn stamp_of(b: &[u8]) -> u64 {
    if b.len() >= 5 {
        u32::from_le_bytes([b[1], b[2], b[3], b[4]]) as u64
    } else {
        0
    }
}

/// Cumulative Zipf tables for every hotspot skew the spec can activate,
/// precomputed once per program instance (pure config, not snapshotted).
#[derive(Debug, Clone)]
struct ZipfTables {
    /// `(theta_centi, cumulative fixed-point weights over subjects)`,
    /// sorted by theta.
    tables: Vec<(u32, Vec<u64>)>,
}

impl ZipfTables {
    fn new(spec: &WorkloadSpec) -> Self {
        let mut thetas: Vec<u32> = spec
            .phases
            .iter()
            .filter_map(|p| match *p {
                crate::spec::Phase::Zipf { theta_centi, .. } => Some(theta_centi),
                _ => None,
            })
            .collect();
        thetas.sort_unstable();
        thetas.dedup();
        let tables = thetas
            .into_iter()
            .map(|t| {
                let theta = t as f64 / 100.0;
                let mut cum = Vec::with_capacity(spec.subjects as usize);
                let mut total = 0u64;
                for rank in 1..=spec.subjects as u64 {
                    // Fixed-point weight 1e9 / rank^theta; the table is
                    // per-process config so float rounding never enters
                    // snapshots.
                    let w = (1e9 / (rank as f64).powf(theta)) as u64;
                    total += w.max(1);
                    cum.push(total);
                }
                (t, cum)
            })
            .collect();
        ZipfTables { tables }
    }

    /// Draws a subject for skew `theta_centi` using `draw`, or `None` if
    /// the skew has no table (falls back to uniform).
    fn sample(&self, theta_centi: u32, draw: u64) -> Option<u32> {
        let (_, cum) = self.tables.iter().find(|(t, _)| *t == theta_centi)?;
        let total = *cum.last()?;
        let r = draw % total;
        Some(cum.partition_point(|&c| c <= r) as u32)
    }
}

/// The cohort publish driver: generator `gen` simulates
/// [`WorkloadSpec::cohort`]`(gen)` users.
#[derive(Debug)]
pub struct LoadGen {
    // Config (rebuilt by the registry factory, never snapshotted).
    spec: WorkloadSpec,
    gen: u32,
    cohort: u64,
    zipf: ZipfTables,
    // Writable state.
    logical_ms: u64,
    lcg: u64,
    carry: u64,
    sent: u64,
    done: bool,
}

impl LoadGen {
    /// The driver for generator `gen` of `spec`.
    pub fn new(spec: WorkloadSpec, gen: u32) -> Self {
        let zipf = ZipfTables::new(&spec);
        let cohort = spec.cohort(gen) as u64;
        let lcg = spec
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(gen as u64 + 1);
        LoadGen {
            spec,
            gen,
            cohort,
            zipf,
            logical_ms: 0,
            lcg,
            carry: 0,
            sent: 0,
            done: false,
        }
    }

    /// The tick link id: initial spawn links are the `subjects` sink
    /// links (ids `0..subjects`), so the link `on_start` creates is next.
    fn tick_link(&self) -> LinkId {
        LinkId(self.spec.subjects)
    }

    fn pick_sink(&mut self) -> u32 {
        let draw = lcg_next(&mut self.lcg);
        match self.spec.zipf_at(self.logical_ms) {
            Some(theta) => self
                .zipf
                .sample(theta, draw)
                .unwrap_or(draw as u32 % self.spec.subjects),
            None => draw as u32 % self.spec.subjects,
        }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        if self.done {
            return;
        }
        // One tick of modeled user/OS overhead paces the loop.
        ctx.compute(SimDuration::from_millis(self.spec.tick_ms));

        // Accrue publish credit in fractional units: cohort users ×
        // rate (msgs/s) × tick (ms) × multiplier (pct) over a 100_000
        // denominator.
        self.carry += self.cohort
            * self.spec.rate_per_sec as u64
            * self.spec.tick_ms
            * self.spec.multiplier_pct(self.logical_ms);
        let due = self.carry / 100_000;
        self.carry %= 100_000;

        for _ in 0..due {
            let sink = self.pick_sink();
            let size = self.spec.mix.sample(&mut self.lcg);
            let b = body(KIND_DATA, self.logical_ms, size);
            ctx.send(LinkId(sink), b).expect("sink link");
            self.sent += 1;
        }
        for _ in 0..self.spec.storm_burst(self.logical_ms) {
            let sink = self.pick_sink();
            let b = body(KIND_STORM, self.logical_ms, CHECKPOINT_BYTES);
            ctx.send(LinkId(sink), b).expect("sink link");
            self.sent += 1;
        }

        self.logical_ms += self.spec.tick_ms;
        if self.logical_ms >= self.spec.horizon_ms {
            for sink in 0..self.spec.subjects {
                ctx.send(LinkId(sink), body(KIND_FLUSH, self.logical_ms, MIN_BODY))
                    .expect("sink link");
            }
            ctx.output(format!("sent {}", self.sent).into_bytes());
            ctx.output(b"done".to_vec());
            self.done = true;
            ctx.stop();
        } else {
            ctx.send(self.tick_link(), body(0, self.logical_ms, MIN_BODY))
                .expect("tick link");
        }
    }
}

impl Program for LoadGen {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let tick = ctx.create_link(TICK_CHANNEL, TICK_CODE);
        debug_assert_eq!(tick, self.tick_link(), "generator {}", self.gen);
        // Stagger generator phases across the tick: generators that
        // start in lockstep submit to the medium at identical instants
        // every tick, and on a CSMA/CD medium identical-instant
        // submissions are guaranteed collisions (carrier sense never
        // gets a chance to defer them).
        let stagger = self.gen as u64 * self.spec.tick_ms / crate::spec::GENERATORS as u64;
        ctx.compute(SimDuration::from_millis(stagger));
        ctx.send(tick, body(0, 0, MIN_BODY)).expect("tick link");
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        if msg.code == TICK_CODE {
            self.tick(ctx);
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.logical_ms)
            .u64(self.lcg)
            .u64(self.carry)
            .u64(self.sent)
            .bool(self.done);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.logical_ms = d.u64()?;
        self.lcg = d.u64()?;
        self.carry = d.u64()?;
        self.sent = d.u64()?;
        self.done = d.bool()?;
        d.finish()
    }
}

/// The per-subject receive driver.
#[derive(Debug)]
pub struct SubjectSink {
    // Config.
    spec: WorkloadSpec,
    sink: u32,
    // Writable state.
    received: u64,
    flushes: u32,
    done: bool,
}

impl SubjectSink {
    /// The sink for subject `sink` of `spec`.
    pub fn new(spec: WorkloadSpec, sink: u32) -> Self {
        SubjectSink {
            spec,
            sink,
            received: 0,
            flushes: 0,
            done: false,
        }
    }
}

impl Program for SubjectSink {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        if self.done || msg.code != DATA_CODE {
            return;
        }
        match msg.body.first().copied() {
            Some(KIND_FLUSH) => {
                self.flushes += 1;
                if self.flushes >= self.spec.generators() {
                    ctx.output(format!("got {}", self.received).into_bytes());
                    ctx.output(b"done".to_vec());
                    self.done = true;
                    ctx.stop();
                }
            }
            Some(KIND_DATA) | Some(KIND_STORM) => {
                self.received += 1;
                // A stalled receiver drains slower than one message per
                // generator tick, so queues grow for the window.
                if self.spec.stalled(self.sink, stamp_of(&msg.body)) {
                    ctx.compute(SimDuration::from_millis(self.spec.tick_ms));
                }
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.received).u32(self.flushes).bool(self.done);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.received = d.u64()?;
        self.flushes = d.u32()?;
        self.done = d.bool()?;
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Phase;
    use publishing_demos::ids::{ChannelSet, ProcessId};
    use publishing_demos::link::{Link, LinkTable};
    use publishing_demos::program::Effect;

    struct Bench {
        links: LinkTable,
        effects: Vec<Effect>,
        mask: ChannelSet,
        stop: bool,
        compute: SimDuration,
    }

    impl Bench {
        fn new(sinks: u32) -> Self {
            let mut links = LinkTable::new();
            for s in 0..sinks {
                links.insert(Link::to(
                    ProcessId::new(0, s + 1),
                    Channel::DEFAULT,
                    DATA_CODE,
                ));
            }
            Bench {
                links,
                effects: Vec::new(),
                mask: ChannelSet::ALL,
                stop: false,
                compute: SimDuration::ZERO,
            }
        }

        fn run(&mut self, p: &mut dyn Program) -> Vec<Effect> {
            p.on_start(&mut self.ctx());
            let mut out = std::mem::take(&mut self.effects);
            while !self.stop {
                // Deliver the pending self-tick, if any.
                let tick = out.iter().rev().find_map(|e| match e {
                    Effect::Send { link, body, .. } if link.code == TICK_CODE => Some(body.clone()),
                    _ => None,
                });
                let Some(body) = tick else { break };
                p.on_message(
                    &mut self.ctx(),
                    Received {
                        code: TICK_CODE,
                        channel: TICK_CHANNEL,
                        body,
                        link: None,
                    },
                );
                out.extend(std::mem::take(&mut self.effects));
            }
            out
        }

        fn ctx(&mut self) -> Ctx<'_> {
            Ctx::new(
                ProcessId::new(0, 9),
                &mut self.links,
                &mut self.effects,
                &mut self.mask,
                &mut self.stop,
                &mut self.compute,
            )
        }
    }

    fn sends_to_sinks(effects: &[Effect]) -> Vec<(u32, usize)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { link, body, .. } if link.code == DATA_CODE => {
                    Some((link.dest.local - 1, body.len()))
                }
                _ => None,
            })
            .collect()
    }

    fn outputs(effects: &[Effect]) -> Vec<String> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Output(b) => Some(String::from_utf8(b.clone()).unwrap()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn loadgen_publishes_expected_volume_and_finishes() {
        // Generator 0 of the default spec simulates 2 of the 4 users:
        // 2 × 5/s × 0.4 s = 4 messages.
        let spec = WorkloadSpec::default();
        let mut p = LoadGen::new(spec.clone(), 0);
        let mut bench = Bench::new(spec.subjects);
        let effects = bench.run(&mut p);
        let data: Vec<_> = sends_to_sinks(&effects)
            .into_iter()
            .filter(|(_, len)| *len > MIN_BODY || *len == spec.mix.short_bytes as usize)
            .collect();
        assert_eq!(data.len(), 4, "{data:?}");
        let out = outputs(&effects);
        assert_eq!(out, vec!["sent 4".to_string(), "done".to_string()]);
        // One flush per sink.
        let flushes = effects
            .iter()
            .filter(|e| {
                matches!(e, Effect::Send { link, body, .. }
                if link.code == DATA_CODE && body[0] == KIND_FLUSH)
            })
            .count();
        assert_eq!(flushes, spec.subjects as usize);
        assert!(bench.stop);
    }

    #[test]
    fn flash_phase_multiplies_volume() {
        let mut spec = WorkloadSpec::default();
        spec.phases = vec![Phase::Flash {
            at_ms: 0,
            dur_ms: spec.horizon_ms,
            pct: 300,
        }];
        let mut p = LoadGen::new(spec.clone(), 0);
        let effects = Bench::new(spec.subjects).run(&mut p);
        assert_eq!(outputs(&effects)[0], "sent 12", "3× the base 4");
    }

    #[test]
    fn storm_phase_adds_checkpoint_bursts() {
        let mut spec = WorkloadSpec::default();
        spec.phases = vec![Phase::Storm {
            at_ms: 0,
            dur_ms: spec.tick_ms, // one tick's worth
            burst: 3,
        }];
        let mut p = LoadGen::new(spec.clone(), 0);
        let effects = Bench::new(spec.subjects).run(&mut p);
        let storms = sends_to_sinks(&effects)
            .iter()
            .filter(|(_, len)| *len == CHECKPOINT_BYTES)
            .count();
        assert!(storms >= 3, "storm bodies: {storms}");
        assert_eq!(outputs(&effects)[0], "sent 7", "4 data + 3 burst");
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        let mut spec = WorkloadSpec::default();
        spec.subjects = 4;
        spec.rate_per_sec = 500;
        spec.phases = vec![Phase::Zipf {
            at_ms: 0,
            dur_ms: spec.horizon_ms,
            theta_centi: 200,
        }];
        let mut p = LoadGen::new(spec.clone(), 0);
        let effects = Bench::new(spec.subjects).run(&mut p);
        let mut per_sink = [0u32; 4];
        for (sink, len) in sends_to_sinks(&effects) {
            if len > MIN_BODY || len == spec.mix.short_bytes as usize {
                per_sink[sink as usize] += 1;
            }
        }
        assert!(
            per_sink[0] > per_sink[3] * 2,
            "θ=2.0 should pile onto subject 0: {per_sink:?}"
        );
    }

    #[test]
    fn loadgen_snapshot_round_trips_mid_run() {
        let spec = WorkloadSpec::default();
        let mut p = LoadGen::new(spec.clone(), 1);
        let mut bench = Bench::new(spec.subjects);
        p.on_start(&mut bench.ctx());
        // Drive a few ticks by hand.
        for _ in 0..5 {
            p.on_message(
                &mut bench.ctx(),
                Received {
                    code: TICK_CODE,
                    channel: TICK_CHANNEL,
                    body: body(0, 0, MIN_BODY),
                    link: None,
                },
            );
        }
        let snap = p.snapshot();
        let mut q = LoadGen::new(spec, 1);
        q.restore(&snap).unwrap();
        assert_eq!(q.snapshot(), snap);
        assert_eq!(q.logical_ms, p.logical_ms);
        assert_eq!(q.sent, p.sent);
    }

    #[test]
    fn sink_counts_and_finishes_on_last_flush() {
        let spec = WorkloadSpec {
            users: 2,
            ..WorkloadSpec::default()
        };
        let mut sink = SubjectSink::new(spec.clone(), 0);
        let mut bench = Bench::new(0);
        let data = |ms| Received {
            code: DATA_CODE,
            channel: Channel::DEFAULT,
            body: body(KIND_DATA, ms, 128),
            link: None,
        };
        let flush = Received {
            code: DATA_CODE,
            channel: Channel::DEFAULT,
            body: body(KIND_FLUSH, 400, MIN_BODY),
            link: None,
        };
        sink.on_start(&mut bench.ctx());
        sink.on_message(&mut bench.ctx(), data(0));
        sink.on_message(&mut bench.ctx(), data(20));
        sink.on_message(&mut bench.ctx(), flush.clone());
        assert!(!bench.stop, "one flush of two");
        sink.on_message(&mut bench.ctx(), data(40));
        sink.on_message(&mut bench.ctx(), flush);
        assert!(bench.stop);
        assert_eq!(
            outputs(&bench.effects),
            vec!["got 3".to_string(), "done".to_string()]
        );
    }

    #[test]
    fn stalled_sink_charges_cpu_inside_window() {
        let spec = WorkloadSpec {
            phases: vec![Phase::Stall {
                at_ms: 100,
                dur_ms: 100,
                sink: 0,
            }],
            ..WorkloadSpec::default()
        };
        let mut sink = SubjectSink::new(spec.clone(), 0);
        let mut bench = Bench::new(0);
        let data = |ms| Received {
            code: DATA_CODE,
            channel: Channel::DEFAULT,
            body: body(KIND_DATA, ms, 128),
            link: None,
        };
        sink.on_message(&mut bench.ctx(), data(50));
        assert_eq!(bench.compute, SimDuration::ZERO, "outside the window");
        sink.on_message(&mut bench.ctx(), data(150));
        assert_eq!(
            bench.compute,
            SimDuration::from_millis(spec.tick_ms),
            "inside the window"
        );
    }

    #[test]
    fn sink_snapshot_round_trips() {
        let spec = WorkloadSpec::default();
        let mut s = SubjectSink::new(spec.clone(), 1);
        s.received = 42;
        s.flushes = 3;
        let snap = s.snapshot();
        let mut t = SubjectSink::new(spec, 1);
        t.restore(&snap).unwrap();
        assert_eq!(t.snapshot(), snap);
    }
}
