//! The recovery invariant oracle: what must hold after every schedule.
//!
//! Judged against a fault-free [`Baseline`] of the same workload seed:
//!
//! - **convergence** — no recovery in flight, replay lag drained, no
//!   recorder/shard down or still catching up;
//! - **output equivalence** — every client's deduplicated output equals
//!   the baseline byte for byte (no lost delivery, no duplicate
//!   surviving dedup, no invented message), and the whole-world output
//!   fingerprint matches;
//! - **replay prefix** — every replayed read matches the pre-crash
//!   read at the same position ([`check_replay_prefix`] on each
//!   kernel's span log);
//! - **suppression coverage** — suppressions only name known senders
//!   and only appear in runs that actually recovered something.
//!
//! [`check_replay_prefix`]: publishing_obs::span::check_replay_prefix

use crate::scenario::ChaosWorld;
use publishing_demos::ids::ProcessId;
use publishing_obs::causal::CausalGraph;
use publishing_obs::span::SpanEvent;

/// The fault-free run this schedule's world is compared against.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Deduplicated-output fingerprint.
    pub output_fp: u64,
    /// Span-log fingerprint (baseline determinism witness).
    pub obs_fp: u64,
    /// Each client's deduplicated output lines.
    pub client_outputs: Vec<(ProcessId, Vec<String>)>,
    /// Every component's span events from the fault-free run, in log
    /// order — the reference stream for causal divergence pinpointing.
    pub span_events: Vec<Vec<SpanEvent>>,
}

/// Oracle knobs.
#[derive(Debug, Clone, Default)]
pub struct OracleOptions {
    /// Self-test hook for the shrinker: treat any completed recovery as
    /// a failure. With this set, any schedule containing a crash
    /// "fails", and shrinking must converge on a single-crash
    /// reproducer — a deterministic end-to-end test of the
    /// delta-debugging loop against real runs.
    pub fail_on_recovery: bool,
}

/// Checks every invariant; returns human-readable failures (empty =
/// pass).
pub fn check(t: &dyn ChaosWorld, baseline: &Baseline, opts: &OracleOptions) -> Vec<String> {
    let mut failures = t.convergence_failures();

    let fp = t.output_fingerprint();
    if fp != baseline.output_fp {
        // Upgrade the bare fingerprint mismatch to a causal pinpoint:
        // align the baseline and run span streams and name the first
        // event where they part ways, with its causal ancestors.
        let base_graph = CausalGraph::from_event_lists(&baseline.span_events);
        let run_graph = t.causal_graph();
        let detail = match publishing_obs::divergence_diff(&base_graph, &run_graph) {
            Some(d) => format!("; first causal divergence: {}", d.render()),
            None => "; span streams identical (divergence is output-only)".to_string(),
        };
        failures.push(format!(
            "output fingerprint {fp:#x} != fault-free baseline {:#x}{detail}",
            baseline.output_fp
        ));
    }
    let got = t.client_outputs();
    for ((pid, want), (_, have)) in baseline.client_outputs.iter().zip(&got) {
        if want != have {
            let at = want
                .iter()
                .zip(have.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| want.len().min(have.len()));
            failures.push(format!(
                "client {pid}: output diverges at line {at} \
                 (want {:?}, have {:?}; {} vs {} lines)",
                want.get(at),
                have.get(at),
                want.len(),
                have.len()
            ));
        }
    }

    failures.extend(t.replay_prefix_failures());
    failures.extend(t.suppression_failures());

    if opts.fail_on_recovery && t.recoveries_completed() > 0 {
        failures.push(format!(
            "self-test: {} recoveries completed",
            t.recoveries_completed()
        ));
    }
    failures
}
