//! The replicated-recorder world: processing nodes plus a quorum group
//! of recorder replicas on one broadcast medium, driven by a single
//! deterministic event loop.
//!
//! Structure mirrors the single-recorder world of `publishing-core`
//! and the sharded world of `publishing-shard`, with the recorder tier
//! replaced by a consensus group: every replica captures every frame
//! (the medium replicates bytes for free, §3.2), the elected leader
//! sequences arrivals through the replicated log, and the group
//! survives the crash of any minority — including the leader, mid-
//! commit — without losing or duplicating an arrival sequence.

use crate::replica::{QAction, QuorumReplica, ReplicaConfig};
use publishing_core::node::RecorderConfig;
use publishing_demos::costs::CostModel;
use publishing_demos::harness::OutputLine;
use publishing_demos::ids::{MessageId, NodeId, ProcessId};
use publishing_demos::kernel::{Kernel, KernelAction};
use publishing_demos::link::Link;
use publishing_demos::registry::{ProgramRegistry, UnknownProgram};
use publishing_demos::transport::{TransportConfig, Wire};
use publishing_net::bus::PerfectBus;
use publishing_net::frame::{Frame, StationId};
use publishing_net::lan::{Lan, LanAction, LanConfig, RecorderRouter};
use publishing_obs::watchdog::{Watchdog, WatchdogConfig};
use publishing_sim::codec::Decode;
use publishing_sim::event::Scheduler;
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Virtual-time cadence of the online invariant watchdog.
const WATCHDOG_PERIOD: SimDuration = SimDuration::from_millis(25);

/// World events.
#[derive(Debug)]
enum QEv {
    LanTimer(u64),
    KernelTimer(u32, u64),
    ReplicaTimer(usize, u64),
    Deliver {
        to: u32,
        frame: Frame,
        recorder_ok: bool,
    },
}

/// Configuration for a [`QuorumWorld`].
#[derive(Debug, Clone)]
pub struct QuorumConfig {
    /// Processing nodes (node ids `0..nodes`).
    pub nodes: u32,
    /// Quorum replicas (node ids `nodes..nodes+replicas`). Use an odd
    /// count; 1 degenerates to the single-recorder world.
    pub replicas: usize,
    /// Deterministic seed for election-timeout randomization.
    pub seed: u64,
    /// Per-replica configuration template (the group id and the inner
    /// recorder/raft settings).
    pub replica: ReplicaConfig,
    /// Node CPU cost model (zero by default, as in protocol tests).
    pub costs: CostModel,
    /// Transport parameters for all processing nodes.
    pub transport: TransportConfig,
}

impl Default for QuorumConfig {
    fn default() -> Self {
        QuorumConfig {
            nodes: 2,
            replicas: 3,
            seed: 0,
            replica: ReplicaConfig::default(),
            costs: CostModel::zero(),
            transport: TransportConfig::default(),
        }
    }
}

/// A recorder-consensus router: consensus, datagram, and kernel
/// control traffic is never gated on capture (it must flow during
/// elections and while replicas are down); everything else falls back
/// to the live-replica required set.
fn quorum_router() -> RecorderRouter {
    Arc::new(|frame: &Frame| match Wire::decode_all(&frame.payload) {
        Ok(Wire::Quorum { .. } | Wire::Datagram { .. } | Wire::EpochNotice { .. }) => {
            Some(Vec::new())
        }
        Ok(Wire::Data { msg, .. }) if msg.header.to.is_kernel() => Some(Vec::new()),
        Ok(Wire::Ack { dst_pid, .. }) if dst_pid.is_kernel() => Some(Vec::new()),
        _ => None,
    })
}

/// The running quorum world.
pub struct QuorumWorld {
    sched: Scheduler<QEv>,
    /// The shared medium.
    pub lan: Box<dyn Lan>,
    /// Processing-node kernels by node id.
    pub kernels: BTreeMap<u32, Kernel>,
    /// The recorder quorum group, by replica index.
    pub replicas: Vec<QuorumReplica>,
    /// All process outputs, in emission order.
    pub outputs: Vec<OutputLine>,
    n_nodes: u32,
    node_incarnations: BTreeMap<u32, u32>,
    crashes: Vec<SimTime>,
    recovered: BTreeMap<u64, SimTime>,
    /// Leader observed for each term, with the election-safety
    /// violations found while tracking.
    term_leaders: BTreeMap<u64, u32>,
    election_violations: Vec<String>,
    /// Online invariant watchdog, evaluated every [`WATCHDOG_PERIOD`]
    /// of virtual time as events dispatch.
    watchdog: Watchdog,
    next_watchdog_scan: SimTime,
    /// Busy-while-leaderless availability meter: charged whenever a
    /// watchdog scan finds no leader, closed when one is observed.
    leaderless: publishing_sim::ledger::Timeline,
    leaderless_since: Option<SimTime>,
}

impl QuorumWorld {
    /// Builds a world with `nodes` processing nodes and a `replicas`-way
    /// recorder quorum on the default perfect bus.
    pub fn new(nodes: u32, replicas: usize, registry: ProgramRegistry) -> Self {
        QuorumWorld::with_config(
            QuorumConfig {
                nodes,
                replicas,
                ..QuorumConfig::default()
            },
            registry,
            Box::new(PerfectBus::new(LanConfig::default())),
        )
    }

    /// Builds a world from a full configuration on a caller-supplied
    /// medium. The medium must be fresh: stations are attached here.
    pub fn with_config(
        cfg: QuorumConfig,
        registry: ProgramRegistry,
        mut lan: Box<dyn Lan>,
    ) -> Self {
        assert!(cfg.replicas >= 1, "a quorum needs at least one replica");
        lan.set_recorder_router(Some(quorum_router()));
        let peer_nodes: Vec<NodeId> = (0..cfg.replicas as u32)
            .map(|i| NodeId(cfg.nodes + i))
            .collect();
        let mut kernels = BTreeMap::new();
        for n in 0..cfg.nodes {
            let mut k = Kernel::new(
                NodeId(n),
                registry.clone(),
                cfg.costs.clone(),
                cfg.transport.clone(),
                true,
            );
            for r in &peer_nodes {
                k.add_recorder(*r);
            }
            lan.attach(k.station());
            kernels.insert(n, k);
        }
        let mut replicas = Vec::new();
        for i in 0..cfg.replicas {
            // Fork the seed per replica so election timeouts diverge.
            let mut rc = cfg.replica.clone();
            rc.node = RecorderConfig::default();
            let rep = QuorumReplica::new(
                i as u32,
                peer_nodes.clone(),
                cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                rc,
            );
            lan.attach(rep.station());
            replicas.push(rep);
        }
        let mut world = QuorumWorld {
            sched: Scheduler::new(),
            lan,
            kernels,
            replicas,
            outputs: Vec::new(),
            n_nodes: cfg.nodes,
            node_incarnations: BTreeMap::new(),
            crashes: Vec::new(),
            recovered: BTreeMap::new(),
            term_leaders: BTreeMap::new(),
            election_violations: Vec::new(),
            watchdog: Watchdog::new(WatchdogConfig::default()),
            next_watchdog_scan: SimTime::ZERO,
            leaderless: publishing_sim::ledger::Timeline::new(),
            leaderless_since: None,
        };
        world.refresh_required();
        let watch: Vec<NodeId> = (0..cfg.nodes).map(NodeId).collect();
        for i in 0..world.replicas.len() {
            let actions = world.replicas[i].start(SimTime::ZERO, &watch);
            world.apply_replica(SimTime::ZERO, i, actions);
        }
        world
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// The number of replicas in the group.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The index of the current leader, if any replica is leading.
    pub fn leader(&self) -> Option<usize> {
        self.replicas.iter().position(|r| r.is_leader())
    }

    /// Live replicas (up hosts).
    pub fn live_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| r.is_up()).count()
    }

    /// The capture gate follows group membership: every live replica
    /// must capture a frame for it to count as published (§6.3's
    /// "explicit act of the recovery layer" — here, of the consensus
    /// layer). With no replica up, all publishable traffic suspends
    /// (§3.3.4), so the required set falls back to the full group.
    fn refresh_required(&mut self) {
        let live: Vec<StationId> = self
            .replicas
            .iter()
            .filter(|r| r.is_up())
            .map(|r| r.station())
            .collect();
        if live.is_empty() {
            let all: Vec<StationId> = self.replicas.iter().map(|r| r.station()).collect();
            self.lan.set_required_recorders(all);
        } else {
            self.lan.set_required_recorders(live);
        }
    }

    /// Spawns a program on a node with initial links.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownProgram`] if the image is not registered.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn spawn(
        &mut self,
        node: u32,
        program: &str,
        links: Vec<Link>,
    ) -> Result<ProcessId, UnknownProgram> {
        let now = self.now();
        let k = self.kernels.get_mut(&node).expect("node exists");
        let (pid, actions) = k.spawn(now, program, links)?;
        self.apply_kernel(now, node, actions);
        Ok(pid)
    }

    fn apply_kernel(&mut self, now: SimTime, node: u32, actions: Vec<KernelAction>) {
        for a in actions {
            match a {
                KernelAction::Transmit(frame) => {
                    let lan_actions = self.lan.submit(now, frame);
                    self.apply_lan(lan_actions);
                }
                KernelAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, QEv::KernelTimer(node, token));
                }
                KernelAction::Output { pid, seq, bytes } => {
                    self.outputs.push(OutputLine {
                        at: now,
                        pid,
                        seq,
                        bytes,
                    });
                }
            }
        }
    }

    fn apply_replica(&mut self, now: SimTime, idx: usize, actions: Vec<QAction>) {
        for a in actions {
            match a {
                QAction::Transmit(frame) => {
                    let lan_actions = self.lan.submit(now, frame);
                    self.apply_lan(lan_actions);
                }
                QAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, QEv::ReplicaTimer(idx, token));
                }
                QAction::RestartNode { node, .. } => {
                    // Restart arbitration is consensus-derived: only the
                    // group leader reboots processors. Everyone else
                    // stands down and lets its watchdog keep checking.
                    if !self.replicas[idx].is_leader() {
                        self.replicas[idx].decline_node_restart(node);
                        continue;
                    }
                    let inc = self.node_incarnations.entry(node.0).or_insert(0);
                    *inc += 1;
                    let incarnation = *inc;
                    if let Some(k) = self.kernels.get_mut(&node.0) {
                        k.restart_node(now, incarnation);
                        self.lan.set_station_up(StationId(node.0), true);
                    }
                    // Every live replica resets transport numbering; the
                    // leader alone announces NODE_RESTARTED and drives
                    // recovery (its responsibility filter reads the
                    // leader flag).
                    let live: Vec<usize> = (0..self.replicas.len())
                        .filter(|&j| self.replicas[j].is_up())
                        .collect();
                    for j in live {
                        let follow = self.replicas[j].confirm_node_restarted(
                            now,
                            node,
                            incarnation,
                            j == idx,
                        );
                        self.apply_replica(now, j, follow);
                    }
                }
                QAction::RecoveryDone { pid } => {
                    self.recovered.insert(pid.as_u64(), now);
                }
            }
        }
        self.note_leadership(idx);
    }

    /// Election-safety tracking: record who leads each term; two
    /// different leaders in one term is the canonical consensus bug.
    fn note_leadership(&mut self, idx: usize) {
        let r = &self.replicas[idx];
        if !r.is_leader() {
            return;
        }
        let term = r.raft().term();
        let me = r.id();
        match self.term_leaders.get(&term) {
            Some(&prev) if prev != me => {
                self.election_violations.push(format!(
                    "election safety: term {term} led by replica {prev} and replica {me}"
                ));
            }
            Some(_) => {}
            None => {
                self.term_leaders.insert(term, me);
            }
        }
    }

    fn apply_lan(&mut self, actions: Vec<LanAction>) {
        for a in actions {
            match a {
                LanAction::Deliver {
                    at,
                    to,
                    frame,
                    recorder_ok,
                } => {
                    self.sched.schedule_at(
                        at,
                        QEv::Deliver {
                            to: to.0,
                            frame,
                            recorder_ok,
                        },
                    );
                }
                LanAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, QEv::LanTimer(token));
                }
                LanAction::TxOutcome { .. } => {}
            }
        }
    }

    /// Processes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((now, ev)) = self.sched.pop() else {
            return false;
        };
        self.dispatch(now, ev);
        true
    }

    fn dispatch(&mut self, now: SimTime, ev: QEv) {
        match ev {
            QEv::LanTimer(token) => {
                let actions = self.lan.timer(now, token);
                self.apply_lan(actions);
            }
            QEv::KernelTimer(node, token) => {
                if let Some(k) = self.kernels.get_mut(&node) {
                    let actions = k.on_timer(now, token);
                    self.apply_kernel(now, node, actions);
                }
            }
            QEv::ReplicaTimer(idx, token) => {
                let actions = self.replicas[idx].on_timer(now, token);
                self.apply_replica(now, idx, actions);
            }
            QEv::Deliver {
                to,
                frame,
                recorder_ok,
            } => {
                if to < self.n_nodes {
                    if let Some(k) = self.kernels.get_mut(&to) {
                        let actions = k.on_frame(now, &frame, recorder_ok);
                        self.apply_kernel(now, to, actions);
                    }
                } else if let Some(idx) = (to as usize).checked_sub(self.n_nodes as usize) {
                    if idx < self.replicas.len() {
                        let actions = self.replicas[idx].on_frame(now, &frame, recorder_ok);
                        self.apply_replica(now, idx, actions);
                    }
                }
            }
        }
        if now >= self.next_watchdog_scan {
            self.watchdog_scan(now);
            self.next_watchdog_scan = now + WATCHDOG_PERIOD;
        }
    }

    /// One watchdog pass over the group's observable state: the union
    /// of applied arrival sequences per process (gap freedom with a
    /// virtual-time deadline), every live replica's commit index
    /// (monotonicity), and the leadership view (ack-gating stall:
    /// a live majority must elect a leader within the deadline).
    fn watchdog_scan(&mut self, now: SimTime) {
        let mut union: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        for r in self.replicas.iter().filter(|r| r.is_up()) {
            for (&pid, seqs) in r.applied_log() {
                union
                    .entry(pid.as_u64())
                    .or_default()
                    .extend(seqs.keys().copied());
            }
        }
        for (pid, seqs) in &union {
            self.watchdog
                .scan_arrival_seqs(now, *pid, seqs.iter().copied());
        }
        let mut has_leader = false;
        for r in self.replicas.iter().filter(|r| r.is_up()) {
            self.watchdog
                .observe_commit_index(now, r.id(), r.raft().commit_index());
            has_leader |= r.is_leader();
        }
        let majority_live = self.live_replicas() * 2 > self.replicas.len();
        self.watchdog
            .observe_leadership(now, majority_live, has_leader);
        match (self.leaderless_since, has_leader) {
            (None, false) => self.leaderless_since = Some(now),
            (Some(since), true) => {
                self.leaderless.add_busy(since, now);
                self.leaderless_since = None;
            }
            _ => {}
        }
    }

    /// The online invariant watchdog's state so far.
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// Violations the watchdog has surfaced so far, in detection order.
    pub fn watchdog_violations(&self) -> &[String] {
        self.watchdog.violations()
    }

    /// Runs until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.sched.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.sched.now() < deadline
            && self
                .sched
                .peek_time()
                .map(|t| t >= deadline)
                .unwrap_or(true)
        {
            self.sched.advance_to(deadline);
        }
    }

    /// Installs a fault clock: [`QuorumWorld::run_until_or_fault`]
    /// pauses at each of its instants so a chaos driver can inject
    /// faults.
    pub fn set_fault_clock(&mut self, clock: publishing_sim::event::FaultClock) {
        self.sched.set_fault_clock(clock);
    }

    /// Runs until `deadline` or the next fault-clock instant, whichever
    /// comes first. Returns `Some(t)` when paused at a fault instant,
    /// `None` once `deadline` is reached with no fault due before it.
    pub fn run_until_or_fault(&mut self, deadline: SimTime) -> Option<SimTime> {
        use publishing_sim::event::Tick;
        loop {
            let fault_due = self.sched.next_fault().map(|f| f <= deadline);
            let event_due = self.sched.peek_time().map(|t| t <= deadline);
            if fault_due != Some(true) && event_due != Some(true) {
                if self.sched.now() < deadline {
                    self.sched.advance_to(deadline);
                }
                return None;
            }
            match self.sched.pop_or_fault() {
                Some(Tick::Fault(t)) => return Some(t),
                Some(Tick::Event(now, ev)) => self.dispatch(now, ev),
                None => return None,
            }
        }
    }

    /// Crashes a process (detected fault); the group leader's manager
    /// recovers it transparently.
    pub fn crash_process(&mut self, pid: ProcessId, reason: &str) {
        let now = self.now();
        if let Some(k) = self.kernels.get_mut(&pid.node.0) {
            self.crashes.push(now);
            let actions = k.crash_process(now, pid.local, reason);
            self.apply_kernel(now, pid.node.0, actions);
        }
    }

    /// Crashes a node; the leader's watchdog restarts it and replays
    /// its processes from the replicated arrival log.
    pub fn crash_node(&mut self, node: u32) {
        if let Some(k) = self.kernels.get_mut(&node) {
            self.crashes.push(self.sched.now());
            k.crash_node();
            self.lan.set_station_up(StationId(node), false);
        }
    }

    /// Crashes one quorum replica. A minority crash leaves the group
    /// live: the capture gate shrinks to the survivors and, if the
    /// leader died, a new election begins within a few timeouts.
    pub fn crash_replica(&mut self, idx: usize) {
        if !self.replicas[idx].is_up() {
            return;
        }
        self.crashes.push(self.now());
        self.replicas[idx].crash();
        // Commit index is volatile state: the restarted replica will
        // re-learn it from the leader, so the monotonicity floor resets.
        self.watchdog.reset_replica(self.replicas[idx].id());
        self.lan.set_station_up(self.replicas[idx].station(), false);
        self.refresh_required();
    }

    /// Restarts a crashed replica: recorder rebuild from stable
    /// storage, rejoin as follower, catch up from the leader's log or a
    /// snapshot.
    pub fn restart_replica(&mut self, idx: usize) {
        if self.replicas[idx].is_up() {
            return;
        }
        let now = self.now();
        self.lan.set_station_up(self.replicas[idx].station(), true);
        self.watchdog.reset_replica(self.replicas[idx].id());
        let actions = self.replicas[idx].restart(now);
        self.apply_replica(now, idx, actions);
        self.refresh_required();
    }

    /// Deduplicated outputs of one process.
    pub fn outputs_of(&self, pid: ProcessId) -> Vec<String> {
        let mut by_seq: BTreeMap<u64, &OutputLine> = BTreeMap::new();
        for o in self.outputs.iter().filter(|o| o.pid == pid) {
            by_seq.entry(o.seq).or_insert(o);
        }
        by_seq
            .values()
            .map(|o| String::from_utf8_lossy(&o.bytes).into_owned())
            .collect()
    }

    /// The raw (possibly duplicated) output lines of one process.
    pub fn raw_outputs_of(&self, pid: ProcessId) -> Vec<String> {
        self.outputs
            .iter()
            .filter(|o| o.pid == pid)
            .map(|o| String::from_utf8_lossy(&o.bytes).into_owned())
            .collect()
    }

    /// A fingerprint of every process's deduplicated output.
    pub fn output_fingerprint(&self) -> u64 {
        let mut per_pid: BTreeMap<ProcessId, BTreeMap<u64, &[u8]>> = BTreeMap::new();
        for o in &self.outputs {
            per_pid
                .entry(o.pid)
                .or_default()
                .entry(o.seq)
                .or_insert(&o.bytes);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (pid, lines) in per_pid {
            for (seq, bytes) in lines {
                for b in pid
                    .as_u64()
                    .to_le_bytes()
                    .iter()
                    .chain(seq.to_le_bytes().iter())
                    .chain(bytes.iter())
                {
                    h ^= *b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
        }
        h
    }

    /// The quorum safety oracles, evaluated over the whole run:
    ///
    /// 1. **Election safety** — at most one leader per term (tracked
    ///    continuously as leadership changes hands).
    /// 2. **State-machine safety** — no replica ever applied the same
    ///    arrival sequence with two different messages.
    /// 3. **Log matching** — where two replicas both applied a
    ///    sequence, they applied the same message.
    /// 4. **Gap freedom** — the union of applied sequences per process
    ///    is contiguous from zero: leadership changes neither skip nor
    ///    double-assign an arrival number.
    pub fn quorum_invariant_failures(&self) -> Vec<String> {
        let mut out = self.election_violations.clone();
        for r in &self.replicas {
            out.extend(r.audit_violations().iter().cloned());
        }
        // Cross-replica agreement + union gap check.
        let mut union: BTreeMap<ProcessId, BTreeMap<u64, (u32, MessageId)>> = BTreeMap::new();
        for r in &self.replicas {
            for (&pid, seqs) in r.applied_log() {
                let u = union.entry(pid).or_default();
                for (&seq, &id) in seqs {
                    match u.get(&seq) {
                        Some(&(other, prev)) if prev != id => {
                            out.push(format!(
                                "log matching: pid {pid:?} seq {seq} is {prev:?} on replica \
                                 {other} but {id:?} on replica {}",
                                r.id()
                            ));
                        }
                        Some(_) => {}
                        None => {
                            u.insert(seq, (r.id(), id));
                        }
                    }
                }
            }
        }
        for (pid, seqs) in &union {
            let n = seqs.len() as u64;
            if n > 0 {
                let (&first, _) = seqs.iter().next().expect("non-empty");
                let (&last, _) = seqs.iter().next_back().expect("non-empty");
                if first != 0 || last + 1 != n {
                    out.push(format!(
                        "gap freedom: pid {pid:?} applied {n} seqs spanning [{first}, {last}]"
                    ));
                }
            }
        }
        out
    }

    /// Total committed arrival sequences across the group (union over
    /// replicas, deduplicated per pid × seq).
    pub fn sequenced_total(&self) -> u64 {
        let mut union: BTreeMap<ProcessId, BTreeMap<u64, MessageId>> = BTreeMap::new();
        for r in &self.replicas {
            for (&pid, seqs) in r.applied_log() {
                union.entry(pid).or_default().extend(seqs.iter());
            }
        }
        union.values().map(|s| s.len() as u64).sum()
    }

    /// Total completed recoveries across the group.
    pub fn recoveries_completed(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.recorder_node().manager().stats().completed.get())
            .sum()
    }

    /// Every span log, in deterministic order: kernels by node id, then
    /// replicas by index.
    pub fn span_logs(&self) -> Vec<&publishing_obs::span::SpanLog> {
        let mut logs: Vec<_> = self.kernels.values().map(|k| k.spans()).collect();
        logs.extend(
            self.replicas
                .iter()
                .map(|r| r.recorder_node().recorder().spans()),
        );
        logs
    }

    /// Order-sensitive fingerprint over every span log.
    pub fn obs_fingerprint(&self) -> u64 {
        publishing_obs::span::combined_fingerprint(self.span_logs())
    }

    /// The happens-before DAG over every component's span log.
    pub fn causal_graph(&self) -> publishing_obs::causal::CausalGraph {
        publishing_obs::causal::CausalGraph::build(self.span_logs())
    }

    /// Virtual instants of every injected crash, in injection order.
    pub fn crash_times(&self) -> &[SimTime] {
        &self.crashes
    }

    /// Completed recoveries: packed pid → instant the manager committed.
    pub fn recoveries_done(&self) -> &BTreeMap<u64, SimTime> {
        &self.recovered
    }

    /// The measured crash→convergence window.
    pub fn recovery_window(&self) -> Option<(SimTime, SimTime)> {
        let crash = *self.crashes.first()?;
        let converged = *self.recovered.values().max()?;
        (converged >= crash).then_some((crash, converged))
    }

    /// Assembles per-message lifecycle spans from every component's log.
    pub fn spans(
        &self,
    ) -> BTreeMap<publishing_obs::span::MsgKey, publishing_obs::span::MessageSpan> {
        publishing_obs::span::assemble(self.span_logs())
    }

    /// Point-in-time consensus health of every replica.
    pub fn quorum_health(&self) -> Vec<publishing_obs::probe::QuorumHealth> {
        self.replicas
            .iter()
            .map(|r| {
                let raft = r.raft();
                publishing_obs::probe::QuorumHealth {
                    replica: r.id(),
                    live: r.is_up(),
                    leader: r.is_leader(),
                    term: raft.term(),
                    elections: raft.stats().elections_started,
                    commit_index: raft.commit_index(),
                    applied_index: raft.applied_index(),
                    replication_lag: if r.is_up() {
                        raft.worst_follower_lag()
                    } else {
                        0
                    },
                    compacted: raft.snap_index(),
                }
            })
            .collect()
    }

    /// Recovery-lag probes for every process, read from the leader (or
    /// the first live replica when leaderless).
    pub fn recovery_lags(&self) -> Vec<publishing_obs::probe::RecoveryLag> {
        let Some(idx) = self
            .leader()
            .or_else(|| self.replicas.iter().position(|r| r.is_up()))
        else {
            return Vec::new();
        };
        let suppressed =
            publishing_core::obs::suppressed_by_sender(self.kernels.values().map(|k| k.spans()));
        publishing_core::obs::recovery_lags(
            self.replicas[idx].recorder_node().recorder(),
            self.now(),
            &suppressed,
        )
    }

    /// Snapshots every component's instruments into one registry.
    pub fn collect_metrics(&self) -> publishing_obs::registry::MetricsRegistry {
        let now = self.now();
        let mut reg = publishing_obs::registry::MetricsRegistry::new();
        for k in self.kernels.values() {
            publishing_core::obs::kernel_metrics(&mut reg, k);
        }
        for (i, r) in self.replicas.iter().enumerate() {
            publishing_core::obs::recorder_node_metrics(
                &mut reg,
                &format!("quorum/{i}"),
                r.recorder_node(),
                now,
            );
            reg.histogram(
                &format!("quorum/{i}/consensus/commit_latency_us"),
                r.commit_latency_us(),
            );
            reg.linear_histogram(
                &format!("quorum/{i}/consensus/replication_lag"),
                r.replication_lag_hist(),
            );
        }
        for h in self.quorum_health() {
            h.into_registry(&mut reg);
        }
        self.watchdog.into_registry(&mut reg);
        publishing_obs::probe::MediumHealth::from_lan(self.lan.stats(), now)
            .into_registry(&mut reg);
        reg
    }

    /// Builds the full observability report for the run so far.
    pub fn obs_report(&self) -> publishing_obs::report::ObsReport {
        let now = self.now();
        let horizon = now.saturating_since(SimTime::ZERO);
        let mut profile = publishing_obs::profile::TimeProfile::new();
        let mut kernel_cpu = publishing_sim::time::SimDuration::ZERO;
        for k in self.kernels.values() {
            kernel_cpu += k.stats().cpu_used;
        }
        profile.charge("kernel_cpu", kernel_cpu);
        let mut publish_cpu = publishing_sim::time::SimDuration::ZERO;
        let mut disk_busy = publishing_sim::time::SimDuration::ZERO;
        for r in &self.replicas {
            let rec = r.recorder_node().recorder();
            publish_cpu += rec.stats().cpu_used;
            let store = rec.store();
            for i in 0..store.n_disks() {
                disk_busy += store.disk_stats(i).busy.busy_time(now);
            }
        }
        profile.charge("publish_cpu", publish_cpu);
        profile.charge("stable_store_io", disk_busy);
        profile.charge("medium_busy", self.lan.stats().busy.busy_time(now));

        let mut metrics = self.collect_metrics();
        let mut recovery = self.recovery_lags();
        let graph = (!self.recovered.is_empty()).then(|| self.causal_graph());
        if let Some(g) = &graph {
            for lag in &mut recovery {
                let Some(&done) = self.recovered.get(&lag.subject) else {
                    continue;
                };
                let Some(&crash) = self.crashes.iter().filter(|&&c| c <= done).max() else {
                    continue;
                };
                lag.recovery_ms = done.saturating_since(crash).as_millis_f64();
                lag.critical_path_ms = g
                    .critical_path(crash, done, Some(lag.subject))
                    .map(|p| p.total().as_millis_f64())
                    .unwrap_or(lag.recovery_ms);
            }
        }
        let critical_path = self
            .recovery_window()
            .and_then(|(crash, converged)| graph.as_ref()?.critical_path(crash, converged, None));
        if let Some(cp) = &critical_path {
            cp.into_registry(&mut metrics);
        }

        let spans = self.spans();
        let logs = self.span_logs();
        let quorum = self.quorum_health();
        let mut commit = publishing_sim::stats::LogHistogram::new();
        for r in &self.replicas {
            commit.merge(r.commit_latency_us());
        }
        let consensus = publishing_obs::report::ConsensusStats {
            commits: commit.summary().count(),
            commit_p50_us: commit.quantile(0.5),
            commit_p99_us: commit.quantile(0.99),
            replication_lag_p95: self
                .replication_lag()
                .map(|h| h.quantile(0.95))
                .unwrap_or(0.0),
            elections: quorum.iter().map(|h| h.elections).sum(),
        };
        let watchdog = publishing_obs::report::WatchdogSummary {
            checks: self.watchdog.checks(),
            violations: self.watchdog.violations().to_vec(),
        };
        let mut utilization = publishing_core::obs::utilization_report(
            self.kernels.values(),
            self.replicas
                .iter()
                .enumerate()
                .map(|(i, r)| (i as u32, r.recorder_node().recorder())),
            self.lan.as_ref(),
            now,
        );
        let mut leaderless = self.leaderless.clone();
        if let Some(since) = self.leaderless_since {
            leaderless.add_busy(since, now);
        }
        if !leaderless.is_empty() {
            utilization
                .resources
                .push(publishing_sim::ledger::ResourceUsage::from_timeline(
                    publishing_sim::ledger::ResourceKind::Consensus,
                    "consensus:leaderless".into(),
                    0,
                    0,
                    &leaderless,
                    horizon,
                    0.0,
                    0,
                    consensus.elections,
                    0,
                ));
        }
        publishing_obs::report::ObsReport {
            schema: publishing_obs::report::REPORT_SCHEMA_VERSION,
            at_ms: now.as_millis_f64(),
            metrics,
            recovery,
            shards: Vec::new(),
            medium: Some(publishing_obs::probe::MediumHealth::from_lan(
                self.lan.stats(),
                now,
            )),
            profile,
            horizon,
            latencies: publishing_obs::profile::stage_latencies(&spans),
            sched: self.scheduler_probe(),
            queue_depths: self.queue_depths(),
            spans_total: logs.iter().map(|l| l.total()).sum(),
            span_fingerprint: self.obs_fingerprint(),
            critical_path,
            quorum,
            consensus: Some(consensus),
            watchdog: Some(watchdog),
            workload: None,
            utilization: Some(utilization),
            whatif: None,
            forensics: None,
        }
    }

    /// Follower replication-lag distribution merged across replicas
    /// (samples are taken on the leader, once per consensus tick).
    pub fn replication_lag(&self) -> Option<publishing_sim::stats::LinearHistogram> {
        let mut merged: Option<publishing_sim::stats::LinearHistogram> = None;
        for r in &self.replicas {
            let h = r.replication_lag_hist();
            match &mut merged {
                Some(m) => m.merge(h),
                None => merged = Some(h.clone()),
            }
        }
        merged
    }

    /// Caps every component span log (kernels and replicas) at
    /// `capacity` retained events. `0` keeps fingerprints and totals
    /// but retains nothing — the spans-disabled configuration of the
    /// overhead benchmark.
    pub fn set_span_capacity(&mut self, capacity: usize) {
        for k in self.kernels.values_mut() {
            k.set_span_capacity(capacity);
        }
        for r in &mut self.replicas {
            r.set_span_capacity(capacity);
        }
    }

    /// Event-queue statistics of the world's scheduler.
    pub fn scheduler_probe(&self) -> publishing_obs::probe::SchedulerProbe {
        publishing_obs::probe::SchedulerProbe {
            delivered: self.sched.delivered(),
            scheduled: self.sched.scheduled(),
            pending: self.sched.pending() as u64,
            peak_pending: self.sched.peak_pending() as u64,
        }
    }

    /// Pending-buffer depth distribution merged across every replica's
    /// recorder.
    pub fn queue_depths(&self) -> Option<publishing_sim::stats::LinearHistogram> {
        let mut merged: Option<publishing_sim::stats::LinearHistogram> = None;
        for r in &self.replicas {
            let h = &r.recorder_node().recorder().stats().depth_hist;
            match &mut merged {
                Some(m) => m.merge(h),
                None => merged = Some(h.clone()),
            }
        }
        merged
    }
}

impl core::fmt::Debug for QuorumWorld {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("QuorumWorld")
            .field("nodes", &self.n_nodes)
            .field("replicas", &self.replicas.len())
            .field("leader", &self.leader())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_demos::ids::Channel;
    use publishing_demos::programs::{self, PingClient};

    fn registry() -> ProgramRegistry {
        let mut reg = ProgramRegistry::new();
        programs::register_standard(&mut reg);
        reg.register("ping10", || Box::new(PingClient::new(10)));
        reg
    }

    fn invariants_clean(w: &QuorumWorld) {
        let fails = w.quorum_invariant_failures();
        assert!(fails.is_empty(), "quorum invariants violated: {fails:?}");
    }

    #[test]
    fn ping_completes_under_quorum_sequencing() {
        let mut w = QuorumWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_secs(5));
        let out = w.outputs_of(client);
        assert_eq!(out.len(), 11, "{out:?}");
        assert_eq!(out.last().unwrap(), "done");
        assert!(w.leader().is_some(), "a leader was elected");
        assert!(w.sequenced_total() > 0, "arrivals were quorum-sequenced");
        invariants_clean(&w);
    }

    #[test]
    fn replicas_apply_identical_arrival_orders() {
        let mut w = QuorumWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.outputs_of(client).len(), 11);
        // Every live replica converges on the same applied log.
        let logs: Vec<_> = w.replicas.iter().map(|r| r.applied_log()).collect();
        assert!(!logs[0].is_empty());
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);
        invariants_clean(&w);
    }

    #[test]
    fn leader_crash_fails_over_without_gaps_or_dups() {
        let mut w = QuorumWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        // Let traffic start and a leader emerge, then kill it mid-run.
        w.run_until(SimTime::from_millis(300));
        let old = w.leader().expect("initial leader");
        w.crash_replica(old);
        w.run_until(SimTime::from_secs(12));
        let new = w.leader().expect("new leader elected");
        assert_ne!(new, old, "a surviving replica leads");
        let out = w.outputs_of(client);
        assert_eq!(out.len(), 11, "{out:?}");
        invariants_clean(&w);
    }

    #[test]
    fn crashed_replica_rejoins_and_catches_up() {
        let mut w = QuorumWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_millis(200));
        let victim = (w.leader().expect("leader") + 1) % 3;
        w.crash_replica(victim);
        w.run_until(SimTime::from_secs(4));
        w.restart_replica(victim);
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.outputs_of(client).len(), 11);
        // The rejoined follower's applied log converges with the rest.
        let leader = w.leader().expect("leader");
        assert_eq!(
            w.replicas[victim].applied_log(),
            w.replicas[leader].applied_log()
        );
        invariants_clean(&w);
    }

    #[test]
    fn node_crash_recovers_via_leader_replay() {
        let mut w = QuorumWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_millis(120));
        w.crash_node(1);
        w.run_until(SimTime::from_secs(30));
        let out = w.outputs_of(client);
        assert_eq!(out.len(), 11, "{out:?}");
        assert!(w.recoveries_completed() >= 1, "leader drove recovery");
        invariants_clean(&w);
    }

    #[test]
    fn watchdog_runs_clean_and_report_has_consensus_sections() {
        let mut w = QuorumWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let _client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_secs(5));
        assert!(w.watchdog().checks() > 0, "watchdog scanned");
        assert!(w.watchdog().is_clean(), "{:?}", w.watchdog_violations());
        let report = w.obs_report();
        assert_eq!(report.quorum.len(), 3);
        let c = report.consensus.as_ref().unwrap();
        assert!(c.commits > 0, "leader measured commit latencies");
        assert!(c.commit_p50_us > 0);
        assert!(report.watchdog.as_ref().unwrap().checks > 0);
        let json = report.render_json();
        assert!(json.contains("\"quorum\":[{\"replica\":0"));
        assert!(json.contains("\"consensus\":{\"commits\":"));
        assert!(json.contains("\"watchdog\":{\"checks\":"));
        assert!(json.contains("quorum/0/consensus/commit_latency_us"));
    }

    #[test]
    fn failover_records_election_spans() {
        use publishing_obs::span::Stage;
        let mut w = QuorumWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_millis(300));
        let old = w.leader().expect("initial leader");
        w.crash_replica(old);
        w.run_until(SimTime::from_secs(12));
        assert_eq!(w.outputs_of(client).len(), 11);
        let elects: usize = w
            .span_logs()
            .iter()
            .map(|l| l.events().filter(|e| e.stage == Stage::Elect).count())
            .sum();
        assert!(
            elects >= 2,
            "both the initial election and the failover left tenure spans, got {elects}"
        );
        // The failover run still satisfies the online watchdog.
        assert!(w.watchdog().is_clean(), "{:?}", w.watchdog_violations());
    }

    #[test]
    fn quorum_health_probe_reflects_leadership() {
        let mut w = QuorumWorld::new(1, 3, registry());
        w.run_until(SimTime::from_secs(1));
        let health = w.quorum_health();
        assert_eq!(health.len(), 3);
        assert_eq!(health.iter().filter(|h| h.leader).count(), 1);
        let term = health.iter().find(|h| h.leader).unwrap().term;
        assert!(term >= 1);
        let reg = w.collect_metrics();
        assert!(reg.gauge_value("quorum/0/health/live").is_some());
    }
}
