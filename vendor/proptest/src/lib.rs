//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim reimplements the subset of proptest's API the workspace uses:
//! the `proptest!`/`prop_oneof!`/`prop_assert*!` macros, `Strategy` with
//! `prop_map`, `Just`, `any::<T>()`, integer-range strategies, tuple
//! strategies, `collection::{vec, btree_map}`, `option::of`, and a tiny
//! `[class]{m,n}` string-pattern strategy.
//!
//! Differences from real proptest, on purpose:
//! - cases are generated from a fixed per-test seed, so runs are fully
//!   deterministic (no `.proptest-regressions` files are read/written);
//! - there is no shrinking — a failing case panics with its case index
//!   so it can be replayed as-is;
//! - `prop_assert*!` panics instead of returning `Err`, which is
//!   equivalent under this runner.

#![forbid(unsafe_code)]

/// Core trait + combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // Object-safe indirection so differently-typed strategies can share
    // a `Vec` inside `Union`.
    trait ObjStrategy<T> {
        fn generate_obj(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ObjStrategy<S::Value> for S {
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn ObjStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    /// Weighted choice between strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights summed to total")
        }
    }

    /// Uniform values over the whole domain of `T`; see [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Trait backing `any::<T>()`.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u128) - (self.start as u128);
                    assert!(span > 0, "empty range strategy");
                    (self.start as u128 + rng.below_u128(span)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                    (*self.start() as u128 + rng.below_u128(span)) as $t
                }
            }
        )+};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

    /// String-pattern strategy: a `&'static str` *is* a strategy in
    /// proptest. This shim supports concatenations of literal chars and
    /// `[a-z...]` classes, each optionally repeated `{m}` or `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_map}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// Inclusive size bounds, converted from range literals.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    /// Maps with `size` entries; keys drawn from `keys`, values from
    /// `values`. If the key space is too small to reach the chosen
    /// size, the map is as large as distinct draws allow.
    pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Bounded attempts: duplicate keys do not loop forever.
            for _ in 0..n.saturating_mul(8).max(8) {
                if map.len() >= n {
                    break;
                }
                map.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            map
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The `[class]{m,n}` pattern generator backing `&str` strategies.
pub mod string {
    use crate::test_runner::TestRng;

    /// Generates a string from a regex-like pattern made of literal
    /// chars and `[..]` classes with optional `{m}` / `{m,n}` counts.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let choices: Vec<char> = match c {
                '[' => {
                    let mut class = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().unwrap();
                                let hi = chars.next().unwrap();
                                class.extend((lo..=hi).collect::<Vec<_>>());
                            }
                            Some(ch) => {
                                if let Some(p) = prev.replace(ch) {
                                    class.push(p);
                                }
                            }
                            None => panic!("unterminated [class] in pattern {pattern:?}"),
                        }
                    }
                    if let Some(p) = prev {
                        class.push(p);
                    }
                    assert!(!class.is_empty(), "empty [class] in pattern {pattern:?}");
                    class
                }
                lit => vec![lit],
            };
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                    None => {
                        let m: usize = spec.parse().unwrap();
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(choices[rng.below(choices.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Deterministic runner + config.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`. Only
    /// `cases` is meaningful to this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; this shim trades depth for
            // tier-1 wall-clock and relies on determinism for repro.
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// xorshift64* — deterministic, seeded per (test, case).
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed | 0x9E37_79B9_7F4A_7C15)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        pub fn below_u128(&mut self, n: u128) -> u128 {
            (((self.next_u64() as u128) << 64) | self.next_u64() as u128) % n
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    // Prints which case failed when a property panics, since there is
    // no shrinking: rerunning the test replays the same cases.
    struct CaseReporter<'a> {
        name: &'a str,
        case: u32,
    }

    impl Drop for CaseReporter<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest shim: property `{}` failed on case {} (deterministic; rerun to replay)",
                    self.name, self.case
                );
            }
        }
    }

    /// Runs `body` once per case with a case-seeded RNG.
    pub fn run(name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut TestRng)) {
        let base = fnv1a(name);
        for case in 0..config.cases.max(1) {
            let reporter = CaseReporter { name, case };
            let mut rng = TestRng::new(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            body(&mut rng);
            std::mem::forget(reporter);
        }
    }
}

/// `use proptest::prelude::*;` — the workspace's single import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests. Each case draws its arguments from the given
/// strategies and runs the body; assertion macros panic on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(
                    stringify!($name),
                    &__pt_config,
                    |__pt_rng: &mut $crate::test_runner::TestRng| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&($strat), __pt_rng);
                        )*
                        $body
                    },
                );
            }
        )*
    };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Like `assert!`, inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assert_eq failed:\n  left: {:?}\n right: {:?}",
                l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assert_eq failed ({}):\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(1usize..=3), &mut rng);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn string_pattern_matches_class_and_counts() {
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_honors_weights_loosely() {
        let strat = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let mut rng = TestRng::new(13);
        let trues = (0..1000)
            .filter(|_| Strategy::generate(&strat, &mut rng))
            .count();
        assert!(trues > 700, "expected heavy bias, got {trues}/1000");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro pipeline end-to-end: tuples, maps, collections.
        #[test]
        fn macro_pipeline_works(
            pair in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a as u32, b)),
            items in crate::collection::vec(0u32..100, 0..10),
            maybe in crate::option::of(1u64..5),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(items.iter().filter(|&&x| x >= 100).count(), 0);
            if let Some(m) = maybe {
                prop_assert!((1..5).contains(&m));
            }
        }
    }
}
