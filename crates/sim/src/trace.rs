//! Simulation event tracing.
//!
//! Traces serve two purposes here. First, debugging: a bounded ring of the
//! most recent events with category filters. Second, *verification*: the
//! determinism tests fingerprint a run by hashing its trace, so two runs of
//! the same seed must produce bit-identical traces, and a recovered
//! process's trace must replay its pre-crash prefix exactly.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Coarse event categories, used for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Medium-level frame transmission/delivery/collision.
    Net,
    /// Kernel calls and message queue activity.
    Kernel,
    /// Transport protocol: acks, retransmits, duplicate suppression.
    Transport,
    /// Recorder activity: publishing, database updates, disk writes.
    Recorder,
    /// Crash detection and recovery progress.
    Recovery,
    /// Checkpoint generation and policy decisions.
    Checkpoint,
    /// Application-level sends/receives (the externally visible behaviour).
    App,
    /// Injected faults.
    Fault,
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event occurred.
    pub at: SimTime,
    /// Category for filtering.
    pub category: Category,
    /// Free-form description (stable across runs of the same seed).
    pub text: String,
}

/// A bounded in-memory trace ring.
#[derive(Debug)]
pub struct Trace {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    total: u64,
    fnv: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

impl Trace {
    /// Creates a trace ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            ring: VecDeque::new(),
            capacity,
            enabled: true,
            total: 0,
            fnv: FNV_OFFSET,
        }
    }

    /// Creates a disabled trace (events are counted and hashed but not stored).
    pub fn disabled() -> Self {
        let mut t = Trace::new(0);
        t.enabled = false;
        t
    }

    /// Enables or disables event storage (hashing continues regardless).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records an event.
    pub fn emit(&mut self, at: SimTime, category: Category, text: impl Into<String>) {
        let text = text.into();
        // The monotone event sequence number is folded into the hash so the
        // fingerprint covers every event ever emitted — ring eviction cannot
        // silently drop an event from the oracle — and each event's byte
        // encoding is framed (seq + explicit text length) so two different
        // event streams can never concatenate to the same byte sequence.
        let seq = self.total;
        self.total += 1;
        let mut h = self.fnv;
        for b in seq
            .to_le_bytes()
            .iter()
            .chain(at.as_nanos().to_le_bytes().iter())
            .chain([category as u8].iter())
            .chain((text.len() as u64).to_le_bytes().iter())
            .chain(text.as_bytes())
        {
            h ^= *b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.fnv = h;
        if self.enabled && self.capacity > 0 {
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(TraceEvent { at, category, text });
        }
    }

    /// Returns the total number of events emitted (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns the running fingerprint of all events ever emitted.
    ///
    /// Two runs with identical event streams have identical fingerprints;
    /// this is the primary determinism oracle in the test suite.
    pub fn fingerprint(&self) -> u64 {
        self.fnv
    }

    /// Returns the retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Returns retained events of one category, oldest first.
    pub fn events_in(&self, category: Category) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter().filter(move |e| e.category == category)
    }

    /// Renders the retained events as lines, for debugging output.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in &self.ring {
            s.push_str(&format!("{} [{:?}] {}\n", e.at, e.category, e.text));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(2);
        t.emit(SimTime::from_millis(1), Category::Net, "a");
        t.emit(SimTime::from_millis(2), Category::Net, "b");
        t.emit(SimTime::from_millis(3), Category::Net, "c");
        let texts: Vec<_> = t.events().map(|e| e.text.as_str()).collect();
        assert_eq!(texts, ["b", "c"]);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn fingerprint_stable_across_identical_streams() {
        let mut a = Trace::new(1);
        let mut b = Trace::disabled();
        for i in 0..100u64 {
            a.emit(SimTime::from_nanos(i), Category::Kernel, format!("ev{i}"));
            b.emit(SimTime::from_nanos(i), Category::Kernel, format!("ev{i}"));
        }
        // Storage policy must not affect the fingerprint.
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_sensitive_to_content_and_order() {
        let mut a = Trace::disabled();
        let mut b = Trace::disabled();
        a.emit(SimTime::ZERO, Category::Net, "x");
        a.emit(SimTime::ZERO, Category::Net, "y");
        b.emit(SimTime::ZERO, Category::Net, "y");
        b.emit(SimTime::ZERO, Category::Net, "x");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_sensitive_to_category() {
        let mut a = Trace::disabled();
        let mut b = Trace::disabled();
        a.emit(SimTime::ZERO, Category::Net, "x");
        b.emit(SimTime::ZERO, Category::App, "x");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_unambiguous_at_event_boundaries() {
        // Regression: the old fingerprint concatenated raw event bytes with
        // no framing, so the two-event stream
        //   (t=0, Net, "x"), (t2, c2, "y")
        // hashed identically to the single event
        //   (t=0, Net, "x" ++ t2_le_bytes ++ [c2] ++ "y").
        // Framing each event with its sequence number and text length makes
        // these distinct.
        let t2 = SimTime::from_nanos(u64::from_le_bytes(*b"AAAAAAAA"));
        let c2 = Category::Net;
        let mut two = Trace::disabled();
        two.emit(SimTime::ZERO, Category::Net, "x");
        two.emit(t2, c2, "y");

        let mut glued = String::from("x");
        glued.push_str("AAAAAAAA"); // t2.as_nanos().to_le_bytes()
        glued.push(c2 as u8 as char);
        glued.push('y');
        let mut one = Trace::disabled();
        one.emit(SimTime::ZERO, Category::Net, glued);

        assert_ne!(two.fingerprint(), one.fingerprint());
    }

    #[test]
    fn fingerprint_independent_of_ring_capacity_under_eviction() {
        // A tiny ring that evicts aggressively and an unbounded one must
        // agree: the fingerprint hashes the emission stream, not the
        // surviving ring contents.
        let mut small = Trace::new(1);
        let mut large = Trace::new(1024);
        for i in 0..300u64 {
            small.emit(SimTime::from_nanos(i), Category::Recorder, format!("m{i}"));
            large.emit(SimTime::from_nanos(i), Category::Recorder, format!("m{i}"));
        }
        assert_eq!(small.events().count(), 1);
        assert_eq!(small.fingerprint(), large.fingerprint());
        assert_eq!(small.total(), large.total());
    }

    #[test]
    fn category_filter() {
        let mut t = Trace::new(10);
        t.emit(SimTime::ZERO, Category::Net, "n");
        t.emit(SimTime::ZERO, Category::Recovery, "r");
        assert_eq!(t.events_in(Category::Recovery).count(), 1);
        assert_eq!(t.events_in(Category::Net).count(), 1);
        assert_eq!(t.events_in(Category::Kernel).count(), 0);
    }

    #[test]
    fn dump_contains_events() {
        let mut t = Trace::new(4);
        t.emit(SimTime::from_millis(5), Category::Fault, "crash node 2");
        assert!(t.dump().contains("crash node 2"));
        assert!(t.dump().contains("Fault"));
    }
}
