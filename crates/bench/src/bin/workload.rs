//! Workload gate: the closed-loop capacity search as a CI check.
//!
//! Usage: `workload [--seed N] [--smoke]`
//!
//! - `--seed N` — base seed for the swept shapes (default 1);
//! - `--smoke` — small CI run: the flash-crowd shape only, search
//!   ceiling 16 users.
//!
//! For each swept shape the gate binary-searches the capacity knee on
//! every topology — each searched point judged against the default
//! SLOs *and* a seeded fault schedule through the chaos recovery
//! oracle — then re-runs the whole search and fails unless the second
//! pass reproduces the first exactly: same knee, same searched user
//! sequence, same per-point verdicts. A nondeterministic knee would
//! make the `bench_compare` capacity gate flaky, so determinism is
//! itself the tested invariant. The single-recorder knee must also be
//! at least one user: the paper's medium sustains *some* load, and a
//! zero knee there means the stack regressed below it.

use publishing_chaos::Topology;
use publishing_obs::slo::SloSpec;
use publishing_workload::capacity::topology_name;
use publishing_workload::{canonical_shapes, find_knee, SearchParams, WorkloadSpec};

fn usage() -> ! {
    eprintln!("usage: workload [--seed N] [--smoke]");
    std::process::exit(2);
}

/// One search pass reduced to its comparable skeleton.
fn skeleton(knee: &publishing_workload::Knee) -> (u32, Vec<(u32, bool)>) {
    (
        knee.knee_users,
        knee.trials.iter().map(|t| (t.users, t.pass)).collect(),
    )
}

fn gate(name: &str, spec: &WorkloadSpec, params: &SearchParams) -> Result<(), String> {
    for topo in [Topology::Single, Topology::Sharded, Topology::Quorum] {
        let tn = topology_name(topo);
        let first = find_knee(name, topo, spec, &SloSpec::default(), params);
        let second = find_knee(name, topo, spec, &SloSpec::default(), params);
        if skeleton(&first) != skeleton(&second) {
            return Err(format!(
                "[{name}/{tn}] knee search is not deterministic: \
                 {:?} vs {:?}",
                skeleton(&first),
                skeleton(&second)
            ));
        }
        if topo == Topology::Single && first.knee_users == 0 {
            return Err(format!(
                "[{name}/{tn}] zero capacity: even one user missed the SLOs \
                 ({})",
                first
                    .trials
                    .first()
                    .map(|t| t.violations.join("; "))
                    .unwrap_or_default()
            ));
        }
        println!(
            "[{name}/{tn}] knee={} users ({} trials, deterministic)",
            first.knee_users,
            first.trials.len()
        );
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = v,
                _ => usage(),
            },
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }

    let params = SearchParams {
        max_users: if smoke { 16 } else { 64 },
        ..SearchParams::default()
    };
    let shapes = canonical_shapes(seed);
    let swept: Vec<_> = if smoke {
        shapes
            .into_iter()
            .filter(|(n, _)| *n == "flash_crowd")
            .collect()
    } else {
        shapes
    };
    for (name, spec) in &swept {
        if let Err(e) = gate(name, spec, &params) {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
    println!("workload gate passed ({} shape(s))", swept.len());
}
