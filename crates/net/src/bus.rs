//! An idealized broadcast bus.
//!
//! `PerfectBus` is the "reliable broadcast network" the thesis assumes and
//! simulates on its Z8000 star and VAX UNIX testbeds (§4.1): every frame
//! reaches every attached, live station after a fixed serialization +
//! propagation delay, with no contention. Loss/corruption injection and
//! recorder gating still apply, so transport and recovery logic above it
//! is exercised fully; the contention-accurate media live in
//! [`crate::ethernet`] and [`crate::token_ring`].

use crate::frame::{Frame, StationId};
use crate::lan::{
    route_required, DeliveryFanout, Lan, LanAction, LanConfig, LanStats, RecorderRouter,
};
use publishing_sim::fault::FaultPlan;
use publishing_sim::rng::DetRng;
use publishing_sim::time::SimTime;
use std::collections::BTreeMap;

/// An idealized contention-free broadcast medium.
pub struct PerfectBus {
    cfg: LanConfig,
    stations: BTreeMap<StationId, bool>,
    recorders: Vec<StationId>,
    router: Option<RecorderRouter>,
    faults: FaultPlan,
    rng: DetRng,
    stats: LanStats,
    /// Accounting cursor: the virtual time at which a serial wire would
    /// finish every frame submitted so far. Delivery timing ignores it
    /// (the bus is contention-free); it exists so the busy ledger
    /// charges each frame its serialization time back-to-back, making
    /// measured wire utilization equal the λ·S utilization law exactly
    /// and giving the queueing cross-validation its contention-free
    /// baseline.
    wire_free_at: SimTime,
}

impl PerfectBus {
    /// Creates a bus with the given configuration and no fault injection.
    pub fn new(cfg: LanConfig) -> Self {
        let rng = DetRng::new(cfg.seed ^ 0xB05);
        PerfectBus {
            cfg,
            stations: BTreeMap::new(),
            recorders: Vec::new(),
            router: None,
            faults: FaultPlan::new(),
            rng,
            stats: LanStats::default(),
            wire_free_at: SimTime::ZERO,
        }
    }

    fn live_receivers(&self, frame: &Frame) -> Vec<StationId> {
        // Every live station but the sender hears the frame; the sender
        // also receives its own frame when it addressed itself — the
        // published-intranode-message path of §4.4.1, where a node's
        // messages to itself go out on the wire so the recorder sees them.
        let to_self = frame.dst == crate::frame::Destination::Station(frame.src);
        self.stations
            .iter()
            .filter(|&(&st, &up)| up && (st != frame.src || to_self))
            .map(|(&st, _)| st)
            .collect()
    }

    fn required_recorders(&self) -> Vec<StationId> {
        // A required recorder gates traffic even while down — §3.3.4: "all
        // message traffic to processes must be suspended whenever the
        // recorder goes down." With multiple recorders, the survivors
        // cover for a dead one by *removing* it from the required set
        // (§6.3), an explicit act of the recovery layer.
        self.recorders.clone()
    }
}

impl Lan for PerfectBus {
    fn attach(&mut self, station: StationId) {
        self.stations.insert(station, true);
    }

    fn set_station_up(&mut self, station: StationId, up: bool) {
        if let Some(s) = self.stations.get_mut(&station) {
            *s = up;
        }
    }

    fn set_required_recorders(&mut self, recorders: Vec<StationId>) {
        self.recorders = recorders;
    }

    fn set_recorder_router(&mut self, router: Option<RecorderRouter>) {
        self.router = router;
    }

    fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    fn submit(&mut self, now: SimTime, frame: Frame) -> Vec<LanAction> {
        self.stats.submitted.inc();
        self.stats.wire_bytes.add(frame.wire_bytes() as u64);
        let sender = frame.src;
        let tx_done = now + self.cfg.frame_time(frame.wire_bytes());
        let ser_start = if self.wire_free_at > now {
            self.wire_free_at
        } else {
            now
        };
        let ser_end = ser_start + self.cfg.frame_time(frame.wire_bytes());
        self.stats.busy.add_span(ser_start, ser_end);
        self.wire_free_at = ser_end;
        let receivers = self.live_receivers(&frame);
        let required = route_required(self.router.as_ref(), &frame, || self.required_recorders());
        let mut actions = DeliveryFanout {
            faults: &self.faults,
            rng: &mut self.rng,
            stats: &mut self.stats,
            dup_gap: self.cfg.interpacket,
        }
        .run(tx_done, &frame, &receivers, &required);
        actions.push(LanAction::TxOutcome {
            at: tx_done,
            station: sender,
            ok: true,
            collisions: 0,
        });
        actions
    }

    fn timer(&mut self, _now: SimTime, _token: u64) -> Vec<LanAction> {
        Vec::new()
    }

    fn stats(&self) -> &LanStats {
        &self.stats
    }

    fn config(&self) -> Option<&LanConfig> {
        Some(&self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Destination;

    fn bus_with(n: u32) -> PerfectBus {
        let mut bus = PerfectBus::new(LanConfig::default());
        for i in 0..n {
            bus.attach(StationId(i));
        }
        bus
    }

    #[test]
    fn broadcast_reaches_all_but_sender() {
        let mut bus = bus_with(4);
        let f = Frame::new(StationId(0), Destination::Broadcast, vec![1]);
        let actions = bus.submit(SimTime::ZERO, f);
        let deliveries: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                LanAction::Deliver { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(deliveries, vec![StationId(1), StationId(2), StationId(3)]);
    }

    #[test]
    fn down_station_receives_nothing() {
        let mut bus = bus_with(3);
        bus.set_station_up(StationId(2), false);
        let f = Frame::new(StationId(0), Destination::Broadcast, vec![]);
        let actions = bus.submit(SimTime::ZERO, f);
        assert!(actions.iter().all(|a| !matches!(
            a,
            LanAction::Deliver { to, .. } if *to == StationId(2)
        )));
    }

    #[test]
    fn delivery_time_reflects_frame_size() {
        let mut bus = bus_with(2);
        let f = Frame::new(StationId(0), Destination::Broadcast, vec![0u8; 1000]);
        let wire = f.wire_bytes();
        let actions = bus.submit(SimTime::ZERO, f);
        let expect = SimTime::ZERO + LanConfig::default().frame_time(wire);
        for a in actions {
            match a {
                LanAction::Deliver { at, .. } | LanAction::TxOutcome { at, .. } => {
                    assert_eq!(at, expect)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn dead_required_recorder_suspends_traffic() {
        // §3.3.4: while the (only) recorder is down, no message may be
        // used. Survivor-cover (§6.3) works by explicitly shrinking the
        // required set, not by the medium forgetting a dead recorder.
        let mut bus = bus_with(3);
        bus.set_required_recorders(vec![StationId(2)]);
        bus.set_station_up(StationId(2), false);
        let f = Frame::new(StationId(0), Destination::Broadcast, vec![5]);
        let actions = bus.submit(SimTime::ZERO, f);
        for a in &actions {
            if let LanAction::Deliver { recorder_ok, .. } = a {
                assert!(!recorder_ok);
            }
        }
        assert_eq!(bus.stats().recorder_blocked.get(), 1);
    }

    #[test]
    fn recorder_router_overrides_global_set_per_frame() {
        // Router: frames whose first payload byte is odd are gated on
        // station 2 (down, so they block); even frames are ungated.
        let mut bus = bus_with(3);
        bus.set_required_recorders(vec![StationId(1)]);
        bus.set_recorder_router(Some(std::sync::Arc::new(|f: &Frame| {
            Some(if f.payload.first().is_some_and(|b| b % 2 == 1) {
                vec![StationId(2)]
            } else {
                vec![]
            })
        })));
        bus.set_station_up(StationId(2), false);
        let flags = |bus: &mut PerfectBus, byte: u8| {
            let f = Frame::new(StationId(0), Destination::Broadcast, vec![byte]);
            bus.submit(SimTime::ZERO, f)
                .into_iter()
                .filter_map(|a| match a {
                    LanAction::Deliver { recorder_ok, .. } => Some(recorder_ok),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert!(flags(&mut bus, 1).iter().all(|&ok| !ok));
        assert!(flags(&mut bus, 2).iter().all(|&ok| ok));
    }

    #[test]
    fn stats_count_submissions_and_deliveries() {
        let mut bus = bus_with(3);
        for _ in 0..5 {
            let f = Frame::new(StationId(0), Destination::Broadcast, vec![1]);
            bus.submit(SimTime::ZERO, f);
        }
        assert_eq!(bus.stats().submitted.get(), 5);
        assert_eq!(bus.stats().delivered.get(), 10);
    }
}
