//! Chrome-trace (Perfetto JSON) export of lifecycle span logs.
//!
//! The obs layer already records every message's lifecycle transitions
//! (publish → capture → sequence → deliver, plus replay / suppress /
//! checkpoint) into per-component [`SpanLog`] rings. This module
//! converts those logs into the Trace Event Format that
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly:
//!
//! - each component (kernel, recorder shard) becomes a *process* lane,
//!   named by a `process_name` metadata event, with every retained span
//!   event as an instant (`ph:"i"`) on the subject process's thread row;
//! - a synthetic "message lifecycles" process holds one complete-event
//!   (`ph:"X"`) slice per stage gap (publish→capture, capture→sequence,
//!   publish→deliver) so recorder service time is visible as bars.
//!
//! All timestamps are virtual-time microseconds (the format's native
//! unit), so the export is deterministic: same run, same bytes.

use crate::json::{parse, Json, ObjBuilder, ParseError};
use publishing_obs::span::{assemble, SpanLog, Stage};

/// One trace event in Chrome's Trace Event Format.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (stage name, slice name, or metadata kind).
    pub name: String,
    /// Category tag (`lifecycle`, `gap`, or `__metadata`).
    pub cat: String,
    /// Phase: `M` metadata, `i` instant, `X` complete slice.
    pub ph: char,
    /// Timestamp in virtual-time microseconds.
    pub ts: f64,
    /// Slice duration in microseconds (`X` events only).
    pub dur: Option<f64>,
    /// Process lane.
    pub pid: u64,
    /// Thread lane within the process.
    pub tid: u64,
    /// Free-form string arguments shown in the UI's detail pane.
    pub args: Vec<(String, String)>,
}

/// A whole trace document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChromeTrace {
    /// The events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl ChromeTrace {
    /// Serializes to Trace Event Format JSON (object form, compact).
    pub fn to_json(&self) -> String {
        let events = self
            .events
            .iter()
            .map(|e| {
                let mut o = ObjBuilder::new()
                    .field("name", Json::Str(e.name.clone()))
                    .field("cat", Json::Str(e.cat.clone()))
                    .field("ph", Json::Str(e.ph.to_string()))
                    .field("ts", Json::Num(e.ts))
                    .field("pid", Json::Num(e.pid as f64))
                    .field("tid", Json::Num(e.tid as f64));
                if let Some(dur) = e.dur {
                    o = o.field("dur", Json::Num(dur));
                }
                if !e.args.is_empty() {
                    o = o.field(
                        "args",
                        Json::Obj(
                            e.args
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    );
                }
                o.build()
            })
            .collect();
        ObjBuilder::new()
            .field("displayTimeUnit", Json::Str("ms".into()))
            .field("traceEvents", Json::Arr(events))
            .build()
            .write()
    }

    /// Parses a document previously produced by [`ChromeTrace::to_json`].
    pub fn from_json(text: &str) -> Result<ChromeTrace, ParseError> {
        let doc = parse(text)?;
        let bad = |what: &str| ParseError {
            expected: what.to_string(),
            at: 0,
        };
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("a traceEvents array"))?;
        let mut out = Vec::with_capacity(events.len());
        for e in events {
            let field_str = |k: &str| {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad(&format!("string field {k}")))
            };
            let field_num = |k: &str| {
                e.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad(&format!("numeric field {k}")))
            };
            let ph = field_str("ph")?;
            let mut args = Vec::new();
            if let Some(pairs) = e.get("args").and_then(Json::as_obj) {
                for (k, v) in pairs {
                    args.push((
                        k.clone(),
                        v.as_str().ok_or_else(|| bad("string arg"))?.to_string(),
                    ));
                }
            }
            out.push(TraceEvent {
                name: field_str("name")?,
                cat: field_str("cat")?,
                ph: ph.chars().next().ok_or_else(|| bad("a phase char"))?,
                ts: field_num("ts")?,
                dur: e.get("dur").and_then(Json::as_f64),
                pid: field_num("pid")? as u64,
                tid: field_num("tid")? as u64,
                args,
            });
        }
        Ok(ChromeTrace { events: out })
    }

    /// Counts events of one phase (`'i'`, `'X'`, `'M'`).
    pub fn count_phase(&self, ph: char) -> usize {
        self.events.iter().filter(|e| e.ph == ph).count()
    }

    /// Returns `true` if any instant event carries `stage` as its name.
    pub fn has_stage(&self, stage: Stage) -> bool {
        self.events
            .iter()
            .any(|e| e.ph == 'i' && e.name == stage.name())
    }
}

fn us(t: publishing_sim::time::SimTime) -> f64 {
    t.as_nanos() as f64 / 1_000.0
}

/// Builds a trace from named component span logs (e.g. `node 0 kernel`,
/// `shard 1 recorder`), in the deterministic order the caller supplies.
pub fn from_spans(components: &[(String, &SpanLog)]) -> ChromeTrace {
    let mut events = Vec::new();
    for (pid, (name, _)) in components.iter().enumerate() {
        events.push(TraceEvent {
            name: "process_name".into(),
            cat: "__metadata".into(),
            ph: 'M',
            ts: 0.0,
            dur: None,
            pid: pid as u64,
            tid: 0,
            args: vec![("name".into(), name.clone())],
        });
    }
    let lifecycle_pid = components.len() as u64;
    events.push(TraceEvent {
        name: "process_name".into(),
        cat: "__metadata".into(),
        ph: 'M',
        ts: 0.0,
        dur: None,
        pid: lifecycle_pid,
        tid: 0,
        args: vec![("name".into(), "message lifecycles".into())],
    });

    for (pid, (_, log)) in components.iter().enumerate() {
        for e in log.events() {
            events.push(TraceEvent {
                name: e.stage.name().into(),
                cat: "lifecycle".into(),
                ph: 'i',
                ts: us(e.at),
                dur: None,
                pid: pid as u64,
                tid: e.subject,
                args: vec![
                    ("msg".into(), e.key.to_string()),
                    ("aux".into(), e.aux.to_string()),
                ],
            });
        }
    }

    // One slice per stage gap; each message gets its own three-row band
    // so overlapping gaps never have to nest.
    let spans = assemble(components.iter().map(|(_, l)| *l));
    for (lane, (key, span)) in spans.iter().enumerate() {
        let gaps = [
            (0u64, "publish→capture", Stage::Publish, Stage::Capture),
            (1, "capture→sequence", Stage::Capture, Stage::Sequence),
            (2, "publish→deliver", Stage::Publish, Stage::Deliver),
        ];
        for (row, name, from, to) in gaps {
            let (Some(a), Some(b)) = (span.first(from), span.first(to)) else {
                continue;
            };
            if b < a {
                continue;
            }
            events.push(TraceEvent {
                name: name.into(),
                cat: "gap".into(),
                ph: 'X',
                ts: us(a),
                dur: Some(us(b) - us(a)),
                pid: lifecycle_pid,
                tid: lane as u64 * 3 + row,
                args: vec![("msg".into(), key.to_string())],
            });
        }
    }
    ChromeTrace { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_obs::span::MsgKey;
    use publishing_sim::time::SimTime;

    fn sample_logs() -> (SpanLog, SpanLog) {
        let mut kernel = SpanLog::new(64);
        let mut recorder = SpanLog::new(64);
        let k = MsgKey { sender: 1, seq: 0 };
        kernel.record(SimTime::from_micros(100), k, Stage::Publish, 2, 11);
        recorder.record(SimTime::from_micros(150), k, Stage::Capture, 2, 0);
        recorder.record(SimTime::from_micros(250), k, Stage::Sequence, 2, 0);
        kernel.record(SimTime::from_micros(400), k, Stage::Deliver, 2, 0);
        (kernel, recorder)
    }

    #[test]
    fn export_names_components_and_emits_gap_slices() {
        let (kernel, recorder) = sample_logs();
        let t = from_spans(&[
            ("node 0 kernel".into(), &kernel),
            ("recorder".into(), &recorder),
        ]);
        // 3 metadata lanes (2 components + lifecycle process).
        assert_eq!(t.count_phase('M'), 3);
        assert_eq!(t.count_phase('i'), 4);
        assert_eq!(t.count_phase('X'), 3);
        assert!(t.has_stage(Stage::Publish));
        assert!(t.has_stage(Stage::Deliver));
        let slice = t
            .events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "publish→deliver")
            .expect("deliver slice");
        assert_eq!(slice.ts, 100.0);
        assert_eq!(slice.dur, Some(300.0));
    }

    #[test]
    fn json_round_trip_is_lossless_and_stable() {
        let (kernel, recorder) = sample_logs();
        let t = from_spans(&[("k".into(), &kernel), ("r".into(), &recorder)]);
        let text = t.to_json();
        let back = ChromeTrace::from_json(&text).expect("parses");
        assert_eq!(back, t);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn document_shape_is_trace_event_format() {
        let t = from_spans(&[]);
        let doc = parse(&t.to_json()).unwrap();
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        assert!(doc.get("traceEvents").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn rejects_non_trace_documents() {
        assert!(ChromeTrace::from_json("{\"nope\":1}").is_err());
        assert!(ChromeTrace::from_json("[]").is_err());
        assert!(ChromeTrace::from_json("not json").is_err());
    }
}
