//! Unified observability layer for the PUBLISHING reproduction.
//!
//! The paper's claims are claims about *message lifecycles* (publish →
//! recorder-ack → deliver, and on a crash, replay and resend-suppression)
//! and *subsystem load* (recorder service time, medium utilization, disk
//! busy time). This crate gives every other crate one deterministic way to
//! observe both:
//!
//! - [`span`]: structured lifecycle events keyed by message id, recorded
//!   into bounded per-component logs whose running fingerprint is a
//!   determinism oracle (same property as `publishing_sim::trace`, but
//!   over typed events instead of free-form strings);
//! - [`causal`]: the happens-before DAG assembled from the span logs,
//!   with three query surfaces (explain a message's causal chain,
//!   attribute a recovery's critical path, pinpoint the first divergent
//!   event between two runs) and deterministic DOT export;
//! - [`forensics`]: the differential-diagnosis types (ranked suspects
//!   per finding) that regression forensics attaches to a report;
//! - [`registry`]: a hierarchical, path-keyed metrics registry with
//!   snapshot/delta semantics and JSON-lines export, populated from the
//!   existing `Counter`/`Summary`/`LogHistogram`/`Utilization`
//!   instruments so benches and `paper_tables` share one source of truth;
//! - [`probe`]: derived health probes — recovery lag, shard-tier health,
//!   quorum-replica health, and medium utilization;
//! - [`profile`]: virtual-time attribution per event category and
//!   per-lifecycle-stage latency histograms;
//! - [`report`]: the `obs_report` run artifact, rendered as text or JSON;
//! - [`util`]: the capacity-lens sections — the typed resource
//!   utilization ledger with binding-resource ranking, queueing-model
//!   cross-validation rows, and what-if (virtual speedup) results;
//! - [`store`]: the columnar (struct-of-arrays, delta-encoded, interned)
//!   storage engine behind [`span::SpanLog`], plus the row-oriented
//!   reference log it is verified against;
//! - [`watchdog`]: the always-on invariant watchdog — online safety and
//!   liveness oracles (arrival-seq gap freedom, commit-index
//!   monotonicity, leaderless-stall deadlines) any world can feed.
//!
//! Dependency discipline: this crate sits *below* demos/core/shard (which
//! all record into it), so it speaks only in packed `u64` process ids and
//! `(sender, seq)` message keys — never in `publishing_demos` types.
//! Everything here is deterministic: no wall clocks, no global state, no
//! interior mutability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod forensics;
pub mod probe;
pub mod profile;
pub mod registry;
pub mod report;
pub mod slo;
pub mod span;
pub mod store;
pub mod util;
pub mod watchdog;

pub use causal::{
    align_paths, divergence_diff, AlignedHop, CausalGraph, CriticalPath, Divergence, EdgeKind,
    Explanation, HopStatus, PathAlignment,
};
pub use forensics::{Finding, ForensicsReport, Suspect, SuspectKind};
pub use probe::{MediumHealth, QuorumHealth, RecoveryLag, ShardHealth};
pub use profile::{StageLatencies, TimeProfile};
pub use registry::{MetricValue, MetricsRegistry};
pub use report::{ConsensusStats, ObsReport, WatchdogSummary, WorkloadStats};
pub use slo::SloSpec;
pub use span::{MessageSpan, MsgKey, SpanEvent, SpanLog, Stage, DEFAULT_SPAN_CAPACITY};
pub use store::{Interner, RowSpanLog, SampleSpec};
pub use util::{UtilizationReport, WhatIfReport, WhatIfRow, XvalRow};
pub use watchdog::{Watchdog, WatchdogConfig};
