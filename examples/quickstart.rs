//! Quickstart: transparent recovery in five minutes.
//!
//! Builds a two-node published system with a recorder, runs an echo
//! workload, kills the server mid-run, and shows the client never
//! noticing.
//!
//! Run with: `cargo run --example quickstart`

use publishing::core::world::WorldBuilder;
use publishing::demos::ids::Channel;
use publishing::demos::link::Link;
use publishing::demos::programs::{self, PingClient};
use publishing::demos::registry::ProgramRegistry;
use publishing::sim::time::SimTime;

fn main() {
    // 1. Register program images ("binary files" in the paper's terms).
    let mut registry = ProgramRegistry::new();
    programs::register_standard(&mut registry); // echo, accumulator, …
    registry.register("ping", || Box::new(PingClient::new(10)));

    // 2. Build the world: nodes 0 and 1, recorder on node 2, perfect
    //    broadcast bus, publishing on.
    let mut world = WorldBuilder::new(2).registry(registry).build();

    // 3. Spawn an echo server and a client that pings it ten times.
    let server = world.spawn(1, "echo", vec![]).unwrap();
    let client = world
        .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    println!("spawned echo server {server} and client {client}");

    // 4. Let some traffic flow, then kill the server process.
    world.run_until(SimTime::from_millis(25));
    println!(
        "t={}  crashing the server (the client is mid-conversation)…",
        world.now()
    );
    world.crash_process(server, "injected fault");

    // 5. The recorder's crash notice reaches the recovery manager, which
    //    recreates the server and replays its published messages. Nobody
    //    asked the client to do anything.
    world.run_until(SimTime::from_secs(10));

    println!("\nclient's outputs (deduplicated by output sequence):");
    for line in world.outputs_of(client) {
        println!("  {line}");
    }
    let mgr = world.recorder.manager().stats();
    println!(
        "\nrecovery manager: {} recovery, {} messages replayed",
        mgr.completed.get(),
        mgr.replayed.get()
    );
    let rec = world.recorder.recorder().stats();
    println!(
        "recorder: {} messages published, {} checkpoints stored",
        rec.published.get(),
        rec.checkpoints.get()
    );
    assert_eq!(world.outputs_of(client).len(), 11);
    println!("\nthe client saw all 10 pongs exactly once. transparent recovery.");
}
