//! Deterministic chaos engine for the published-communications worlds.
//!
//! The engine closes the loop the individual fault hooks open up:
//!
//! 1. [`schedule`] *generates* seeded [`FaultSchedule`]s — crash storms
//!    over processes, nodes, the recorder (or a shard), frame
//!    loss/corruption/duplication bursts, transient disk-IO windows and
//!    torn-writes-on-crash — from a compact [`ChaosConfig`], biased
//!    toward the hard timings (crash during recovery, crash during
//!    rebalance);
//! 2. [`driver`] *replays* a schedule against a target world through the
//!    scheduler's injectable fault clock
//!    ([`publishing_sim::event::FaultClock`]): the world runs normally
//!    and pauses exactly at each scheduled instant for injection, so a
//!    schedule is a pure function of its literal — no wall clock, no
//!    polling;
//! 3. [`oracle`] *checks* the recovery invariants after every schedule:
//!    all recoveries converge (replay lag drains to zero, no shard left
//!    catching up), every client's deduplicated output equals the
//!    fault-free baseline (no lost or duplicated delivery), replayed
//!    read prefixes match the pre-crash prefix, and suppressions only
//!    ever arise from recoveries;
//! 4. [`shrink`] *minimizes* a failing schedule by deterministic
//!    delta-debugging — drop faults to a fixpoint, then bisect each
//!    fault's timing at millisecond granularity — down to a reproducer
//!    printable as a replayable `--schedule` literal.
//!
//! [`FaultSchedule`]: schedule::FaultSchedule
//! [`ChaosConfig`]: schedule::ChaosConfig

#![warn(missing_docs)]

pub mod driver;
pub mod oracle;
pub mod scenario;
pub mod schedule;
pub mod shrink;

pub use driver::Engine;
pub use oracle::OracleOptions;
pub use scenario::{
    Medium, PingEcho, PlanLink, PlanSpawn, Scenario, Topology, Tuning, WorkloadSource, NODES,
};
pub use schedule::{ChaosConfig, Fault, FaultSchedule};
