//! The live (real-threads, wall-clock) runtime: the same kernels and
//! recorder, no simulator. Runs are nondeterministic, so assertions are
//! about outcomes and bounds, not schedules.

use publishing_core::live::LiveBuilder;
use publishing_demos::ids::Channel;
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use std::time::{Duration, Instant};

fn registry(pings: u64) -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("ping", move || Box::new(PingClient::new(pings)));
    reg
}

#[test]
fn live_ping_pong_completes() {
    let mut sys = LiveBuilder::new(2, registry(10)).start();
    let server = sys.spawn_blocking(1, "echo", vec![]).unwrap();
    let client = sys
        .spawn_blocking(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let out = sys.outputs_of(client);
        if out.last().map(|l| l == "done").unwrap_or(false) {
            assert_eq!(out.len(), 11, "{out:?}");
            break;
        }
        assert!(Instant::now() < deadline, "live run stalled: {out:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    sys.shutdown();
}

#[test]
fn live_crash_recovers_transparently() {
    let mut sys = LiveBuilder::new(2, registry(15)).start();
    let server = sys.spawn_blocking(1, "echo", vec![]).unwrap();
    let client = sys
        .spawn_blocking(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    // Let some traffic flow, then kill the server for real (wall time).
    std::thread::sleep(Duration::from_millis(50));
    sys.crash_process(server, "live fault");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let out = sys.outputs_of(client);
        if out.last().map(|l| l == "done").unwrap_or(false) {
            // Exactly once, in order, across a real crash.
            assert_eq!(out.len(), 16, "{out:?}");
            for (i, line) in out.iter().take(15).enumerate() {
                assert_eq!(line, &format!("pong {}", i + 1));
            }
            break;
        }
        assert!(Instant::now() < deadline, "recovery stalled: {out:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    sys.shutdown();
}

#[test]
fn live_recorder_outage_suspends_then_resumes() {
    let mut sys = LiveBuilder::new(2, registry(30)).start();
    let server = sys.spawn_blocking(1, "echo", vec![]).unwrap();
    let client = sys
        .spawn_blocking(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    // Take the recorder's receipt away: the publish-before-use gate must
    // freeze the conversation.
    sys.set_recorder_up(false);
    std::thread::sleep(Duration::from_millis(100));
    let frozen = sys.outputs_of(client).len();
    std::thread::sleep(Duration::from_millis(200));
    let still = sys.outputs_of(client).len();
    assert!(
        still <= frozen + 2,
        "traffic should be suspended: {frozen} -> {still}"
    );
    sys.set_recorder_up(true);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let out = sys.outputs_of(client);
        if out.last().map(|l| l == "done").unwrap_or(false) {
            assert_eq!(out.len(), 31);
            break;
        }
        assert!(Instant::now() < deadline, "resume stalled: {out:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    sys.shutdown();
}
