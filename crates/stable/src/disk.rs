//! A simulated disk with the Figure 5.2 service model.
//!
//! Service time for an operation is a fixed positioning latency (3 ms in
//! the paper's recorder) plus size divided by the transfer rate (2 MB/s).
//! Operations are FCFS; the disk is a single server, so queueing delay
//! emerges naturally under load — that queueing is what saturates first in
//! Figure 5.5 before the 4 KB buffering fix.

use publishing_sim::stats::{Counter, Summary, Utilization};
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Disk service parameters.
#[derive(Debug, Clone)]
pub struct DiskParams {
    /// Fixed per-operation positioning latency (Fig 5.2: 3 ms).
    pub latency: SimDuration,
    /// Sustained transfer rate in bytes per second (Fig 5.2: 2 MB/s).
    pub bytes_per_sec: u64,
    /// Page size in bytes (the 4 KB buffering unit of §5.1).
    pub page_size: usize,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            latency: SimDuration::from_millis(3),
            bytes_per_sec: 2_000_000,
            page_size: 4096,
        }
    }
}

impl DiskParams {
    /// Returns the service time for an operation moving `bytes`.
    pub fn service_time(&self, bytes: usize) -> SimDuration {
        let ns = (bytes as u64).saturating_mul(1_000_000_000) / self.bytes_per_sec;
        self.latency + SimDuration::from_nanos(ns)
    }
}

/// Identifies an outstanding disk operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoToken(pub u64);

/// A disk request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskOp {
    /// Write `data` to `page` (data length at most the page size).
    Write {
        /// Target page number.
        page: u64,
        /// Bytes to store.
        data: Vec<u8>,
    },
    /// Read the contents of `page`.
    Read {
        /// Source page number.
        page: u64,
    },
}

/// The result handed back when an operation completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskResult {
    /// A write became durable.
    Written {
        /// The page written.
        page: u64,
    },
    /// A read finished; empty pages read as an empty vector.
    Data {
        /// The page read.
        page: u64,
        /// Its contents at read time.
        data: Vec<u8>,
    },
}

/// Counters and gauges a disk maintains.
#[derive(Debug, Default, Clone)]
pub struct DiskStats {
    /// Completed writes.
    pub writes: Counter,
    /// Completed reads.
    pub reads: Counter,
    /// Bytes written.
    pub bytes_written: Counter,
    /// Bytes read.
    pub bytes_read: Counter,
    /// Busy-time integrator (Fig 5.5a's utilization source).
    pub busy: Utilization,
    /// Per-operation response time (queueing + service), milliseconds.
    pub response_ms: Summary,
}

struct Pending {
    op: DiskOp,
    submitted: SimTime,
    completes: SimTime,
}

/// A single simulated disk.
///
/// The driver calls [`Disk::submit`], schedules an event at the returned
/// completion time, and then calls [`Disk::complete`].
pub struct Disk {
    params: DiskParams,
    pages: HashMap<u64, Vec<u8>>,
    pending: HashMap<IoToken, Pending>,
    busy_until: SimTime,
    next_token: u64,
    stats: DiskStats,
}

impl Disk {
    /// Creates an empty disk.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            params,
            pages: HashMap::new(),
            pending: HashMap::new(),
            busy_until: SimTime::ZERO,
            next_token: 0,
            stats: DiskStats::default(),
        }
    }

    /// Returns the service parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Returns the disk's counters.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Returns the number of in-flight operations.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Submits an operation at time `now`; returns the token and the time
    /// the operation will complete (FCFS behind earlier submissions).
    ///
    /// # Panics
    ///
    /// Panics if a write exceeds the page size.
    pub fn submit(&mut self, now: SimTime, op: DiskOp) -> (IoToken, SimTime) {
        let bytes = match &op {
            DiskOp::Write { data, .. } => {
                assert!(
                    data.len() <= self.params.page_size,
                    "write of {} bytes exceeds page size {}",
                    data.len(),
                    self.params.page_size
                );
                data.len()
            }
            // Reads always move a whole page.
            DiskOp::Read { .. } => self.params.page_size,
        };
        let start = now.max(self.busy_until);
        let completes = start + self.params.service_time(bytes);
        self.stats.busy.set_busy(start);
        self.busy_until = completes;
        let token = IoToken(self.next_token);
        self.next_token += 1;
        self.pending.insert(
            token,
            Pending {
                op,
                submitted: now,
                completes,
            },
        );
        (token, completes)
    }

    /// Completes an operation; the driver must call this exactly at (or
    /// after) the completion time returned by [`Disk::submit`].
    ///
    /// # Panics
    ///
    /// Panics if the token is unknown or completion is early.
    pub fn complete(&mut self, now: SimTime, token: IoToken) -> DiskResult {
        let p = self.pending.remove(&token).expect("unknown disk token");
        assert!(
            now >= p.completes,
            "early completion: {now} < {}",
            p.completes
        );
        self.stats
            .response_ms
            .record(p.completes.saturating_since(p.submitted).as_millis_f64());
        if self.pending.is_empty() && now >= self.busy_until {
            self.stats.busy.set_idle(self.busy_until);
        }
        match p.op {
            DiskOp::Write { page, data } => {
                self.stats.writes.inc();
                self.stats.bytes_written.add(data.len() as u64);
                self.pages.insert(page, data);
                DiskResult::Written { page }
            }
            DiskOp::Read { page } => {
                self.stats.reads.inc();
                let data = self.pages.get(&page).cloned().unwrap_or_default();
                self.stats.bytes_read.add(data.len() as u64);
                DiskResult::Data { page, data }
            }
        }
    }

    /// Peeks at a page's current durable contents without timing cost.
    ///
    /// This is the "open the disk pack in the lab" operation used by
    /// rebuild logic and assertions, not by the simulated dataflow.
    pub fn peek_page(&self, page: u64) -> Option<&[u8]> {
        self.pages.get(&page).map(|v| v.as_slice())
    }

    /// Iterates all non-empty pages (for rebuild scans).
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(move |k| (k, self.pages[&k].as_slice()))
    }

    /// Erases everything (models replacing the pack; not used in recovery).
    pub fn wipe(&mut self) {
        self.pages.clear();
    }

    /// Erases one page instantly, with no service time. Used only by the
    /// rebuild scan to scrub pages it has just decided are garbage (a
    /// superseded checkpoint found during recovery) — the scan already
    /// owns the disk exclusively at that point.
    pub fn wipe_page(&mut self, page: u64) {
        self.pages.remove(&page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskParams::default())
    }

    #[test]
    fn service_time_matches_paper_parameters() {
        let p = DiskParams::default();
        // A 4 KB transfer at 2 MB/s takes 2.048 ms, plus 3 ms latency.
        assert_eq!(p.service_time(4096), SimDuration::from_micros(5_048));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = disk();
        let (t1, c1) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 7,
                data: vec![1, 2, 3],
            },
        );
        assert_eq!(d.complete(c1, t1), DiskResult::Written { page: 7 });
        let (t2, c2) = d.submit(c1, DiskOp::Read { page: 7 });
        match d.complete(c2, t2) {
            DiskResult::Data { page, data } => {
                assert_eq!(page, 7);
                assert_eq!(data, vec![1, 2, 3]);
            }
            _ => panic!("expected data"),
        }
    }

    #[test]
    fn fcfs_queueing_delays_later_ops() {
        let mut d = disk();
        let (_, c1) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![0; 4096],
            },
        );
        let (_, c2) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 1,
                data: vec![0; 4096],
            },
        );
        assert_eq!(
            c2.saturating_since(c1),
            DiskParams::default().service_time(4096)
        );
    }

    #[test]
    fn idle_gap_resets_queue() {
        let mut d = disk();
        let (t1, c1) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![1],
            },
        );
        d.complete(c1, t1);
        let later = c1 + SimDuration::from_secs(1);
        let (_, c2) = d.submit(later, DiskOp::Read { page: 0 });
        assert_eq!(
            c2.saturating_since(later),
            DiskParams::default().service_time(4096)
        );
    }

    #[test]
    fn unwritten_page_reads_empty() {
        let mut d = disk();
        let (t, c) = d.submit(SimTime::ZERO, DiskOp::Read { page: 99 });
        match d.complete(c, t) {
            DiskResult::Data { data, .. } => assert!(data.is_empty()),
            _ => panic!(),
        }
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let mut d = disk();
        let (t, c) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![0; 4096],
            },
        );
        d.complete(c, t);
        // Busy for the whole service time; measure over twice that window.
        let window = SimTime::ZERO + DiskParams::default().service_time(4096).saturating_mul(2);
        let u = d.stats().busy.utilization(window);
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn response_time_includes_queueing() {
        let mut d = disk();
        let (t1, c1) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![0; 4096],
            },
        );
        let (t2, c2) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 1,
                data: vec![0; 4096],
            },
        );
        d.complete(c1, t1);
        d.complete(c2, t2);
        let s = &d.stats().response_ms;
        assert_eq!(s.count(), 2);
        assert!(s.max().unwrap() > s.min().unwrap());
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_rejected() {
        disk().submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![0; 5000],
            },
        );
    }

    #[test]
    #[should_panic(expected = "early completion")]
    fn early_completion_rejected() {
        let mut d = disk();
        let (t, _c) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![1],
            },
        );
        d.complete(SimTime::ZERO, t);
    }
}
