//! A token ring with the §6.1.2 recorder acknowledge field.
//!
//! One token circulates; a station with traffic seizes it and inserts its
//! frame, which travels hop by hop around the ring and is stripped by the
//! sender. Publishing adds an *acknowledge field*: stations ignore frames
//! whose ack field is empty; the recorder fills the field as the frame
//! passes it (reading the frame at the same moment), and if the recorder
//! received the frame incorrectly it complements the checksum, so no
//! station downstream can use it either. A frame whose destination sits
//! upstream of the recorder is allowed one extra revolution so the
//! destination sees it with the field filled.

use crate::frame::{Frame, StationId};
use crate::lan::{route_required, Lan, LanAction, LanConfig, LanStats, RecorderRouter};
use publishing_sim::fault::FaultPlan;
use publishing_sim::rng::DetRng;
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// A slotted token ring medium.
pub struct TokenRing {
    cfg: LanConfig,
    /// Per-hop latency (link propagation plus station repeat delay).
    hop_latency: SimDuration,
    /// Stations in ring order.
    order: Vec<StationId>,
    up: BTreeMap<StationId, bool>,
    backlog: BTreeMap<StationId, VecDeque<Frame>>,
    recorders: Vec<StationId>,
    router: Option<RecorderRouter>,
    /// Ring-order index of the station currently holding the token.
    token_at: usize,
    /// `true` while a frame is circulating.
    circulating: bool,
    timers: BTreeMap<u64, ()>,
    next_token: u64,
    faults: FaultPlan,
    rng: DetRng,
    stats: LanStats,
}

impl TokenRing {
    /// Creates a ring with the given per-hop latency; stations join in
    /// [`Lan::attach`] order.
    pub fn new(cfg: LanConfig, hop_latency: SimDuration) -> Self {
        let rng = DetRng::new(cfg.seed ^ 0x7013);
        TokenRing {
            cfg,
            hop_latency,
            order: Vec::new(),
            up: BTreeMap::new(),
            backlog: BTreeMap::new(),
            recorders: Vec::new(),
            router: None,
            token_at: 0,
            circulating: false,
            timers: BTreeMap::new(),
            next_token: 0,
            faults: FaultPlan::new(),
            rng,
            stats: LanStats::default(),
        }
    }

    fn is_up(&self, st: StationId) -> bool {
        self.up.get(&st).copied().unwrap_or(false)
    }

    fn ring_index(&self, st: StationId) -> Option<usize> {
        self.order.iter().position(|&s| s == st)
    }

    /// Walks a frame around the ring from its source, producing deliveries
    /// and the strip time. Returns `(actions, strip_time)`.
    fn circulate(&mut self, start: SimTime, frame: Frame) -> (Vec<LanAction>, SimTime) {
        let n = self.order.len();
        let src_idx = self.ring_index(frame.src).expect("sender attached");
        let serialization = self.cfg.frame_time(frame.wire_bytes());
        // The recorders this frame must pass: routed per frame in a
        // sharded tier, otherwise the global set. The ack field starts
        // empty; publishing mode is on iff any recorder is required, and
        // the field fills once every required recorder has read the
        // frame (a recorder that *sent* it trivially has it).
        let required = route_required(self.router.as_ref(), &frame, || self.recorders.clone());
        let publishing = !required.is_empty();
        let mut captured: Vec<StationId> = required
            .iter()
            .copied()
            .filter(|&r| r == frame.src)
            .collect();
        let mut ack_filled = !publishing || captured.len() == required.len();
        let mut on_wire = frame.clone();
        let mut actions = Vec::new();
        let mut delivered: Vec<StationId> = Vec::new();
        let mut hops_taken = 0u64;
        let max_revs = if publishing { 2 } else { 1 };

        'revs: for _rev in 0..max_revs {
            for k in 1..=n {
                let idx = (src_idx + k) % n;
                let st = self.order[idx];
                hops_taken += 1;
                let t = start + serialization + self.hop_latency.saturating_mul(hops_taken);
                if idx == src_idx {
                    // Back at the sender. A self-addressed frame (published
                    // intranode message, §4.4.1) is copied here once the
                    // ack field is filled.
                    if frame.dst == crate::frame::Destination::Station(frame.src)
                        && ack_filled
                        && on_wire.is_intact()
                        && !delivered.contains(&frame.src)
                        && self.is_up(frame.src)
                    {
                        delivered.push(frame.src);
                        self.stats.delivered.inc();
                        actions.push(LanAction::Deliver {
                            at: t,
                            to: frame.src,
                            frame: on_wire.clone(),
                            recorder_ok: true,
                        });
                    }
                    // Strip unless another revolution is warranted (ack
                    // filled but a destination not yet served).
                    let dst_pending = on_wire.is_intact()
                        && ack_filled
                        && self.order.iter().any(|&s| {
                            s != frame.src
                                && self.is_up(s)
                                && frame.dst.accepts(s)
                                && !delivered.contains(&s)
                        });
                    if dst_pending {
                        continue;
                    }
                    break 'revs;
                }
                if !self.is_up(st) {
                    // A down station merely repeats the signal.
                    continue;
                }
                if publishing && !ack_filled && required.contains(&st) && !captured.contains(&st) {
                    // A required recorder reads the frame as it passes;
                    // once the last of them has it, the ack field fills.
                    // A receive error complements the checksum (§6.1.2)
                    // so no station downstream can use the frame.
                    let bad = self.faults.roll_loss(&mut self.rng)
                        || self.faults.roll_corruption(&mut self.rng);
                    if bad {
                        on_wire.invalidate_fcs();
                        self.stats.recorder_blocked.inc();
                    } else {
                        captured.push(st);
                        ack_filled = captured.len() == required.len();
                        self.stats.delivered.inc();
                        delivered.push(st);
                        actions.push(LanAction::Deliver {
                            at: t,
                            to: st,
                            frame: on_wire.clone(),
                            recorder_ok: true,
                        });
                    }
                    continue;
                }
                let wants = frame.dst.accepts(st) && st != frame.src;
                if wants && ack_filled && on_wire.is_intact() && !delivered.contains(&st) {
                    // Per-receiver copy fault: a station may still fail to
                    // copy the frame as it passes.
                    if self.faults.roll_loss(&mut self.rng) {
                        self.stats.lost.inc();
                        continue;
                    }
                    delivered.push(st);
                    self.stats.delivered.inc();
                    actions.push(LanAction::Deliver {
                        at: t,
                        to: st,
                        frame: on_wire.clone(),
                        recorder_ok: true,
                    });
                    if self.faults.roll_duplication(&mut self.rng) {
                        // The copy sticks: the station reads the frame again
                        // on a spurious second revolution, one ring pass
                        // later (never at the same instant).
                        let gap = serialization.max(SimDuration::from_nanos(1));
                        self.stats.duplicated.inc();
                        self.stats.delivered.inc();
                        actions.push(LanAction::Deliver {
                            at: t + gap,
                            to: st,
                            frame: on_wire.clone(),
                            recorder_ok: true,
                        });
                    }
                }
            }
        }
        let strip = start + serialization + self.hop_latency.saturating_mul(hops_taken);
        (actions, strip)
    }

    /// Starts the next pending frame, if any, rotating the token fairly.
    fn start_next(&mut self, now: SimTime, out: &mut Vec<LanAction>) {
        if self.circulating || self.order.is_empty() {
            return;
        }
        let n = self.order.len();
        // Find the next station, in ring order after the token, with traffic.
        let mut chosen: Option<(usize, StationId)> = None;
        for k in 0..n {
            let idx = (self.token_at + k) % n;
            let st = self.order[idx];
            if self.is_up(st)
                && self
                    .backlog
                    .get(&st)
                    .map(|b| !b.is_empty())
                    .unwrap_or(false)
            {
                chosen = Some((idx, st));
                break;
            }
        }
        let Some((idx, st)) = chosen else { return };
        // Token travel time to reach the chosen station.
        let dist = (idx + n - self.token_at) % n;
        let start = now + self.hop_latency.saturating_mul(dist as u64);
        let frame = self
            .backlog
            .get_mut(&st)
            .expect("backlog exists")
            .pop_front()
            .expect("nonempty");
        self.token_at = idx;
        self.circulating = true;
        self.stats.busy.set_busy(now);
        let (mut deliveries, strip) = self.circulate(start, frame.clone());
        out.append(&mut deliveries);
        out.push(LanAction::TxOutcome {
            at: strip,
            station: st,
            ok: true,
            collisions: 0,
        });
        // After stripping, the token moves to the next station.
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, ());
        out.push(LanAction::SetTimer { at: strip, token });
    }
}

impl Lan for TokenRing {
    fn attach(&mut self, station: StationId) {
        if self.ring_index(station).is_none() {
            self.order.push(station);
        }
        self.up.insert(station, true);
        self.backlog.entry(station).or_default();
    }

    fn set_station_up(&mut self, station: StationId, up: bool) {
        self.up.insert(station, up);
        if !up {
            if let Some(b) = self.backlog.get_mut(&station) {
                b.clear();
            }
        }
    }

    fn set_required_recorders(&mut self, recorders: Vec<StationId>) {
        self.recorders = recorders;
    }

    fn set_recorder_router(&mut self, router: Option<RecorderRouter>) {
        self.router = router;
    }

    fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    fn submit(&mut self, now: SimTime, frame: Frame) -> Vec<LanAction> {
        let mut out = Vec::new();
        if !self.is_up(frame.src) || self.ring_index(frame.src).is_none() {
            return out;
        }
        self.stats.submitted.inc();
        self.stats.wire_bytes.add(frame.wire_bytes() as u64);
        self.backlog
            .get_mut(&frame.src)
            .expect("attached")
            .push_back(frame);
        self.start_next(now, &mut out);
        out
    }

    fn timer(&mut self, now: SimTime, token: u64) -> Vec<LanAction> {
        let mut out = Vec::new();
        if self.timers.remove(&token).is_some() {
            // A frame was stripped; the ring frees.
            self.circulating = false;
            self.token_at = (self.token_at + 1) % self.order.len().max(1);
            self.stats.busy.set_idle(now);
            self.start_next(now, &mut out);
        }
        out
    }

    fn stats(&self) -> &LanStats {
        &self.stats
    }

    fn config(&self) -> Option<&LanConfig> {
        Some(&self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Destination;

    fn ring(n: u32, recorder: Option<u32>) -> TokenRing {
        let cfg = LanConfig {
            seed: 11,
            ..LanConfig::default()
        };
        let mut r = TokenRing::new(cfg, SimDuration::from_micros(10));
        for i in 0..n {
            r.attach(StationId(i));
        }
        if let Some(rec) = recorder {
            r.set_required_recorders(vec![StationId(rec)]);
        }
        r
    }

    fn deliveries(actions: &[LanAction]) -> Vec<(SimTime, StationId)> {
        actions
            .iter()
            .filter_map(|a| match a {
                LanAction::Deliver { at, to, .. } => Some((*at, *to)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn frame_reaches_destination_after_recorder() {
        // Ring order 0 → 1 → 2 → 3; recorder at 1, destination 3: the
        // frame passes the recorder first, so one revolution suffices.
        let mut r = ring(4, Some(1));
        let f = Frame::new(StationId(0), Destination::Station(StationId(3)), vec![1, 2]);
        let actions = r.submit(SimTime::ZERO, f);
        let d = deliveries(&actions);
        assert_eq!(d.len(), 2); // recorder + destination
        assert_eq!(d[0].1, StationId(1));
        assert_eq!(d[1].1, StationId(3));
        assert!(d[0].0 < d[1].0);
    }

    #[test]
    fn destination_before_recorder_needs_second_revolution() {
        // Recorder at 3, destination 1: the first pass finds the ack field
        // empty at station 1, which must wait for revolution two.
        let mut r = ring(4, Some(3));
        let f = Frame::new(StationId(0), Destination::Station(StationId(1)), vec![9]);
        let actions = r.submit(SimTime::ZERO, f);
        let d = deliveries(&actions);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].1, StationId(3)); // recorder, revolution 1
        assert_eq!(d[1].1, StationId(1)); // destination, revolution 2
                                          // The destination's delivery is more than one full revolution in.
        let one_rev = SimDuration::from_micros(10).saturating_mul(4);
        assert!(d[1].0.saturating_since(d[0].0) > SimDuration::ZERO);
        assert!(d[1].0 > SimTime::ZERO + one_rev);
    }

    #[test]
    fn recorder_failure_invalidates_checksum_for_all() {
        let mut r = ring(4, Some(1));
        r.set_faults(FaultPlan::new().with_frame_corruption(1.0));
        let f = Frame::new(StationId(0), Destination::Station(StationId(3)), vec![7]);
        let actions = r.submit(SimTime::ZERO, f);
        // The recorder read fails; nobody receives the frame.
        assert!(deliveries(&actions).is_empty());
        assert_eq!(r.stats().recorder_blocked.get(), 1);
        // The sender still learns the transmission completed (transport
        // will retransmit for lack of an end-to-end ack).
        assert!(actions
            .iter()
            .any(|a| matches!(a, LanAction::TxOutcome { ok: true, .. })));
    }

    #[test]
    fn without_publishing_one_revolution_delivers() {
        let mut r = ring(4, None);
        let f = Frame::new(StationId(0), Destination::Station(StationId(2)), vec![3]);
        let actions = r.submit(SimTime::ZERO, f);
        let d = deliveries(&actions);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, StationId(2));
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut r = ring(5, Some(2));
        let f = Frame::new(StationId(0), Destination::Broadcast, vec![1]);
        let actions = r.submit(SimTime::ZERO, f);
        let mut ds: Vec<StationId> = deliveries(&actions).into_iter().map(|(_, s)| s).collect();
        ds.sort();
        // Stations 1..=4 all get it (station 1 on the second revolution).
        assert_eq!(
            ds,
            vec![StationId(1), StationId(2), StationId(3), StationId(4)]
        );
    }

    #[test]
    fn queued_frames_serialize_on_the_ring() {
        let mut r = ring(3, Some(2));
        let f1 = Frame::new(StationId(0), Destination::Station(StationId(1)), vec![1]);
        let f2 = Frame::new(StationId(1), Destination::Station(StationId(0)), vec![2]);
        let a1 = r.submit(SimTime::ZERO, f1);
        let a2 = r.submit(SimTime::ZERO, f2);
        // The second frame waits for the ring: no deliveries from it yet.
        assert!(deliveries(&a2).is_empty());
        // Free the ring via the strip timer.
        let strip_token = a1
            .iter()
            .find_map(|a| match a {
                LanAction::SetTimer { at, token } => Some((*at, *token)),
                _ => None,
            })
            .expect("strip timer");
        let a3 = r.timer(strip_token.0, strip_token.1);
        assert!(!deliveries(&a3).is_empty());
    }

    #[test]
    fn down_station_neither_sends_nor_receives() {
        let mut r = ring(4, Some(1));
        r.set_station_up(StationId(3), false);
        let f = Frame::new(StationId(0), Destination::Broadcast, vec![1]);
        let actions = r.submit(SimTime::ZERO, f);
        assert!(deliveries(&actions).iter().all(|(_, s)| *s != StationId(3)));
        let none = r.submit(
            SimTime::ZERO,
            Frame::new(StationId(3), Destination::Broadcast, vec![2]),
        );
        assert!(none.is_empty());
    }

    #[test]
    fn recorder_down_blocks_all_delivery() {
        // With the only recorder down the ack field is never filled, so no
        // station may use any frame — the §3.3.4 "suspend all traffic"
        // property, emergent from the ack-field rule.
        let mut r = ring(4, Some(1));
        r.set_station_up(StationId(1), false);
        let f = Frame::new(StationId(0), Destination::Station(StationId(2)), vec![5]);
        let actions = r.submit(SimTime::ZERO, f);
        assert!(deliveries(&actions).is_empty());
    }
}
