//! Differential run forensics: the report-side diagnosis types.
//!
//! A forensics pass takes two runs — a baseline and a candidate — and
//! produces a ranked causal diagnosis of every delta worth explaining:
//! each [`Finding`] names what regressed or drifted (a violated
//! comparator rule, a binding-resource flip, a critical-path hop) and
//! carries its ranked [`Suspect`] list, most suspicious first. The
//! *types* live here because the diagnosis is part of the run artifact
//! (report schema v6 embeds an optional [`ForensicsReport`]); the diff
//! *engines* that populate them live in `publishing-perf::forensics`,
//! which sits above this crate and can see snapshots and comparator
//! verdicts.
//!
//! The load-bearing invariant, enforced by the `forensics --smoke` CI
//! gate and pinned by proptests: **a run diffed against itself produces
//! an empty diagnosis** ([`ForensicsReport::is_empty`]). Virtual-time
//! runs are exactly replayable, so any surviving finding is real.

use crate::registry::{json_escape, json_f64};

/// What a ranked suspect names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspectKind {
    /// A virtual-time profile category or pipeline stage.
    Stage,
    /// A ledger resource (per-kind busy time, utilization shift).
    Resource,
    /// The binding resource changed identity between the runs.
    BindingFlip,
    /// A crash→convergence critical-path hop.
    CriticalPath,
    /// A host-side allocation-meter reading.
    Allocation,
}

impl SuspectKind {
    /// Stable lowercase label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            SuspectKind::Stage => "stage",
            SuspectKind::Resource => "resource",
            SuspectKind::BindingFlip => "binding_flip",
            SuspectKind::CriticalPath => "critical_path",
            SuspectKind::Allocation => "allocation",
        }
    }
}

/// One ranked cause candidate behind a [`Finding`].
#[derive(Debug, Clone)]
pub struct Suspect {
    /// What the suspect names.
    pub kind: SuspectKind,
    /// The stage/resource/metric pointed at.
    pub name: String,
    /// Baseline-side reading.
    pub prev: f64,
    /// Candidate-side reading.
    pub new: f64,
    /// Extra context: hop status, flip direction, remediation knob.
    pub detail: String,
}

impl Suspect {
    /// Signed change, candidate minus baseline.
    pub fn delta(&self) -> f64 {
        self.new - self.prev
    }
}

/// Formats a delta as a signed percentage when the baseline is nonzero.
fn pct(prev: f64, new: f64) -> String {
    if prev.abs() > 1e-12 {
        format!(" ({:+.1}%)", (new - prev) / prev.abs() * 100.0)
    } else {
        String::new()
    }
}

/// One diagnosed delta: a violated rule or drifted domain plus its
/// ranked suspects.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Scenario the finding belongs to (or a diff-domain label for
    /// report-level findings, e.g. `run`).
    pub scenario: String,
    /// What regressed or drifted: a gated metric name, or a domain such
    /// as `binding_flip`, `critical_path`, `utilization`, `allocations`.
    pub subject: String,
    /// Baseline-side value of the subject (0.0 for domain findings).
    pub prev: f64,
    /// Candidate-side value of the subject.
    pub new: f64,
    /// Ranked cause candidates, most suspicious first.
    pub suspects: Vec<Suspect>,
}

impl Finding {
    /// Serializes the finding as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"scenario\":\"{}\",\"subject\":\"{}\",\"prev\":{},\"new\":{},\"suspects\":[",
            json_escape(&self.scenario),
            json_escape(&self.subject),
            json_f64(self.prev),
            json_f64(self.new)
        );
        for (i, sp) in self.suspects.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"kind\":\"{}\",\"name\":\"{}\",\"prev\":{},\"new\":{},\"delta\":{},\"detail\":\"{}\"}}",
                sp.kind.label(),
                json_escape(&sp.name),
                json_f64(sp.prev),
                json_f64(sp.new),
                json_f64(sp.delta()),
                json_escape(&sp.detail)
            ));
        }
        s.push_str("]}");
        s
    }
}

/// The differential diagnosis of one run pair.
#[derive(Debug, Clone, Default)]
pub struct ForensicsReport {
    /// Label describing the baseline side of the diff.
    pub baseline: String,
    /// Diagnosed findings, in detection order.
    pub findings: Vec<Finding>,
}

impl ForensicsReport {
    /// `true` when the diagnosis found nothing — the self-diff
    /// invariant: any run diffed against itself must be empty.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the diagnosis for a terminal.
    pub fn render(&self) -> String {
        let mut s = format!(
            "diff vs {}: {} finding(s)\n",
            self.baseline,
            self.findings.len()
        );
        for f in &self.findings {
            s.push_str(&format!(
                "  {}/{}: {:.3} -> {:.3}{}\n",
                f.scenario,
                f.subject,
                f.prev,
                f.new,
                pct(f.prev, f.new)
            ));
            for (i, sp) in f.suspects.iter().enumerate() {
                s.push_str(&format!(
                    "    #{} [{}] {} {:.3} -> {:.3}{}",
                    i + 1,
                    sp.kind.label(),
                    sp.name,
                    sp.prev,
                    sp.new,
                    pct(sp.prev, sp.new)
                ));
                if !sp.detail.is_empty() {
                    s.push_str(&format!("  — {}", sp.detail));
                }
                s.push('\n');
            }
        }
        s
    }

    /// Serializes the diagnosis as one JSON object (no trailing comma;
    /// [`crate::report::ObsReport::render_json`] embeds it verbatim).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"baseline\":\"{}\",\"findings\":[",
            json_escape(&self.baseline)
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&f.to_json());
        }
        s.push_str("]}");
        s
    }

    /// Serializes the diagnosis as NDJSON: one finding object per line.
    pub fn to_ndjson(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&f.to_json());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ForensicsReport {
        ForensicsReport {
            baseline: "perf/BENCH_1.json".into(),
            findings: vec![Finding {
                scenario: "ab_trial".into(),
                subject: "publish_to_deliver_us_p99".into(),
                prev: 16384.0,
                new: 32768.0,
                suspects: vec![
                    Suspect {
                        kind: SuspectKind::Stage,
                        name: "profile_kernel_cpu_ms".into(),
                        prev: 10.0,
                        new: 20.0,
                        detail: "what-if knob: proto_cpu".into(),
                    },
                    Suspect {
                        kind: SuspectKind::BindingFlip,
                        name: "binding".into(),
                        prev: 0.0,
                        new: 0.0,
                        detail: "recv 2 -> medium".into(),
                    },
                ],
            }],
        }
    }

    #[test]
    fn empty_report_is_empty_and_renders() {
        let r = ForensicsReport {
            baseline: "self".into(),
            findings: Vec::new(),
        };
        assert!(r.is_empty());
        assert_eq!(r.render(), "diff vs self: 0 finding(s)\n");
        assert_eq!(r.to_json(), "{\"baseline\":\"self\",\"findings\":[]}");
        assert_eq!(r.to_ndjson(), "");
    }

    #[test]
    fn populated_report_renders_ranked_suspects() {
        let r = sample();
        assert!(!r.is_empty());
        let text = r.render();
        assert!(text.contains("1 finding(s)"));
        assert!(
            text.contains("ab_trial/publish_to_deliver_us_p99: 16384.000 -> 32768.000 (+100.0%)")
        );
        assert!(text.contains("#1 [stage] profile_kernel_cpu_ms 10.000 -> 20.000 (+100.0%)  — what-if knob: proto_cpu"));
        assert!(text.contains("#2 [binding_flip] binding"));
        let json = r.to_json();
        assert!(json.contains("\"baseline\":\"perf/BENCH_1.json\""));
        assert!(json.contains("\"kind\":\"stage\",\"name\":\"profile_kernel_cpu_ms\""));
        assert!(json.contains("\"delta\":10.0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let nd = r.to_ndjson();
        assert_eq!(nd.lines().count(), 1);
        assert!(nd.starts_with("{\"scenario\":\"ab_trial\""));
    }

    #[test]
    fn suspect_kind_labels_are_stable() {
        for (kind, want) in [
            (SuspectKind::Stage, "stage"),
            (SuspectKind::Resource, "resource"),
            (SuspectKind::BindingFlip, "binding_flip"),
            (SuspectKind::CriticalPath, "critical_path"),
            (SuspectKind::Allocation, "allocation"),
        ] {
            assert_eq!(kind.label(), want);
        }
    }
}
