//! Compiling a [`WorkloadSpec`] into a chaos-pluggable
//! [`WorkloadSource`].
//!
//! The compiled form is a program registry — one `wl-sink-<k>` entry
//! per subject and one `wl-gen-<g>` entry per generator cohort, each
//! factory capturing its spec clone so recovery can re-instantiate the
//! exact program by name — plus a spawn plan: sinks first (so generator
//! links can point at them) on the last processing node, generators
//! after on the remaining nodes. The placement is deliberate: nodes
//! have one CPU each, so generators must not share a node (their pacing
//! compute would serialize) and sinks get a node whose CPU is idle
//! unless a stall phase deliberately burns it. Every spawn is a chaos
//! *client*: its deduplicated output ends in `done` and feeds the
//! baseline oracle, so a searched operating point is validated by the
//! same machinery as every chaos schedule.

use crate::drivers::{LoadGen, SubjectSink, DATA_CODE};
use crate::spec::WorkloadSpec;
use publishing_chaos::{PlanLink, PlanSpawn, WorkloadSource, NODES};
use publishing_demos::ids::Channel;
use publishing_demos::programs;
use publishing_demos::registry::ProgramRegistry;

/// A spec compiled to registry + plan, ready for
/// [`publishing_chaos::Scenario::build_with`].
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    /// The offered-load description being compiled.
    pub spec: WorkloadSpec,
}

impl CompiledWorkload {
    /// Compiles `spec` (validating it first).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`] — compile
    /// targets come from parsed literals or presets, both already valid.
    pub fn new(spec: WorkloadSpec) -> Self {
        spec.validate().expect("invalid workload spec");
        CompiledWorkload { spec }
    }
}

impl WorkloadSource for CompiledWorkload {
    fn registry(&self) -> ProgramRegistry {
        let mut reg = ProgramRegistry::new();
        programs::register_standard(&mut reg);
        for k in 0..self.spec.subjects {
            let spec = self.spec.clone();
            reg.register(format!("wl-sink-{k}"), move || {
                Box::new(SubjectSink::new(spec.clone(), k))
            });
        }
        for g in 0..self.spec.generators() {
            let spec = self.spec.clone();
            reg.register(format!("wl-gen-{g}"), move || {
                Box::new(LoadGen::new(spec.clone(), g))
            });
        }
        reg
    }

    fn plan(&self) -> Vec<PlanSpawn> {
        let gens = self.spec.generators();
        let mut plan = Vec::with_capacity((self.spec.subjects + gens) as usize);
        for k in 0..self.spec.subjects {
            plan.push(PlanSpawn {
                node: NODES - 1,
                program: format!("wl-sink-{k}"),
                links: vec![],
                client: true,
            });
        }
        for g in 0..gens {
            plan.push(PlanSpawn {
                node: g % (NODES - 1),
                program: format!("wl-gen-{g}"),
                links: (0..self.spec.subjects)
                    .map(|k| PlanLink {
                        target: k as usize,
                        channel: Channel::DEFAULT,
                        code: DATA_CODE,
                    })
                    .collect(),
                client: true,
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_spawns_sinks_then_linked_generators() {
        let c = CompiledWorkload::new(WorkloadSpec::default());
        let plan = c.plan();
        assert_eq!(plan.len(), 4, "2 sinks + 2 generators");
        assert!(plan[..2].iter().all(|s| s.links.is_empty()));
        assert!(plan[..2].iter().all(|s| s.node == NODES - 1));
        for (g, s) in plan[2..].iter().enumerate() {
            assert_eq!(s.program, format!("wl-gen-{g}"));
            assert_eq!(s.node, g as u32, "one generator per node");
            assert_eq!(s.links.len(), 2);
            assert!(s.links.iter().all(|l| l.target < 2));
            assert!(s.client);
        }
    }

    #[test]
    fn registry_builds_every_planned_program() {
        let c = CompiledWorkload::new(WorkloadSpec::default());
        let reg = c.registry();
        for s in c.plan() {
            assert!(reg.instantiate(&s.program).is_ok(), "{}", s.program);
        }
    }
}
