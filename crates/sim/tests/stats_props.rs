//! Property tests pinning the merge algebra of the measurement
//! instruments: merge is associative on bucket counts, and total sample
//! counts are conserved (ISSUE 9 satellite).

use proptest::prelude::*;
use publishing_sim::ledger::Timeline;
use publishing_sim::stats::{LinearHistogram, LogHistogram};
use publishing_sim::time::SimTime;

fn log_hist(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn lin_hist(samples: &[f64]) -> LinearHistogram {
    let mut h = LinearHistogram::new(0.0, 1000.0, 16);
    for &s in samples {
        h.record(s);
    }
    h
}

fn log_buckets(h: &LogHistogram) -> Vec<u64> {
    (0..64).map(|i| h.bucket(i)).collect()
}

proptest! {
    #[test]
    fn log_merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..50),
        b in proptest::collection::vec(any::<u64>(), 0..50),
        c in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) on bucket counts and totals.
        let (ha, hb, hc) = (log_hist(&a), log_hist(&b), log_hist(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(log_buckets(&left), log_buckets(&right));
        prop_assert_eq!(left.summary().count(), right.summary().count());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
        }
    }

    #[test]
    fn log_merge_conserves_total_count(
        a in proptest::collection::vec(any::<u64>(), 0..80),
        b in proptest::collection::vec(any::<u64>(), 0..80),
    ) {
        let (ha, hb) = (log_hist(&a), log_hist(&b));
        let mut merged = ha.clone();
        merged.merge(&hb);
        let total = (a.len() + b.len()) as u64;
        prop_assert_eq!(merged.summary().count(), total);
        // Bucket counts sum to the sample count: nothing lost, nothing
        // double-counted.
        prop_assert_eq!(log_buckets(&merged).iter().sum::<u64>(), total);
    }

    #[test]
    fn linear_merge_is_associative_and_conserving(
        ia in proptest::collection::vec(0u64..21_000, 0..50),
        ib in proptest::collection::vec(0u64..21_000, 0..50),
        ic in proptest::collection::vec(0u64..21_000, 0..50),
    ) {
        // Integer deci-units → f64 samples spanning below/inside/above
        // the [0, 1000) histogram range.
        let to_f = |v: &[u64]| v.iter().map(|&x| x as f64 / 10.0 - 100.0).collect::<Vec<_>>();
        let (a, b, c) = (to_f(&ia), to_f(&ib), to_f(&ic));
        let (ha, hb, hc) = (lin_hist(&a), lin_hist(&b), lin_hist(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.counts(), right.counts());
        let total = (a.len() + b.len() + c.len()) as u64;
        prop_assert_eq!(left.summary().count(), total);
        prop_assert_eq!(left.counts().iter().sum::<u64>(), total);
    }

    #[test]
    fn linear_try_merge_mismatch_never_mutates(
        ia in proptest::collection::vec(0u64..10_000, 0..40),
        ib in proptest::collection::vec(0u64..10_000, 0..40),
        buckets in 1usize..8,
        ihi in 10u64..5_000,
    ) {
        let a: Vec<f64> = ia.iter().map(|&x| x as f64 / 10.0).collect();
        let mut h = lin_hist(&a);
        let before_counts = h.counts().to_vec();
        let before_n = h.summary().count();
        // A histogram with a guaranteed-different layout (16 vs <8
        // buckets or a different range).
        let mut other = LinearHistogram::new(0.0, ihi as f64 / 10.0, buckets);
        for &s in &ib {
            other.record(s as f64 / 10.0);
        }
        prop_assert!(!h.try_merge(&other));
        prop_assert_eq!(h.counts(), &before_counts[..]);
        prop_assert_eq!(h.summary().count(), before_n);
    }

    #[test]
    fn timeline_merge_is_associative_and_conserving(
        a in proptest::collection::vec((0u64..500, 0u64..100), 0..20),
        b in proptest::collection::vec((0u64..500, 0u64..100), 0..20),
        c in proptest::collection::vec((0u64..500, 0u64..100), 0..20),
    ) {
        let build = |spans: &[(u64, u64)]| {
            let mut t = Timeline::new();
            for &(start_ms, len_ms) in spans {
                t.add_busy(
                    SimTime::from_millis(start_ms),
                    SimTime::from_millis(start_ms + len_ms),
                );
            }
            t
        };
        let (ta, tb, tc) = (build(&a), build(&b), build(&c));
        let mut left = ta.clone();
        left.merge(&tb);
        left.merge(&tc);
        let mut bc = tb.clone();
        bc.merge(&tc);
        let mut right = ta.clone();
        right.merge(&bc);
        prop_assert_eq!(left.bins(), right.bins());
        // Busy time is conserved under merge.
        let sum = ta.busy_total().as_nanos()
            + tb.busy_total().as_nanos()
            + tc.busy_total().as_nanos();
        prop_assert_eq!(left.busy_total().as_nanos(), sum);
    }
}
