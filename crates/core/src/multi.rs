//! Multiple recorders for reliability (§6.3).
//!
//! "During normal operation, all recorders record all messages. If there
//! are n recorders, n−1 can fail before the network becomes unavailable."
//! Each processing node carries a priority vector over the recorders; a
//! crashed node is recovered by the highest-priority recorder that is
//! functioning, and lower-priority recorders periodically re-check so a
//! recorder that dies mid-recovery is covered. Survivors "supply the
//! acknowledges" for a dead recorder — modelled by shrinking the medium's
//! required-recorder set — and a restarted recorder catches up through
//! natural checkpointing before it is required again.

use crate::node::{RNAction, RecorderConfig, RecorderNode};
use publishing_demos::costs::CostModel;
use publishing_demos::harness::OutputLine;
use publishing_demos::ids::{NodeId, ProcessId};
use publishing_demos::kernel::{Kernel, KernelAction};
use publishing_demos::link::Link;
use publishing_demos::registry::{ProgramRegistry, UnknownProgram};
use publishing_demos::transport::TransportConfig;
use publishing_net::bus::PerfectBus;
use publishing_net::frame::{Frame, StationId};
use publishing_net::lan::{Lan, LanAction, LanConfig};
use publishing_sim::event::Scheduler;
use publishing_sim::time::SimTime;
use std::collections::BTreeMap;

/// Per-node recorder priority orderings (the §6.3 vectors V_i).
#[derive(Debug, Clone, Default)]
pub struct PriorityVectors {
    /// For each node, recorder indices in descending priority.
    pub per_node: BTreeMap<NodeId, Vec<usize>>,
}

impl PriorityVectors {
    /// Round-robin default: node k's vector starts at recorder k mod m.
    pub fn round_robin(nodes: u32, recorders: usize) -> Self {
        let mut per_node = BTreeMap::new();
        for n in 0..nodes {
            let v: Vec<usize> = (0..recorders)
                .map(|i| (n as usize + i) % recorders)
                .collect();
            per_node.insert(NodeId(n), v);
        }
        PriorityVectors { per_node }
    }

    /// The recorder responsible for `node` given per-recorder liveness:
    /// the first functioning recorder in the node's vector.
    pub fn responsible(&self, node: NodeId, alive: &[bool]) -> Option<usize> {
        self.per_node
            .get(&node)?
            .iter()
            .copied()
            .find(|&r| alive.get(r).copied().unwrap_or(false))
    }
}

#[derive(Debug)]
enum MEv {
    LanTimer(u64),
    KernelTimer(u32, u64),
    RecorderTimer(usize, u64),
    Deliver {
        to: u32,
        frame: Frame,
        recorder_ok: bool,
    },
}

/// A world with several recorders.
pub struct MultiWorld {
    sched: Scheduler<MEv>,
    /// The shared medium.
    pub lan: Box<dyn Lan>,
    /// Processing-node kernels.
    pub kernels: BTreeMap<u32, Kernel>,
    /// The recorders.
    pub recorders: Vec<RecorderNode>,
    /// Priority vectors.
    pub priorities: PriorityVectors,
    /// Raw outputs.
    pub outputs: Vec<OutputLine>,
    /// Authoritative node incarnations.
    node_incarnations: BTreeMap<u32, u32>,
    /// Recorders waiting to be re-required once caught up: (index, since).
    rejoining: Vec<(usize, SimTime)>,
    n_nodes: u32,
}

impl MultiWorld {
    /// Builds a world with `nodes` processing nodes and `n_recorders`
    /// recorders (node ids `nodes..nodes+n_recorders`).
    pub fn new(nodes: u32, n_recorders: usize, registry: ProgramRegistry) -> Self {
        let mut lan: Box<dyn Lan> = Box::new(PerfectBus::new(LanConfig::default()));
        let mut kernels = BTreeMap::new();
        let recorder_ids: Vec<NodeId> =
            (0..n_recorders as u32).map(|i| NodeId(nodes + i)).collect();
        for n in 0..nodes {
            let mut k = Kernel::new(
                NodeId(n),
                registry.clone(),
                CostModel::zero(),
                TransportConfig::default(),
                true,
            );
            for r in &recorder_ids {
                k.add_recorder(*r);
            }
            lan.attach(k.station());
            kernels.insert(n, k);
        }
        let mut recorders = Vec::new();
        for r in &recorder_ids {
            let rn = RecorderNode::new(*r, RecorderConfig::default());
            lan.attach(rn.station());
            recorders.push(rn);
        }
        lan.set_required_recorders(recorder_ids.iter().map(|r| StationId(r.0)).collect());
        let mut world = MultiWorld {
            sched: Scheduler::new(),
            lan,
            kernels,
            recorders,
            priorities: PriorityVectors::round_robin(nodes, n_recorders),
            outputs: Vec::new(),
            node_incarnations: BTreeMap::new(),
            rejoining: Vec::new(),
            n_nodes: nodes,
        };
        let watch: Vec<NodeId> = (0..nodes).map(NodeId).collect();
        for i in 0..world.recorders.len() {
            let actions = world.recorders[i].start(SimTime::ZERO, &watch);
            world.apply_recorder(SimTime::ZERO, i, actions);
        }
        world
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    fn alive(&self) -> Vec<bool> {
        self.recorders.iter().map(|r| r.is_up()).collect()
    }

    fn refresh_required(&mut self) {
        let live: Vec<StationId> = self
            .recorders
            .iter()
            .filter(|r| r.is_up())
            .filter(|r| {
                !self
                    .rejoining
                    .iter()
                    .any(|(i, _)| self.recorders[*i].node() == r.node())
            })
            .map(|r| r.station())
            .collect();
        if live.is_empty() {
            // Every recorder is down: require them all, suspending traffic.
            let all: Vec<StationId> = self.recorders.iter().map(|r| r.station()).collect();
            self.lan.set_required_recorders(all);
        } else {
            self.lan.set_required_recorders(live);
        }
    }

    /// Spawns a program on a node.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownProgram`] for unregistered images.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn spawn(
        &mut self,
        node: u32,
        program: &str,
        links: Vec<Link>,
    ) -> Result<ProcessId, UnknownProgram> {
        let now = self.now();
        let k = self.kernels.get_mut(&node).expect("node exists");
        let (pid, actions) = k.spawn(now, program, links)?;
        self.apply_kernel(now, node, actions);
        Ok(pid)
    }

    fn apply_kernel(&mut self, now: SimTime, node: u32, actions: Vec<KernelAction>) {
        for a in actions {
            match a {
                KernelAction::Transmit(frame) => {
                    let lan_actions = self.lan.submit(now, frame);
                    self.apply_lan(lan_actions);
                }
                KernelAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, MEv::KernelTimer(node, token));
                }
                KernelAction::Output { pid, seq, bytes } => {
                    self.outputs.push(OutputLine {
                        at: now,
                        pid,
                        seq,
                        bytes,
                    });
                }
            }
        }
    }

    fn apply_recorder(&mut self, now: SimTime, idx: usize, actions: Vec<RNAction>) {
        for a in actions {
            match a {
                RNAction::Transmit(frame) => {
                    let lan_actions = self.lan.submit(now, frame);
                    self.apply_lan(lan_actions);
                }
                RNAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, MEv::RecorderTimer(idx, token));
                }
                RNAction::RestartNode { node, .. } => {
                    // §6.3: only the highest-priority live recorder acts.
                    let responsible = self.priorities.responsible(node, &self.alive());
                    if responsible != Some(idx) {
                        self.recorders[idx].decline_node_restart(node);
                        continue;
                    }
                    let inc = self.node_incarnations.entry(node.0).or_insert(0);
                    *inc += 1;
                    let incarnation = *inc;
                    if let Some(k) = self.kernels.get_mut(&node.0) {
                        k.restart_node(now, incarnation);
                        self.lan.set_station_up(StationId(node.0), true);
                    }
                    let follow = self.recorders[idx].confirm_node_restarted(now, node, incarnation);
                    self.apply_recorder(now, idx, follow);
                }
                RNAction::RecoveryDone { .. } => {}
            }
        }
    }

    fn apply_lan(&mut self, actions: Vec<LanAction>) {
        for a in actions {
            match a {
                LanAction::Deliver {
                    at,
                    to,
                    frame,
                    recorder_ok,
                } => {
                    self.sched.schedule_at(
                        at,
                        MEv::Deliver {
                            to: to.0,
                            frame,
                            recorder_ok,
                        },
                    );
                }
                LanAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, MEv::LanTimer(token));
                }
                LanAction::TxOutcome { .. } => {}
            }
        }
    }

    fn recorder_index(&self, station: u32) -> Option<usize> {
        self.recorders.iter().position(|r| r.node().0 == station)
    }

    /// Processes one event.
    pub fn step(&mut self) -> bool {
        let Some((now, ev)) = self.sched.pop() else {
            return false;
        };
        match ev {
            MEv::LanTimer(token) => {
                let actions = self.lan.timer(now, token);
                self.apply_lan(actions);
            }
            MEv::KernelTimer(node, token) => {
                if let Some(k) = self.kernels.get_mut(&node) {
                    let actions = k.on_timer(now, token);
                    self.apply_kernel(now, node, actions);
                }
            }
            MEv::RecorderTimer(idx, token) => {
                let actions = self.recorders[idx].on_timer(now, token);
                self.apply_recorder(now, idx, actions);
            }
            MEv::Deliver {
                to,
                frame,
                recorder_ok,
            } => {
                if to < self.n_nodes {
                    if let Some(k) = self.kernels.get_mut(&to) {
                        let actions = k.on_frame(now, &frame, recorder_ok);
                        self.apply_kernel(now, to, actions);
                    }
                } else if let Some(idx) = self.recorder_index(to) {
                    let actions = self.recorders[idx].on_frame(now, &frame, recorder_ok);
                    self.apply_recorder(now, idx, actions);
                }
            }
        }
        // Re-admit rejoining recorders once caught up.
        if !self.rejoining.is_empty() {
            let done: Vec<usize> = self
                .rejoining
                .iter()
                .filter(|(i, since)| self.recorders[*i].recorder().caught_up(*since))
                .map(|(i, _)| *i)
                .collect();
            if !done.is_empty() {
                self.rejoining.retain(|(i, _)| !done.contains(i));
                self.refresh_required();
            }
        }
        true
    }

    /// Runs until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.sched.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
    }

    /// Crashes a recorder; survivors cover for it (required set shrinks).
    pub fn crash_recorder(&mut self, idx: usize) {
        self.recorders[idx].crash();
        let st = self.recorders[idx].station();
        self.lan.set_station_up(st, false);
        self.rejoining.retain(|(i, _)| *i != idx);
        self.refresh_required();
    }

    /// Restarts a recorder; it catches up via natural checkpointing
    /// before the medium requires its acknowledgement again.
    pub fn restart_recorder(&mut self, idx: usize) {
        let now = self.now();
        let st = self.recorders[idx].station();
        self.lan.set_station_up(st, true);
        let actions = self.recorders[idx].restart(now);
        self.apply_recorder(now, idx, actions);
        self.rejoining.push((idx, now));
        self.refresh_required();
    }

    /// Crashes a process (detected fault).
    pub fn crash_process(&mut self, pid: ProcessId, reason: &str) {
        let now = self.now();
        if let Some(k) = self.kernels.get_mut(&pid.node.0) {
            let actions = k.crash_process(now, pid.local, reason);
            self.apply_kernel(now, pid.node.0, actions);
        }
    }

    /// Crashes a node; the responsible recorder restarts it.
    pub fn crash_node(&mut self, node: u32) {
        if let Some(k) = self.kernels.get_mut(&node) {
            k.crash_node();
            self.lan.set_station_up(StationId(node), false);
        }
    }

    /// Deduplicated outputs of one process.
    pub fn outputs_of(&self, pid: ProcessId) -> Vec<String> {
        let mut by_seq: BTreeMap<u64, &OutputLine> = BTreeMap::new();
        for o in self.outputs.iter().filter(|o| o.pid == pid) {
            by_seq.entry(o.seq).or_insert(o);
        }
        by_seq
            .values()
            .map(|o| String::from_utf8_lossy(&o.bytes).into_owned())
            .collect()
    }
}
