//! Time-travel debugging from published history (§6.5).
//!
//! "A programmer would like some way of backing up a process, or
//! processes, to the point where the problem originally occurred.
//! Published communications offers this as a side effect." The debugger
//! reconstructs a process offline from its checkpoint and published
//! message stream, letting the programmer single-step its activations,
//! inspect state between messages, rewind, and run to a predicate.
//!
//! Determinism makes rewind trivial: re-execute from the checkpoint.

use crate::recorder::Recorder;
use publishing_demos::ids::{ChannelSet, LinkId, ProcessId};
use publishing_demos::kernel::decode_ctl;
use publishing_demos::link::LinkTable;
use publishing_demos::message::Message;
use publishing_demos::process::ProcessImage;
use publishing_demos::program::{Ctx, Effect, Program, Received};
use publishing_demos::protocol::codes;
use publishing_demos::registry::ProgramRegistry;
use publishing_sim::codec::Decode;
use publishing_sim::time::SimDuration;

/// What one step of the debugger observed.
#[derive(Debug)]
pub struct StepReport {
    /// The read index in the process's stream.
    pub read_index: u64,
    /// The message delivered at this step.
    pub message: Message,
    /// Whether it was a process-control message handled by the kernel.
    pub control: bool,
    /// Effects the program requested (empty for control messages).
    pub effects: Vec<Effect>,
    /// The program's state snapshot *after* the step.
    pub state_after: Vec<u8>,
    /// CPU the program charged.
    pub compute: SimDuration,
}

/// Errors constructing a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DebugError {
    /// The recorder has no entry for the process.
    UnknownProcess(ProcessId),
    /// The program image is not registered.
    UnknownProgram(String),
    /// The checkpoint failed to decode.
    BadCheckpoint,
}

impl core::fmt::Display for DebugError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DebugError::UnknownProcess(p) => write!(f, "no published history for {p}"),
            DebugError::UnknownProgram(n) => write!(f, "program image {n:?} not registered"),
            DebugError::BadCheckpoint => write!(f, "checkpoint failed to decode"),
        }
    }
}

impl std::error::Error for DebugError {}

/// An offline replay debugger for one process.
pub struct ReplayDebugger {
    pid: ProcessId,
    registry: ProgramRegistry,
    program_name: String,
    checkpoint: Option<ProcessImage>,
    initial_links: Vec<publishing_demos::link::Link>,
    stream: Vec<(u64, Message)>,
    // Live replay state.
    program: Box<dyn Program>,
    links: LinkTable,
    recv_mask: ChannelSet,
    position: usize,
}

impl ReplayDebugger {
    /// Builds a debugger for `pid` from the recorder's database.
    ///
    /// # Errors
    ///
    /// Returns a [`DebugError`] if the process, program, or checkpoint is
    /// unavailable.
    pub fn attach(
        recorder: &Recorder,
        registry: &ProgramRegistry,
        pid: ProcessId,
    ) -> Result<Self, DebugError> {
        let entry = recorder.entry(pid).ok_or(DebugError::UnknownProcess(pid))?;
        let program_name = entry.program_name.clone();
        if !registry.contains(&program_name) {
            return Err(DebugError::UnknownProgram(program_name));
        }
        let checkpoint = match recorder.checkpoint_image(pid) {
            Some(bytes) => {
                Some(ProcessImage::decode_all(bytes).map_err(|_| DebugError::BadCheckpoint)?)
            }
            None => None,
        };
        let stream = recorder.replay_stream(pid);
        let program = registry
            .instantiate(&program_name)
            .map_err(|e| DebugError::UnknownProgram(e.0))?;
        let mut dbg = ReplayDebugger {
            pid,
            registry: registry.clone(),
            program_name,
            checkpoint,
            initial_links: entry.initial_links.clone(),
            stream,
            program,
            links: LinkTable::new(),
            recv_mask: ChannelSet::ALL,
            position: 0,
        };
        dbg.reset().map_err(|_| DebugError::BadCheckpoint)?;
        Ok(dbg)
    }

    /// Rewinds to the checkpoint (position 0 of the stream).
    ///
    /// # Errors
    ///
    /// Returns `Err(())` if the checkpoint no longer decodes.
    #[allow(clippy::result_unit_err)]
    pub fn reset(&mut self) -> Result<(), ()> {
        let mut program = self
            .registry
            .instantiate(&self.program_name)
            .map_err(|_| ())?;
        self.links = LinkTable::new();
        self.recv_mask = ChannelSet::ALL;
        match &self.checkpoint {
            Some(image) => {
                program.restore(&image.program_state).map_err(|_| ())?;
                self.links = image.links.clone();
                self.recv_mask = ChannelSet::from_bits(image.recv_mask_bits);
            }
            None => {
                for l in &self.initial_links {
                    self.links.insert(*l);
                }
                // Re-run on_start exactly as recovery would.
                let mut effects = Vec::new();
                let mut stop = false;
                let mut compute = SimDuration::ZERO;
                let mut ctx = Ctx::new(
                    self.pid,
                    &mut self.links,
                    &mut effects,
                    &mut self.recv_mask,
                    &mut stop,
                    &mut compute,
                );
                program.on_start(&mut ctx);
            }
        }
        self.program = program;
        self.position = 0;
        Ok(())
    }

    /// Returns the replay position (steps executed since the checkpoint).
    pub fn position(&self) -> usize {
        self.position
    }

    /// Returns the number of published messages available to step through.
    pub fn stream_len(&self) -> usize {
        self.stream.len()
    }

    /// Returns the program's current state snapshot.
    pub fn state(&self) -> Vec<u8> {
        self.program.snapshot()
    }

    /// Peeks at the next message without executing it.
    pub fn peek(&self) -> Option<&Message> {
        self.stream.get(self.position).map(|(_, m)| m)
    }

    /// Executes one step; `None` when the history is exhausted.
    pub fn step(&mut self) -> Option<StepReport> {
        let (idx, msg) = self.stream.get(self.position)?.clone();
        self.position += 1;
        if msg.header.deliver_to_kernel {
            // Mirror the kernel's §4.4.3 control handling so link-table
            // evolution matches the live run.
            if let Some((code, payload)) = decode_ctl(&msg.body) {
                match code {
                    codes::MOVELINK_FETCH => {
                        if let Ok(fetch) =
                            publishing_demos::protocol::MoveLinkFetch::decode_all(payload)
                        {
                            self.links.remove(LinkId(fetch.link_id));
                        }
                    }
                    codes::MOVELINK_PUT => {
                        if let Some(link) = msg.passed_link {
                            self.links.insert(link);
                        }
                    }
                    _ => {}
                }
            }
            return Some(StepReport {
                read_index: idx,
                message: msg,
                control: true,
                effects: Vec::new(),
                state_after: self.program.snapshot(),
                compute: SimDuration::ZERO,
            });
        }
        let mut m = msg.clone();
        let link = m.passed_link.take().map(|l| self.links.insert(l));
        let received = Received {
            code: m.header.code,
            channel: m.header.channel,
            body: m.body.clone(),
            link,
        };
        let mut effects = Vec::new();
        let mut stop = false;
        let mut compute = SimDuration::ZERO;
        {
            let mut ctx = Ctx::new(
                self.pid,
                &mut self.links,
                &mut effects,
                &mut self.recv_mask,
                &mut stop,
                &mut compute,
            );
            self.program.on_message(&mut ctx, received);
        }
        Some(StepReport {
            read_index: idx,
            message: msg,
            control: false,
            effects,
            state_after: self.program.snapshot(),
            compute,
        })
    }

    /// Steps until `pred` returns `true` for a report, returning that
    /// report (a breakpoint), or `None` if the history ends first.
    pub fn run_until(&mut self, mut pred: impl FnMut(&StepReport) -> bool) -> Option<StepReport> {
        while let Some(report) = self.step() {
            if pred(&report) {
                return Some(report);
            }
        }
        None
    }

    /// Rewinds to an absolute position by re-executing from the
    /// checkpoint — "watch what happens" (§6.5).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint became undecodable (it decoded at attach).
    pub fn rewind_to(&mut self, position: usize) {
        self.reset().expect("checkpoint decoded at attach time");
        while self.position < position && self.step().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::PublishCost;
    use publishing_demos::ids::{Channel, MessageId, NodeId};
    use publishing_demos::message::MessageHeader;
    use publishing_demos::programs::Accumulator;
    use publishing_sim::time::SimTime;
    use publishing_stable::disk::DiskParams;

    fn setup() -> (Recorder, ProgramRegistry, ProcessId) {
        let mut recorder =
            Recorder::new(NodeId(9), DiskParams::default(), 1, PublishCost::MediaLayer);
        let mut registry = ProgramRegistry::new();
        registry.register("accumulator", || Box::new(Accumulator::default()));
        let pid = ProcessId::new(1, 1);
        let ios = recorder.on_created(SimTime::ZERO, pid, "accumulator", vec![], true);
        for io in ios {
            recorder.on_disk(io.at, io);
        }
        // Publish five additions.
        for i in 1..=5u64 {
            let msg = Message {
                header: MessageHeader {
                    id: MessageId {
                        sender: ProcessId::new(2, 1),
                        seq: i,
                    },
                    to: pid,
                    code: 0,
                    channel: Channel(0),
                    deliver_to_kernel: false,
                },
                passed_link: None,
                body: (i * 10).to_le_bytes().to_vec(),
            };
            recorder.on_data(SimTime::ZERO, &msg);
            let ios = recorder.on_ack(SimTime::ZERO, msg.header.id, pid);
            for io in ios {
                recorder.on_disk(io.at, io);
            }
        }
        (recorder, registry, pid)
    }

    #[test]
    fn stepping_reconstructs_state_incrementally() {
        let (recorder, registry, pid) = setup();
        let mut dbg = ReplayDebugger::attach(&recorder, &registry, pid).unwrap();
        assert_eq!(dbg.stream_len(), 5);
        // After two steps the accumulator holds 10 + 20.
        dbg.step().unwrap();
        let r2 = dbg.step().unwrap();
        let mut acc = Accumulator::default();
        acc.restore(&r2.state_after).unwrap();
        assert_eq!(acc.total, 30);
        assert_eq!(acc.count, 2);
        assert_eq!(dbg.position(), 2);
    }

    #[test]
    fn full_run_matches_direct_execution() {
        let (recorder, registry, pid) = setup();
        let mut dbg = ReplayDebugger::attach(&recorder, &registry, pid).unwrap();
        let mut last = None;
        while let Some(r) = dbg.step() {
            last = Some(r);
        }
        let mut acc = Accumulator::default();
        acc.restore(&last.unwrap().state_after).unwrap();
        assert_eq!(acc.total, 10 + 20 + 30 + 40 + 50);
    }

    #[test]
    fn rewind_reproduces_exactly() {
        let (recorder, registry, pid) = setup();
        let mut dbg = ReplayDebugger::attach(&recorder, &registry, pid).unwrap();
        dbg.step();
        dbg.step();
        dbg.step();
        let state_at_3 = dbg.state();
        dbg.rewind_to(3);
        assert_eq!(dbg.state(), state_at_3, "time travel is deterministic");
        dbg.rewind_to(0);
        let mut acc = Accumulator::default();
        acc.restore(&dbg.state()).unwrap();
        assert_eq!(acc.total, 0);
    }

    #[test]
    fn breakpoint_predicate_stops_midway() {
        let (recorder, registry, pid) = setup();
        let mut dbg = ReplayDebugger::attach(&recorder, &registry, pid).unwrap();
        // Break when the running total first exceeds 50.
        let hit = dbg
            .run_until(|r| {
                let mut acc = Accumulator::default();
                acc.restore(&r.state_after).unwrap();
                acc.total > 50
            })
            .expect("breakpoint hit");
        assert_eq!(hit.read_index, 2, "10+20+30 = 60 > 50 at the third message");
    }

    #[test]
    fn unknown_process_rejected() {
        let (recorder, registry, _) = setup();
        let err = match ReplayDebugger::attach(&recorder, &registry, ProcessId::new(7, 7)) {
            Err(e) => e,
            Ok(_) => panic!("expected error"),
        };
        assert_eq!(err, DebugError::UnknownProcess(ProcessId::new(7, 7)));
    }
}
