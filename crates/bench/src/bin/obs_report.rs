//! Renders the unified observability report for a crash/recovery run of
//! the sharded recorder tier.
//!
//! Drives a deterministic scenario — echo servers on one node, ping
//! clients elsewhere, the server node crashed mid-run and recovered by
//! the responsible shards in parallel — then prints the [`ObsReport`]
//! artifact: shard health (replay lag drained to zero), per-process
//! recovery lag, message-lifecycle stage latencies, the virtual-time
//! profile, and the full metrics registry.
//!
//! Usage: `obs_report [--json] [--smoke]`
//!
//! - `--json` emits the report as a single JSON object instead of text;
//! - `--smoke` runs a smaller scenario (CI-friendly, < 1 s).
//!
//! [`ObsReport`]: publishing_obs::report::ObsReport

use publishing_demos::ids::Channel;
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_obs::span::check_replay_prefix;
use publishing_shard::ShardedWorld;
use publishing_sim::time::SimTime;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(bad) = args.iter().find(|a| *a != "--json" && *a != "--smoke") {
        eprintln!("unknown argument {bad:?}; usage: obs_report [--json] [--smoke]");
        std::process::exit(2);
    }

    let (pings, pairs, horizon) = if smoke {
        (10u64, 2u32, SimTime::from_secs(20))
    } else {
        (25u64, 4u32, SimTime::from_secs(40))
    };

    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("pinger", move || {
        let mut p = PingClient::new(pings);
        p.think_ns = 2_000_000;
        Box::new(p)
    });

    let mut w = ShardedWorld::new(3, 4, reg);
    let mut servers = Vec::new();
    for i in 0..pairs {
        let server = w.spawn(2, "echo", vec![]).expect("echo registered");
        w.spawn(i % 2, "pinger", vec![Link::to(server, Channel::DEFAULT, 7)])
            .expect("pinger registered");
        servers.push(server);
    }
    w.run_until(SimTime::from_millis(50));
    w.crash_node(2);
    w.run_until(horizon);

    let report = w.obs_report();
    if json {
        println!("{}", report.render_json());
    } else {
        println!("{}", report.render_text());
        let kernel = &w.kernels[&2];
        println!("replay-prefix check (crashed node 2):");
        for server in servers {
            match check_replay_prefix(kernel.spans(), server.as_u64()) {
                Ok(n) => println!("  pid {server}: {n} replayed reads match the pre-crash prefix"),
                Err(e) => println!("  pid {server}: DIVERGED: {e}"),
            }
        }
    }

    // A smoke run must actually have exercised recovery.
    if smoke && w.recoveries_completed() == 0 {
        eprintln!("smoke run completed no recoveries");
        std::process::exit(1);
    }
}
