//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the (tiny) subset of the parking_lot API the workspace
//! uses — a `Mutex` whose `lock` does not return a poison `Result` —
//! implemented over `std::sync`. Poisoned locks are recovered rather
//! than propagated, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::MutexGuard as StdMutexGuard;

/// A mutual-exclusion primitive with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, panics in other holders do not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
