//! End-to-end tests of the sharded recorder tier: parallel replay of a
//! crashed node across distinct shards, failover of a dead shard to its
//! backup mid-replay, and recovery from a log segment that was migrated
//! to a freshly added shard.

use publishing_demos::ids::{Channel, ProcessId};
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_shard::{ShardId, ShardedWorld};
use publishing_sim::time::SimTime;

fn registry() -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("ping10", || Box::new(PingClient::new(10)));
    reg.register("slowping", || {
        let mut p = PingClient::new(25);
        p.think_ns = 2_000_000;
        Box::new(p)
    });
    reg
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// The acceptance scenario: a node hosting several processes crashes;
/// its processes are replayed **in parallel from at least two distinct
/// shards** (each by the shard responsible for it), and the recovered
/// run's external output is identical to the crash-free run's.
#[test]
fn node_crash_replays_processes_in_parallel_from_distinct_shards() {
    let run = |crash: bool| -> (u64, ShardedWorld) {
        let mut w = ShardedWorld::new(3, 4, registry());
        // Four servers on node 2 — the node we will crash — with a
        // client for each spread over nodes 0 and 1.
        let mut clients = Vec::new();
        for i in 0..4u32 {
            let server = w.spawn(2, "echo", vec![]).unwrap();
            let client = w
                .spawn(
                    i % 2,
                    "slowping",
                    vec![Link::to(server, Channel::DEFAULT, 7)],
                )
                .unwrap();
            clients.push(client);
        }
        if crash {
            w.run_until(SimTime::from_millis(50));
            w.crash_node(2);
        }
        w.run_until(secs(40));
        for c in &clients {
            let out = w.outputs_of(*c);
            assert_eq!(out.len(), 26, "client {c:?}: {out:?}");
            assert_eq!(out.last().unwrap(), "done");
        }
        (w.output_fingerprint(), w)
    };
    let (clean, _) = run(false);
    let (crashed, w) = run(true);
    assert_eq!(clean, crashed, "recovered run must be externally identical");
    // The node's processes were recovered by the shards responsible for
    // them — and those span at least two distinct shards, i.e. the
    // replay genuinely fanned out.
    let recovering = w.recovering_shards();
    assert!(
        recovering.len() >= 2,
        "expected parallel replay from >= 2 shards, got {recovering:?}"
    );
    for i in 0..4u32 {
        let server = ProcessId::new(2, 2 * i + 1);
        let responsible = w.router().with_map(|m| m.responsible(server)).unwrap();
        assert!(
            w.shards[responsible.0 as usize]
                .manager()
                .stats()
                .completed
                .get()
                >= 1,
            "shard {responsible} should have recovered {server:?}"
        );
    }
}

/// Satellite (c): kill the shard driving a recovery mid-replay. The
/// pid's backup shard (which, with R = 2, already captured the full
/// log) inherits responsibility, re-queries the pid's state, and
/// finishes the recovery — with no duplicated or lost outputs.
#[test]
fn shard_killed_mid_replay_fails_over_to_backup() {
    let run = |kill_shard: bool| -> (u64, ShardedWorld, ProcessId) {
        let mut w = ShardedWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let _client = w
            .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_millis(40));
        w.crash_process(server, "injected");
        if kill_shard {
            // Let the responsible shard start the replay, then kill it
            // while the recovery is in flight.
            let responsible = w.router().with_map(|m| m.responsible(server)).unwrap();
            w.run_until(SimTime::from_millis(42));
            assert_eq!(
                w.shards[responsible.0 as usize]
                    .manager()
                    .stats()
                    .completed
                    .get(),
                0,
                "recovery must still be in flight when the shard dies"
            );
            w.crash_shard(responsible.0 as usize);
        }
        w.run_until(secs(30));
        (w.output_fingerprint(), w, server)
    };
    let (clean, _, _) = run(false);
    let (crashed, w, server) = run(true);
    assert_eq!(clean, crashed, "failover must not lose or duplicate output");
    // The recovery was completed by the *backup*, not the dead shard.
    let now_responsible = w.router().with_map(|m| m.responsible(server)).unwrap();
    assert!(
        w.shards[now_responsible.0 as usize]
            .manager()
            .stats()
            .completed
            .get()
            >= 1,
        "backup shard {now_responsible} should have finished the recovery"
    );
}

/// Rebalancing handoff: after a new shard drains a pid's log segment
/// from its previous holders, a crash of that pid is recovered by the
/// new shard from the migrated records.
#[test]
fn rebalanced_pid_recovers_from_migrated_log() {
    let mut w = ShardedWorld::new(2, 2, registry());
    let mut pairs = Vec::new();
    for _ in 0..5u32 {
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        pairs.push((server, client));
    }
    w.run_until(SimTime::from_millis(40));
    let sid = w.add_shard();
    assert_eq!(sid, ShardId(2));
    // At least one server's responsibility moved to the new shard
    // (HRW: it claims ~1/3 of the pids).
    let moved: Vec<ProcessId> = pairs
        .iter()
        .map(|&(s, _)| s)
        .filter(|&s| w.router().with_map(|m| m.responsible(s)) == Some(sid))
        .collect();
    assert!(
        !moved.is_empty(),
        "expected the new shard to claim a server"
    );
    for &pid in &moved {
        w.crash_process(pid, "post-rebalance crash");
    }
    w.run_until(secs(30));
    for (server, client) in &pairs {
        let out = w.outputs_of(*client);
        assert_eq!(out.len(), 26, "client of {server:?}: {out:?}");
        assert_eq!(out.last().unwrap(), "done");
    }
    // The new shard drove those recoveries from the migrated segments.
    assert!(
        w.shards[2].manager().stats().completed.get() >= moved.len() as u64,
        "new shard must recover the pids it claimed"
    );
}

/// A shard that crashes and comes back is readmitted only after
/// catching up, and the tier keeps running through both transitions.
#[test]
fn crashed_shard_rejoins_after_catching_up() {
    let mut w = ShardedWorld::new(2, 3, registry());
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(30));
    w.crash_shard(0);
    assert!(!w.router().with_map(|m| m.is_live(ShardId(0))));
    w.run_until(SimTime::from_millis(60));
    w.restart_shard(0);
    w.run_until(secs(30));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 26, "{out:?}");
    assert_eq!(out.last().unwrap(), "done");
    assert!(
        w.router().with_map(|m| m.is_live(ShardId(0))),
        "restarted shard should be readmitted once caught up"
    );
    // Both cutovers (out and back in) were published on the medium.
    assert!(w.cutovers_published() >= 2);
}
