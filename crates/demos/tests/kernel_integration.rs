//! Integration tests: kernels exchanging messages over a simulated LAN,
//! without a recorder (recovery-free DEMOS/MP behaviour, Chapter 4).

use publishing_demos::harness::Harness;
use publishing_demos::ids::{Channel, NodeId, ProcessId};
use publishing_demos::kernel::{decode_ctl, encode_ctl, Kernel};
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::protocol::codes;
use publishing_demos::registry::ProgramRegistry;
use publishing_demos::sysproc::{self, sys_codes, CreateDone, CreateReq};
use publishing_demos::transport::TransportConfig;
use publishing_demos::CostModel;
use publishing_net::bus::PerfectBus;
use publishing_net::lan::{Lan, LanConfig};
use publishing_sim::codec::{Decode, Decoder, Encode, Encoder};
use publishing_sim::fault::FaultPlan;
use publishing_sim::time::{SimDuration, SimTime};

fn registry() -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    sysproc::register_system(&mut reg);
    reg.register("ping3", || Box::new(PingClient::new(3)));
    reg
}

fn harness(nodes: u32, publishing: bool) -> Harness {
    let bus = PerfectBus::new(LanConfig::default());
    let mut h = Harness::new(Box::new(bus));
    for n in 0..nodes {
        let k = Kernel::new(
            NodeId(n),
            registry(),
            CostModel::default(),
            TransportConfig::default(),
            publishing,
        );
        h.add_kernel(k);
    }
    h
}

#[test]
fn internode_ping_pong_completes() {
    let mut h = harness(2, false);
    let t0 = SimTime::ZERO;
    // Echo server on node 1.
    let (server, acts) = h
        .kernels
        .get_mut(&1)
        .unwrap()
        .spawn(t0, "echo", vec![])
        .unwrap();
    h.apply_kernel(t0, 1, acts);
    // Ping client on node 0 with a link to the server.
    let (client, acts) = h
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(t0, "ping3", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    h.apply_kernel(t0, 0, acts);
    h.run_to_quiescence();
    let out = h.outputs_of(client);
    assert_eq!(out.len(), 4, "3 pongs + done: {out:?}");
    assert!(out[0].starts_with("pong 1"));
    assert!(out[2].starts_with("pong 3"));
    assert_eq!(out[3], "done");
    // The server counted three echoes.
    let server_proc = h.kernels[&1].process(server.local).unwrap();
    assert_eq!(server_proc.read_count, 3);
}

#[test]
fn published_intranode_messages_cross_the_wire() {
    let mut h = harness(1, true);
    h.kernels.get_mut(&0).unwrap().set_recorder(NodeId(0));
    let t0 = SimTime::ZERO;
    let (server, acts) = h
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(t0, "echo", vec![])
        .unwrap();
    h.apply_kernel(t0, 0, acts);
    let (client, acts) = h
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(t0, "ping3", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    h.apply_kernel(t0, 0, acts);
    h.run_to_quiescence();
    assert_eq!(h.outputs_of(client).len(), 4);
    // Everything went over the medium: pings, pongs, acks.
    assert!(
        h.lan.stats().submitted.get() >= 12,
        "submitted {}",
        h.lan.stats().submitted.get()
    );
    // Publishing also made real time much longer than the local path.
    let mut local = harness(1, false);
    let (server2, acts) = local
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(t0, "echo", vec![])
        .unwrap();
    local.apply_kernel(t0, 0, acts);
    let (_c2, acts) = local
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(t0, "ping3", vec![Link::to(server2, Channel::DEFAULT, 7)])
        .unwrap();
    local.apply_kernel(t0, 0, acts);
    local.run_to_quiescence();
    assert_eq!(
        local.lan.stats().submitted.get(),
        0,
        "no frames without publishing"
    );
    assert!(
        h.now() > local.now(),
        "publishing path is slower in real time"
    );
    // And used more CPU (the Figure 5.7 effect).
    assert!(h.kernels[&0].stats().cpu_used > local.kernels[&0].stats().cpu_used);
}

#[test]
fn transport_masks_frame_loss() {
    let mut h = harness(2, false);
    // 20% frame loss: retransmission must still deliver everything.
    let mut bus = PerfectBus::new(LanConfig {
        seed: 77,
        ..LanConfig::default()
    });
    bus.set_faults(FaultPlan::new().with_frame_loss(0.2));
    for n in 0..2 {
        bus.attach(publishing_net::frame::StationId(n));
    }
    h.lan = Box::new(bus);
    let t0 = SimTime::ZERO;
    let (server, acts) = h
        .kernels
        .get_mut(&1)
        .unwrap()
        .spawn(t0, "echo", vec![])
        .unwrap();
    h.apply_kernel(t0, 1, acts);
    let mut reg = registry();
    reg.register("ping20", || Box::new(PingClient::new(20)));
    let mut k0 = Kernel::new(
        NodeId(0),
        reg,
        CostModel::zero(),
        TransportConfig::default(),
        false,
    );
    k0.set_recorder(NodeId(0));
    // Replace node 0's kernel with one knowing ping20.
    h.kernels.insert(0, k0);
    let (client, acts) = h
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(t0, "ping20", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    h.apply_kernel(t0, 0, acts);
    h.run_to_quiescence();
    let out = h.outputs_of(client);
    assert_eq!(out.len(), 21, "all 20 pongs arrive despite loss");
    // Retransmissions actually happened.
    let retr = h.kernels[&0].transport_stats().retransmits.get()
        + h.kernels[&1].transport_stats().retransmits.get();
    assert!(retr > 0, "loss should force retransmissions");
}

#[test]
fn movelink_dance_transfers_a_link() {
    // Process A (an accumulator-feeder) moves its link to the echo server
    // over to process B via the Figure 4.5 three-message dance, then B
    // uses it. We script A and B with Chatter-free custom programs via
    // the registry.
    use publishing_demos::program::{Ctx, Program, Received};
    use publishing_sim::codec::CodecError;

    /// A: owns a link to the sink (initial link 1) and a control link to B
    /// (initial link 0); kicks off MOVELINK at start.
    struct Giver;
    impl Program for Giver {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let give = publishing_demos::protocol::MoveLinkGive { link_id: 1 };
            let _ = ctx.send(
                publishing_demos::LinkId(0),
                encode_ctl(codes::MOVELINK_GIVE, &give),
            );
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: Received) {}
        fn snapshot(&self) -> Vec<u8> {
            vec![]
        }
        fn restore(&mut self, _: &[u8]) -> Result<(), CodecError> {
            Ok(())
        }
    }

    /// B: when told a link was installed (MOVELINK_DONE), sends 42 over it.
    struct Taker;
    impl Program for Taker {
        fn on_start(&mut self, _: &mut Ctx<'_>) {}
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
            if let Some((codes::MOVELINK_DONE, payload)) = decode_ctl(&msg.body) {
                let mut d = Decoder::new(payload);
                let id = d.u32().unwrap();
                let _ = ctx.send(publishing_demos::LinkId(id), 42u64.to_le_bytes().to_vec());
                ctx.output(b"sent via moved link".to_vec());
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![]
        }
        fn restore(&mut self, _: &[u8]) -> Result<(), CodecError> {
            Ok(())
        }
    }

    let mut reg = registry();
    reg.register("giver", || Box::new(Giver));
    reg.register("taker", || Box::new(Taker));
    let bus = PerfectBus::new(LanConfig::default());
    let mut h = Harness::new(Box::new(bus));
    for n in 0..2 {
        h.add_kernel(Kernel::new(
            NodeId(n),
            reg.clone(),
            CostModel::zero(),
            TransportConfig::default(),
            false,
        ));
    }
    let t0 = SimTime::ZERO;
    let (sink, acts) = h
        .kernels
        .get_mut(&1)
        .unwrap()
        .spawn(t0, "accumulator", vec![])
        .unwrap();
    h.apply_kernel(t0, 1, acts);
    let (taker, acts) = h
        .kernels
        .get_mut(&1)
        .unwrap()
        .spawn(t0, "taker", vec![])
        .unwrap();
    h.apply_kernel(t0, 1, acts);
    let (giver, acts) = h
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(
            t0,
            "giver",
            vec![Link::control(taker, 0), Link::to(sink, Channel::DEFAULT, 0)],
        )
        .unwrap();
    h.apply_kernel(t0, 0, acts);
    h.run_to_quiescence();
    // B sent 42 to the accumulator via the moved link.
    let sink_proc = h.kernels[&1].process(sink.local).unwrap();
    assert_eq!(h.outputs_of(taker), vec!["sent via moved link"]);
    assert_eq!(sink_proc.read_count, 1);
    // A no longer holds the moved link.
    let giver_proc = h.kernels[&0].process(giver.local).unwrap();
    assert!(giver_proc.links.get(publishing_demos::LinkId(1)).is_none());
}

#[test]
fn create_chain_spawns_process_on_remote_node() {
    // user (node 0) → procmgr (node 0) → memsched (node 0) → kernel of
    // node 1 → replies back up with a control link.
    use publishing_demos::program::{Ctx, Program, Received};
    use publishing_sim::codec::CodecError;

    /// Asks the process manager (initial link 0) for an "echo" on node 1,
    /// then stops the new process via the returned control link.
    #[derive(Default)]
    struct User {
        created: Option<ProcessId>,
    }
    impl Program for User {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let reply = ctx.create_link(Channel::DEFAULT, 0);
            let req = CreateReq {
                program_name: "echo".into(),
                node: NodeId(1),
                req_id: 0,
            };
            let _ = ctx.send_passing(
                publishing_demos::LinkId(0),
                encode_ctl(sys_codes::PM_CREATE, &req),
                reply,
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
            if let Some((sys_codes::PM_REPLY, payload)) = decode_ctl(&msg.body) {
                let done = CreateDone::decode_all(payload).unwrap();
                self.created = done.pid;
                ctx.output(format!("created {:?}", done.pid).into_bytes());
                if let Some(control) = msg.link {
                    // Stop the new process through its control link.
                    let mut e = Encoder::new();
                    e.u32(codes::STOP_PROCESS);
                    let _ = ctx.send(control, e.finish());
                }
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            let mut e = Encoder::new();
            e.option(self.created.as_ref(), |e, p| p.encode(e));
            e.finish()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
            let mut d = Decoder::new(bytes);
            self.created = d.option(ProcessId::decode)?;
            d.finish()
        }
    }

    let mut reg = registry();
    reg.register("user", || Box::<User>::default());
    let bus = PerfectBus::new(LanConfig::default());
    let mut h = Harness::new(Box::new(bus));
    for n in 0..2 {
        h.add_kernel(Kernel::new(
            NodeId(n),
            reg.clone(),
            CostModel::zero(),
            TransportConfig::default(),
            false,
        ));
    }
    let t0 = SimTime::ZERO;
    // Boot the control chain: memsched with links to both kernels, then
    // procmgr with a link to memsched.
    let (memsched, acts) = h
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(
            t0,
            "memsched",
            vec![
                Link::to(ProcessId::kernel_of(NodeId(0)), Channel::DEFAULT, 0),
                Link::to(ProcessId::kernel_of(NodeId(1)), Channel::DEFAULT, 0),
            ],
        )
        .unwrap();
    h.apply_kernel(t0, 0, acts);
    let (procmgr, acts) = h
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(t0, "procmgr", vec![Link::to(memsched, Channel::DEFAULT, 0)])
        .unwrap();
    h.apply_kernel(t0, 0, acts);
    let (user, acts) = h
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(t0, "user", vec![Link::to(procmgr, Channel::DEFAULT, 0)])
        .unwrap();
    h.apply_kernel(t0, 0, acts);
    h.run_to_quiescence();
    let out = h.outputs_of(user);
    assert_eq!(out.len(), 1);
    assert!(out[0].starts_with("created Some"), "{out:?}");
    // The created process lived on node 1 and was subsequently stopped.
    assert_eq!(h.kernels[&1].stats().creates.get(), 1);
    assert_eq!(h.kernels[&1].stats().destroys.get(), 1);
}

#[test]
fn selective_receive_emits_read_order_notices() {
    // A channel reader on a publishing node: urgent traffic read ahead of
    // the queue head must produce READ_ORDER notices toward the recorder.
    use publishing_demos::program::{Ctx, Program, Received};
    use publishing_sim::codec::CodecError;

    /// Sends two low-priority then one urgent message to the reader.
    struct Feeder;
    impl Program for Feeder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Initial links: 0 = reader ch0, 1 = reader ch5 (urgent).
            let _ = ctx.send(publishing_demos::LinkId(0), b"low1".to_vec());
            let _ = ctx.send(publishing_demos::LinkId(0), b"low2".to_vec());
            let _ = ctx.send(publishing_demos::LinkId(1), b"urgent".to_vec());
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: Received) {}
        fn snapshot(&self) -> Vec<u8> {
            vec![]
        }
        fn restore(&mut self, _: &[u8]) -> Result<(), CodecError> {
            Ok(())
        }
    }

    let mut reg = registry();
    reg.register("feeder", || Box::new(Feeder));
    reg.register("reader", || {
        Box::new(publishing_demos::programs::ChannelReader::new(Channel(5)))
    });
    let bus = PerfectBus::new(LanConfig::default());
    let mut h = Harness::new(Box::new(bus));
    for n in 0..3 {
        let mut k = Kernel::new(
            NodeId(n),
            reg.clone(),
            CostModel::zero(),
            TransportConfig::default(),
            true,
        );
        // Node 2 plays recorder (its kernel endpoint absorbs notices).
        k.set_recorder(NodeId(2));
        h.add_kernel(k);
    }
    let t0 = SimTime::ZERO;
    let (reader, acts) = h
        .kernels
        .get_mut(&1)
        .unwrap()
        .spawn(t0, "reader", vec![])
        .unwrap();
    h.apply_kernel(t0, 1, acts);
    let (_feeder, acts) = h
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(
            t0,
            "feeder",
            vec![
                Link::to(reader, Channel(0), 0),
                Link::to(reader, Channel(5), 0),
            ],
        )
        .unwrap();
    h.apply_kernel(t0, 0, acts);
    h.run_to_quiescence();
    // The reader starts urgent-only, so it reads "urgent" (skipping two
    // queued low messages) → at least one notice.
    assert!(
        h.kernels[&1].stats().read_order_notices.get() >= 1,
        "expected a read-order notice"
    );
    // The reader consumed "urgent" (out of order) and then "low1"; its
    // mask then closed back to the urgent channel, so "low2" stays queued
    // — exactly the §4.2.2.2 selective-receive semantics.
    let p = h.kernels[&1].process(reader.local).unwrap();
    assert_eq!(p.read_count, 2);
    assert_eq!(p.queue.len(), 1);
}

#[test]
fn crashed_process_discards_messages() {
    let mut h = harness(2, false);
    let t0 = SimTime::ZERO;
    let (server, acts) = h
        .kernels
        .get_mut(&1)
        .unwrap()
        .spawn(t0, "echo", vec![])
        .unwrap();
    h.apply_kernel(t0, 1, acts);
    let acts = h
        .kernels
        .get_mut(&1)
        .unwrap()
        .crash_process(t0, server.local, "injected");
    h.apply_kernel(t0, 1, acts);
    let (client, acts) = h
        .kernels
        .get_mut(&0)
        .unwrap()
        .spawn(t0, "ping3", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    h.apply_kernel(t0, 0, acts);
    h.run_until(SimTime::ZERO + SimDuration::from_secs(2));
    // No pongs: the crashed server consumed nothing.
    assert!(h.outputs_of(client).is_empty());
    let p = h.kernels[&1].process(server.local).unwrap();
    assert_eq!(p.read_count, 0);
}
