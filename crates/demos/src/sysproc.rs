//! System processes (§4.2.1, §4.2.3): the process manager, memory
//! scheduler, and named-link server.
//!
//! "While the kernel provides primitive functionality, the system
//! processes provide structure and policy." Process control is split
//! across three serially connected parts — process manager → memory
//! scheduler → kernel process — "for modularity"; a user-level creation
//! request traverses the whole chain and the reply (carrying a control
//! link to the new process) travels back up it. With publishing on, every
//! hop is a published message, which is precisely why Figure 5.8's
//! create/destroy costs balloon under publishing.
//!
//! All three are ordinary deterministic [`Program`]s: they are themselves
//! recoverable by replay, with their pending-request tables checkpointed
//! like any other program state.

use crate::ids::{Channel, LinkId, NodeId, ProcessId};
use crate::kernel::{decode_ctl, encode_ctl};
use crate::link::Link;
use crate::program::{Ctx, Program, Received};
use crate::protocol::{self, codes};
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use std::collections::BTreeMap;

/// Body codes for the system-process protocols (user ↔ procmgr ↔
/// memsched; user ↔ name server).
pub mod sys_codes {
    /// User → process manager: create a process (body:
    /// [`super::CreateReq`]; passed link: where to send the reply).
    pub const PM_CREATE: u32 = 0x3001;
    /// Process manager → memory scheduler (body: [`super::CreateReq`] +
    /// request id; passed link: reply link to the process manager).
    pub const MS_CREATE: u32 = 0x3002;
    /// Memory scheduler → process manager reply (body:
    /// [`super::CreateDone`]; passed link: control link to new process).
    pub const MS_REPLY: u32 = 0x3003;
    /// Process manager → user reply (body: [`super::CreateDone`]; passed
    /// link: control link).
    pub const PM_REPLY: u32 = 0x3004;
    /// Register a named link (body: name string; passed link: the link).
    pub const NS_REGISTER: u32 = 0x3005;
    /// Look up a named link (body: name; passed link: reply link).
    pub const NS_LOOKUP: u32 = 0x3006;
    /// Name-server reply (body: found flag + name; passed link: the
    /// registered link if found).
    pub const NS_REPLY: u32 = 0x3007;
}

/// A create request as it travels down the control chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateReq {
    /// Program image to instantiate.
    pub program_name: String,
    /// Node to create the process on.
    pub node: NodeId,
    /// Chain-internal request id (0 from the user; assigned by the
    /// process manager).
    pub req_id: u64,
}

impl Encode for CreateReq {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.program_name).u32(self.node.0).u64(self.req_id);
    }
}

impl Decode for CreateReq {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CreateReq {
            program_name: d.str()?,
            node: NodeId(d.u32()?),
            req_id: d.u64()?,
        })
    }
}

/// A create reply as it travels back up the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreateDone {
    /// The created process, or `None` on failure.
    pub pid: Option<ProcessId>,
    /// Chain-internal request id.
    pub req_id: u64,
}

impl Encode for CreateDone {
    fn encode(&self, e: &mut Encoder) {
        e.option(self.pid.as_ref(), |e, p| p.encode(e));
        e.u64(self.req_id);
    }
}

impl Decode for CreateDone {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CreateDone {
            pid: d.option(ProcessId::decode)?,
            req_id: d.u64()?,
        })
    }
}

/// The process manager: accepts user create requests, enforces a
/// per-requester process limit (the §4.2.3 job limits), and forwards work
/// to the memory scheduler over its initial link 0.
#[derive(Debug)]
pub struct ProcessManager {
    /// Max processes a single requester may create (the job limit).
    pub limit_per_requester: u64,
    next_req: u64,
    /// Pending requests: req id → link id of the user's reply link.
    pending: BTreeMap<u64, u32>,
    /// Created-process counts per requester (keyed by packed pid).
    jobs: BTreeMap<u64, u64>,
}

impl ProcessManager {
    /// Creates a process manager with the given job limit.
    pub fn new(limit_per_requester: u64) -> Self {
        ProcessManager {
            limit_per_requester,
            next_req: 1,
            pending: BTreeMap::new(),
            jobs: BTreeMap::new(),
        }
    }
}

impl Program for ProcessManager {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        let Some((code, payload)) = decode_ctl(&msg.body) else {
            return;
        };
        match code {
            sys_codes::PM_CREATE => {
                let Ok(mut req) = CreateReq::decode_all(payload) else {
                    return;
                };
                let Some(user_reply) = msg.link else { return };
                // Job limits: refuse beyond the per-requester cap. The
                // requester is identified by the reply link's destination.
                let requester = ctx.link(user_reply).map(|l| l.dest.as_u64()).unwrap_or(0);
                let used = self.jobs.get(&requester).copied().unwrap_or(0);
                if used >= self.limit_per_requester {
                    let done = CreateDone {
                        pid: None,
                        req_id: req.req_id,
                    };
                    let _ = ctx.send(user_reply, encode_ctl(sys_codes::PM_REPLY, &done));
                    return;
                }
                self.jobs.insert(requester, used + 1);
                let req_id = self.next_req;
                self.next_req += 1;
                self.pending.insert(req_id, user_reply.0);
                req.req_id = req_id;
                // Pass the memory scheduler a reply link whose code is the
                // request id — the §4.2.2.1 "links as resource pointers"
                // idiom.
                let reply = ctx.create_link(Channel::DEFAULT, req_id as u32);
                let _ = ctx.send_passing(LinkId(0), encode_ctl(sys_codes::MS_CREATE, &req), reply);
            }
            sys_codes::MS_REPLY => {
                let Ok(done) = CreateDone::decode_all(payload) else {
                    return;
                };
                let Some(user_link_id) = self.pending.remove(&done.req_id) else {
                    return;
                };
                let body = encode_ctl(sys_codes::PM_REPLY, &done);
                match msg.link {
                    Some(control) => {
                        let _ = ctx.send_passing(LinkId(user_link_id), body, control);
                    }
                    None => {
                        let _ = ctx.send(LinkId(user_link_id), body);
                    }
                }
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.limit_per_requester).u64(self.next_req);
        e.u64(self.pending.len() as u64);
        for (req, link) in &self.pending {
            e.u64(*req).u32(*link);
        }
        e.u64(self.jobs.len() as u64);
        for (who, n) in &self.jobs {
            e.u64(*who).u64(*n);
        }
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.limit_per_requester = d.u64()?;
        self.next_req = d.u64()?;
        self.pending.clear();
        for _ in 0..d.u64()? {
            let req = d.u64()?;
            let link = d.u32()?;
            self.pending.insert(req, link);
        }
        self.jobs.clear();
        for _ in 0..d.u64()? {
            let who = d.u64()?;
            let n = d.u64()?;
            self.jobs.insert(who, n);
        }
        d.finish()
    }
}

/// The memory scheduler: knows every node's kernel endpoint (initial
/// links 0..n-1, one per node in node-id order) and completes creations
/// against the right kernel.
#[derive(Debug)]
pub struct MemoryScheduler {
    next_req: u64,
    /// Pending: my req id → (procmgr reply link id, procmgr's req id).
    pending: BTreeMap<u64, (u32, u64)>,
}

impl MemoryScheduler {
    /// Creates a memory scheduler.
    pub fn new() -> Self {
        MemoryScheduler {
            next_req: 1,
            pending: BTreeMap::new(),
        }
    }
}

impl Default for MemoryScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Program for MemoryScheduler {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        let Some((code, payload)) = decode_ctl(&msg.body) else {
            return;
        };
        match code {
            sys_codes::MS_CREATE => {
                let Ok(req) = CreateReq::decode_all(payload) else {
                    return;
                };
                let Some(pm_reply) = msg.link else { return };
                let my_req = self.next_req;
                self.next_req += 1;
                self.pending.insert(my_req, (pm_reply.0, req.req_id));
                // Build a reply link for the kernel to answer on; its code
                // carries our request id. The link value rides inside the
                // CreateProcess body (kernels are trusted with raw links).
                let reply_id = ctx.create_link(Channel::DEFAULT, my_req as u32);
                let reply_link = ctx.take_link(reply_id).expect("just created");
                let create = protocol::CreateProcess {
                    program_name: req.program_name,
                    initial_links: Vec::new(),
                    reply_to: Some(reply_link),
                };
                // Initial link k is the kernel endpoint of node k.
                let kernel_link = LinkId(req.node.0);
                let _ = ctx.send(kernel_link, encode_ctl(codes::CREATE_PROCESS, &create));
            }
            codes::CREATE_REPLY => {
                let Ok(reply) = protocol::CreateReply::decode_all(payload) else {
                    return;
                };
                // The link's code carried our request id.
                let my_req = msg.code as u64;
                let Some((pm_link, pm_req)) = self.pending.remove(&my_req) else {
                    return;
                };
                let done = CreateDone {
                    pid: reply.pid,
                    req_id: pm_req,
                };
                let body = encode_ctl(sys_codes::MS_REPLY, &done);
                match msg.link {
                    Some(control) => {
                        let _ = ctx.send_passing(LinkId(pm_link), body, control);
                    }
                    None => {
                        let _ = ctx.send(LinkId(pm_link), body);
                    }
                }
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.next_req);
        e.u64(self.pending.len() as u64);
        for (req, (link, pm_req)) in &self.pending {
            e.u64(*req).u32(*link).u64(*pm_req);
        }
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.next_req = d.u64()?;
        self.pending.clear();
        for _ in 0..d.u64()? {
            let req = d.u64()?;
            let link = d.u32()?;
            let pm_req = d.u64()?;
            self.pending.insert(req, (link, pm_req));
        }
        d.finish()
    }
}

/// The named-link server (§4.2.2.1): solves the rendezvous problem.
/// Links are registered under names and handed out on lookup.
#[derive(Debug, Default)]
pub struct NameServer {
    names: BTreeMap<String, Link>,
}

impl NameServer {
    /// Creates an empty name server.
    pub fn new() -> Self {
        NameServer::default()
    }
}

impl Program for NameServer {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        let Some((code, payload)) = decode_ctl(&msg.body) else {
            return;
        };
        let mut d = Decoder::new(payload);
        let Ok(name) = d.str() else { return };
        match code {
            sys_codes::NS_REGISTER => {
                if let Some(link_id) = msg.link {
                    if let Ok(link) = ctx.take_link(link_id) {
                        self.names.insert(name, link);
                    }
                }
            }
            sys_codes::NS_LOOKUP => {
                let Some(reply) = msg.link else { return };
                let mut e = Encoder::new();
                e.u32(sys_codes::NS_REPLY);
                match self.names.get(&name) {
                    Some(link) => {
                        e.bool(true).str(&name);
                        let handout = ctx.install_link(*link);
                        let _ = ctx.send_passing(reply, e.finish(), handout);
                    }
                    None => {
                        e.bool(false).str(&name);
                        let _ = ctx.send(reply, e.finish());
                    }
                }
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.names.len() as u64);
        for (name, link) in &self.names {
            e.str(name);
            link.encode(&mut e);
        }
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.names.clear();
        for _ in 0..d.u64()? {
            let name = d.str()?;
            let link = Link::decode(&mut d)?;
            self.names.insert(name, link);
        }
        d.finish()
    }
}

/// Registers the system programs under their conventional names.
pub fn register_system(reg: &mut crate::registry::ProgramRegistry) {
    reg.register("procmgr", || Box::new(ProcessManager::new(64)));
    reg.register("memsched", || Box::new(MemoryScheduler::new()));
    reg.register("namesrv", || Box::new(NameServer::new()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_req_roundtrip() {
        let r = CreateReq {
            program_name: "echo".into(),
            node: NodeId(3),
            req_id: 7,
        };
        assert_eq!(CreateReq::decode_all(&r.encode_to_vec()).unwrap(), r);
    }

    #[test]
    fn create_done_roundtrip() {
        for pid in [Some(ProcessId::new(1, 2)), None] {
            let d = CreateDone { pid, req_id: 9 };
            assert_eq!(CreateDone::decode_all(&d.encode_to_vec()).unwrap(), d);
        }
    }

    #[test]
    fn procmgr_snapshot_roundtrip() {
        let mut pm = ProcessManager::new(8);
        pm.pending.insert(3, 5);
        pm.jobs.insert(77, 2);
        pm.next_req = 4;
        let snap = pm.snapshot();
        let mut pm2 = ProcessManager::new(0);
        pm2.restore(&snap).unwrap();
        assert_eq!(pm2.snapshot(), snap);
        assert_eq!(pm2.limit_per_requester, 8);
    }

    #[test]
    fn memsched_snapshot_roundtrip() {
        let mut ms = MemoryScheduler::new();
        ms.pending.insert(1, (2, 3));
        ms.next_req = 5;
        let snap = ms.snapshot();
        let mut ms2 = MemoryScheduler::new();
        ms2.restore(&snap).unwrap();
        assert_eq!(ms2.snapshot(), snap);
    }

    #[test]
    fn nameserver_snapshot_roundtrip() {
        let mut ns = NameServer::new();
        ns.names.insert(
            "printer".into(),
            Link::to(ProcessId::new(2, 4), Channel(1), 9),
        );
        let snap = ns.snapshot();
        let mut ns2 = NameServer::new();
        ns2.restore(&snap).unwrap();
        assert_eq!(ns2.snapshot(), snap);
    }
}
