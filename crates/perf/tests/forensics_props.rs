//! Property tests pinning the regression-forensics invariants.
//!
//! - **Self-diff emptiness**: any generated snapshot diffed against
//!   itself yields a passing comparison and an empty diagnosis — no
//!   metric family, fingerprint set, or host section may break it.
//! - **Antisymmetry**: `metric_deltas(a, b)` and `metric_deltas(b, a)`
//!   pair up with exactly negated deltas and identical significance
//!   verdicts, so "who is the baseline" never changes what is real.
//! - **Suspect sanity**: diagnosis suspects only ever name metrics that
//!   actually moved, and every finding belongs to a scenario present in
//!   both snapshots.

use proptest::prelude::*;
use publishing_perf::forensics::{
    diff_snapshots, metric_deltas, ForensicsOptions, NoiseModel, Section,
};
use publishing_perf::snapshot::{ScenarioSnapshot, Snapshot};

/// Metric-name pool mixing gated suffixes, attribution families, and
/// ungated noise — the shapes a real snapshot carries.
const METRICS: &[&str] = &[
    "events_per_virtual_sec",
    "publish_to_deliver_us_p99",
    "capture_to_sequence_us_p50",
    "peak_queue_depth",
    "profile_kernel_cpu_ms",
    "profile_medium_busy_ms",
    "util_cpu_proto_busy_ms",
    "util_transport_busy_ms",
    "critical_path_replay_ms",
    "single_capacity_users",
    "perfect_lens_knee",
    "perfect_proto_cpu_predicted",
    "spans_total",
];

const HOST: &[&str] = &["wall_ms", "allocations", "alloc_bytes"];

fn arb_scenario(name: &'static str) -> impl Strategy<Value = ScenarioSnapshot> {
    // The vendored proptest shim has integer range strategies only, so
    // values are drawn as micro-units and scaled into f64 readings.
    (
        proptest::collection::vec((0usize..METRICS.len(), 0u64..1_000_000_000), 0..10),
        proptest::collection::vec((0usize..HOST.len(), 0u64..10_000_000_000), 0..3),
        proptest::option::of(0u64..4),
    )
        .prop_map(move |(virt, host, binding)| {
            let mut s = ScenarioSnapshot::new(name);
            for (i, v) in virt {
                s.virt(METRICS[i], v as f64 / 1e3);
            }
            for (i, v) in host {
                s.host(HOST[i], v as f64 / 1e3);
            }
            if let Some(b) = binding {
                s.fingerprints
                    .insert("binding".into(), format!("resource {b}"));
            }
            s
        })
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (arb_scenario("alpha"), arb_scenario("beta")).prop_map(|(a, b)| {
        let mut snap = Snapshot::new("smoke");
        snap.scenarios.push(a);
        snap.scenarios.push(b);
        snap
    })
}

proptest! {
    #[test]
    fn self_diff_is_always_empty(snap in arb_snapshot()) {
        let (c, diagnosis) =
            diff_snapshots("self", &snap, &snap, &ForensicsOptions::default());
        prop_assert_eq!(c.exit_code(), 0, "self-compare must pass:\n{}", c.render());
        prop_assert!(
            diagnosis.is_empty(),
            "self-diff must be empty:\n{}",
            diagnosis.render()
        );
    }

    #[test]
    fn metric_deltas_are_antisymmetric(
        a in arb_scenario("alpha"),
        b in arb_scenario("alpha"),
    ) {
        let noise = NoiseModel::default();
        let fwd = metric_deltas(&a, &b, &noise);
        let rev = metric_deltas(&b, &a, &noise);
        // Both directions see the same both-sided metric set, in the
        // same order (virtual first, then host, name-sorted).
        prop_assert_eq!(fwd.len(), rev.len());
        for (f, r) in fwd.iter().zip(&rev) {
            prop_assert_eq!(&f.metric, &r.metric);
            prop_assert_eq!(f.section, r.section);
            prop_assert_eq!(f.delta(), -r.delta(), "signed deltas must negate");
            prop_assert_eq!(
                f.significant, r.significant,
                "significance must not depend on diff direction ({})",
                f.metric
            );
        }
    }

    #[test]
    fn wall_clock_is_never_significant(
        a in arb_scenario("alpha"),
        b in arb_scenario("alpha"),
    ) {
        let mut b = b;
        b.host("wall_ms", 1e9); // absurd wall-clock jump
        let with_wall = {
            let mut a = a.clone();
            a.host("wall_ms", 0.001);
            a
        };
        for m in metric_deltas(&with_wall, &b, &NoiseModel::default()) {
            if m.metric == "wall_ms" {
                prop_assert!(!m.significant, "wall_ms can never be significant");
            }
        }
    }

    #[test]
    fn suspects_only_name_moved_metrics(
        prev in arb_snapshot(),
        new in arb_snapshot(),
    ) {
        let (_, diagnosis) =
            diff_snapshots("base", &prev, &new, &ForensicsOptions::default());
        for f in &diagnosis.findings {
            let (Some(ps), Some(ns)) = (prev.scenario(&f.scenario), new.scenario(&f.scenario))
            else {
                panic!("finding names scenario {} missing from a side", f.scenario);
            };
            for s in &f.suspects {
                // A suspect's readings must differ — forensics never
                // fingers something that did not move.
                prop_assert!(
                    s.prev != s.new || !s.detail.is_empty(),
                    "suspect {} did not move and carries no flip detail",
                    s.name
                );
                // And a virtual-metric suspect's readings must match the
                // snapshots it claims to come from.
                if let (Some(&pv), Some(&nv)) = (ps.virt.get(&s.name), ns.virt.get(&s.name)) {
                    prop_assert_eq!(s.prev, pv);
                    prop_assert_eq!(s.new, nv);
                }
            }
        }
    }

    #[test]
    fn section_tags_match_their_source(a in arb_scenario("alpha"), b in arb_scenario("alpha")) {
        for m in metric_deltas(&a, &b, &NoiseModel::default()) {
            match m.section {
                Section::Virt => prop_assert!(a.virt.contains_key(&m.metric)),
                Section::Host => prop_assert!(a.host.contains_key(&m.metric)),
            }
        }
    }
}
