//! The Chapter 5 queuing model of the recorder.
//!
//! "In order to get an estimate for resource requirements, we used a
//! queuing system model … an open queuing model … solved using IBM's
//! RESQ2." This crate is our RESQ2 stand-in:
//!
//! - [`solver`]: open-network stations, exact utilizations, M/M/1
//!   response metrics, and a DES cross-check;
//! - [`workload`]: the Figure 5.3 state-size distribution and the
//!   syscall/IO → short/long message conversion of §5.1;
//! - [`ch5`]: Figures 5.1–5.5 — hardware parameters, operating points,
//!   the utilization sweep, the 4 KB-buffering saturation fix, and the
//!   115-user capacity computation;
//! - [`sharded`]: the model extended to N recorder stations — the
//!   user-capacity curve versus shard count, and the point where the
//!   unsharded broadcast medium becomes the binding resource;
//! - [`xval`]: the distribution-free identities (utilization law,
//!   Little's law) the capacity lens uses to cross-validate measured
//!   utilizations against this model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ch5;
pub mod sharded;
pub mod solver;
pub mod workload;
pub mod xval;

pub use ch5::{
    build_network, figure_5_5, max_users, max_users_with_unrecoverable, operating_points, HwParams,
    OperatingPoint, SystemConfig, UtilizationRow,
};
pub use sharded::{
    medium_max_users, shard_capacity_curve, tier_max_users, ShardCapacityRow, ShardedTier,
};
pub use solver::{Flow, OpenNetwork, Station};
pub use workload::{ProcessTraffic, StateSizes, CHECKPOINT_BYTES, LONG_BYTES, SHORT_BYTES};
pub use xval::{frame_service_s, littles_law, utilization_law};
