//! Virtual-time profiling.
//!
//! Two complementary views of "where does the time go":
//!
//! - [`TimeProfile`] attributes accumulated *busy* virtual time to named
//!   categories (kernel CPU, recorder publish CPU, disk, medium), so a
//!   run artifact can answer "what fraction of the horizon was the
//!   recorder's disk busy".
//! - [`StageLatencies`] measures per-message *elapsed* virtual time
//!   between lifecycle stages (publish → capture → sequence → deliver),
//!   computed from assembled spans, so recorder service time decomposes
//!   into its stages.

use crate::registry::MetricsRegistry;
use crate::span::{MessageSpan, MsgKey, Stage};
use publishing_sim::stats::LogHistogram;
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Accumulated busy virtual time per named category.
#[derive(Debug, Clone, Default)]
pub struct TimeProfile {
    entries: BTreeMap<String, SimDuration>,
}

impl TimeProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        TimeProfile::default()
    }

    /// Adds `d` to `category`'s accumulated time.
    pub fn charge(&mut self, category: impl Into<String>, d: SimDuration) {
        *self
            .entries
            .entry(category.into())
            .or_insert(SimDuration::ZERO) += d;
    }

    /// Returns a category's accumulated time (zero if never charged).
    pub fn get(&self, category: &str) -> SimDuration {
        self.entries
            .get(category)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Iterates categories in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SimDuration)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Files each category as `profile/<category>_ms` gauges, plus its
    /// fraction of `horizon` as `profile/<category>_frac`.
    pub fn into_registry(&self, reg: &mut MetricsRegistry, horizon: SimDuration) {
        for (name, d) in &self.entries {
            reg.gauge(format!("profile/{name}_ms"), d.as_millis_f64());
            let frac = if horizon == SimDuration::ZERO {
                0.0
            } else {
                *d / horizon
            };
            reg.gauge(format!("profile/{name}_frac"), frac);
        }
    }

    /// Renders `category  12.345ms  (4.5%)` lines against `horizon`.
    pub fn render(&self, horizon: SimDuration) -> String {
        let mut s = String::new();
        for (name, d) in &self.entries {
            let frac = if horizon == SimDuration::ZERO {
                0.0
            } else {
                *d / horizon
            };
            s.push_str(&format!(
                "  {name:<24} {:>12.3}ms ({:>5.1}%)\n",
                d.as_millis_f64(),
                frac * 100.0
            ));
        }
        s
    }
}

/// Per-message latency histograms between lifecycle stages, in
/// microseconds of virtual time.
#[derive(Debug, Clone, Default)]
pub struct StageLatencies {
    /// Publish at the sender → capture at the recorder.
    pub publish_to_capture_us: LogHistogram,
    /// Capture → sequence (recorder-ack): the recorder's own service gap.
    pub capture_to_sequence_us: LogHistogram,
    /// Publish → first delivery (read) at the destination.
    pub publish_to_deliver_us: LogHistogram,
    /// Messages whose span contains a replay event.
    pub replayed: u64,
    /// Messages whose span contains a suppress event.
    pub suppressed: u64,
    /// Spans excluded from the histograms because ring eviction dropped
    /// their early events ([`MessageSpan::partial`]).
    pub partial: u64,
}

fn gap_us(from: SimTime, to: SimTime) -> u64 {
    to.saturating_since(from).as_nanos() / 1_000
}

/// Computes stage latencies from assembled spans.
pub fn stage_latencies(spans: &BTreeMap<MsgKey, MessageSpan>) -> StageLatencies {
    let mut out = StageLatencies::default();
    for span in spans.values() {
        if span.partial {
            // An evicted prefix makes every stage gap fiction (a missing
            // publish would read as a near-zero or negative latency), so
            // partial spans are counted but never sampled.
            out.partial += 1;
            if span.has(Stage::Replay) {
                out.replayed += 1;
            }
            if span.has(Stage::Suppress) {
                out.suppressed += 1;
            }
            continue;
        }
        let publish = span.first(Stage::Publish);
        let capture = span.first(Stage::Capture);
        let sequence = span.first(Stage::Sequence);
        let deliver = span.first(Stage::Deliver);
        if let (Some(p), Some(c)) = (publish, capture) {
            out.publish_to_capture_us.record(gap_us(p, c));
        }
        if let (Some(c), Some(s)) = (capture, sequence) {
            out.capture_to_sequence_us.record(gap_us(c, s));
        }
        if let (Some(p), Some(d)) = (publish, deliver) {
            out.publish_to_deliver_us.record(gap_us(p, d));
        }
        if span.has(Stage::Replay) {
            out.replayed += 1;
        }
        if span.has(Stage::Suppress) {
            out.suppressed += 1;
        }
    }
    out
}

impl StageLatencies {
    /// Files the histograms under `latency/...`.
    pub fn into_registry(&self, reg: &mut MetricsRegistry) {
        reg.histogram("latency/publish_to_capture_us", &self.publish_to_capture_us);
        reg.histogram(
            "latency/capture_to_sequence_us",
            &self.capture_to_sequence_us,
        );
        reg.histogram("latency/publish_to_deliver_us", &self.publish_to_deliver_us);
        reg.counter("latency/spans_replayed", self.replayed);
        reg.counter("latency/spans_suppressed", self.suppressed);
        reg.counter("spans/partial", self.partial);
    }

    /// Renders one line per histogram for the run report.
    pub fn render(&self) -> String {
        let line = |name: &str, h: &LogHistogram| {
            format!(
                "  {name:<24} n={:<6} mean={:>9.1}us p50={:<8} p95={:<8} p99={:<8}\n",
                h.summary().count(),
                h.summary().mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99),
            )
        };
        let mut s = String::new();
        s.push_str(&line("publish→capture", &self.publish_to_capture_us));
        s.push_str(&line("capture→sequence", &self.capture_to_sequence_us));
        s.push_str(&line("publish→deliver", &self.publish_to_deliver_us));
        s.push_str(&format!(
            "  spans replayed={} suppressed={} partial={}\n",
            self.replayed, self.suppressed, self.partial
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{assemble, SpanLog};

    #[test]
    fn time_profile_accumulates_and_projects() {
        let mut p = TimeProfile::new();
        p.charge("kernel_cpu", SimDuration::from_millis(2));
        p.charge("kernel_cpu", SimDuration::from_millis(3));
        p.charge("disk", SimDuration::from_millis(1));
        assert_eq!(p.get("kernel_cpu"), SimDuration::from_millis(5));
        assert_eq!(p.get("never"), SimDuration::ZERO);
        let mut reg = MetricsRegistry::new();
        p.into_registry(&mut reg, SimDuration::from_millis(10));
        assert_eq!(reg.gauge_value("profile/kernel_cpu_ms"), Some(5.0));
        assert_eq!(reg.gauge_value("profile/kernel_cpu_frac"), Some(0.5));
        assert!(p
            .render(SimDuration::from_millis(10))
            .contains("kernel_cpu"));
    }

    #[test]
    fn time_profile_zero_horizon_is_safe() {
        let mut p = TimeProfile::new();
        p.charge("x", SimDuration::from_millis(1));
        let mut reg = MetricsRegistry::new();
        p.into_registry(&mut reg, SimDuration::ZERO);
        assert_eq!(reg.gauge_value("profile/x_frac"), Some(0.0));
    }

    #[test]
    fn stage_latencies_from_spans() {
        let mut kernel = SpanLog::new(64);
        let mut recorder = SpanLog::new(64);
        let k = MsgKey { sender: 1, seq: 0 };
        kernel.record(SimTime::from_micros(100), k, Stage::Publish, 2, 0);
        recorder.record(SimTime::from_micros(150), k, Stage::Capture, 2, 0);
        recorder.record(SimTime::from_micros(250), k, Stage::Sequence, 2, 0);
        kernel.record(SimTime::from_micros(400), k, Stage::Deliver, 2, 0);
        kernel.record(SimTime::from_micros(500), k, Stage::Replay, 2, 0);
        let lat = stage_latencies(&assemble([&kernel, &recorder]));
        assert_eq!(lat.publish_to_capture_us.summary().count(), 1);
        assert!((lat.publish_to_capture_us.summary().mean() - 50.0).abs() < 1e-9);
        assert!((lat.capture_to_sequence_us.summary().mean() - 100.0).abs() < 1e-9);
        assert!((lat.publish_to_deliver_us.summary().mean() - 300.0).abs() < 1e-9);
        assert_eq!(lat.replayed, 1);
        assert_eq!(lat.suppressed, 0);
        let mut reg = MetricsRegistry::new();
        lat.into_registry(&mut reg);
        assert_eq!(reg.counter_value("latency/spans_replayed"), Some(1));
        assert!(lat.render().contains("publish→deliver"));
    }

    #[test]
    fn partial_spans_are_counted_not_sampled() {
        use crate::span::MsgKey;
        // Capacity 3: only the last three events survive, so `old` keeps
        // deliver+replay but loses publish+capture and turns partial.
        let mut log = SpanLog::new(3);
        let old = MsgKey { sender: 1, seq: 0 };
        let fresh = MsgKey { sender: 1, seq: 1 };
        log.record(SimTime::from_micros(100), old, Stage::Publish, 7, 0);
        log.record(SimTime::from_micros(150), old, Stage::Capture, 7, 0);
        log.record(SimTime::from_micros(400), old, Stage::Deliver, 7, 0);
        log.record(SimTime::from_micros(500), old, Stage::Replay, 7, 0);
        log.record(SimTime::from_micros(600), fresh, Stage::Publish, 7, 0);
        let spans = assemble([&log]);
        assert!(spans[&old].partial);
        let lat = stage_latencies(&spans);
        assert_eq!(lat.partial, 1);
        // The partial span's replay is still counted, but no histogram
        // sampled its (fictitious) gaps.
        assert_eq!(lat.replayed, 1);
        assert_eq!(lat.publish_to_deliver_us.summary().count(), 0);
        assert_eq!(lat.publish_to_capture_us.summary().count(), 0);
        let mut reg = MetricsRegistry::new();
        lat.into_registry(&mut reg);
        assert_eq!(reg.counter_value("spans/partial"), Some(1));
        assert!(lat.render().contains("partial=1"));
    }
}
