//! The always-on invariant watchdog.
//!
//! The chaos engine checks the quorum safety/liveness oracles *after* a
//! run; this module evaluates an online subset of them *during* any run,
//! so a violation is visible in `obs_report` (and fails CI) even when no
//! chaos harness is driving. The worlds feed it periodic scans:
//!
//! - **arrival-seq gap freedom**: per destination process, the union of
//!   quorum-applied arrival sequences must stay contiguous from 0. A gap
//!   is tolerated while commits are in flight; one that persists past a
//!   virtual-time deadline is a safety violation (sequencing lost or
//!   reordered an arrival across a failover).
//! - **commit-index monotonicity**: a replica's commit index never moves
//!   backwards within one incarnation (restarts legitimately reset it —
//!   the world resets the floor via [`Watchdog::reset_replica`]).
//! - **ack-gating stall**: when a majority of replicas is live, the
//!   group must elect a leader within a deadline; a longer leaderless
//!   window means client acks are gated forever — a liveness violation.
//!
//! Everything is deterministic: deadlines are virtual time, state is
//! plain maps, and violations are appended in scan order, so two runs of
//! the same seed report identical verdicts. The watchdog never panics
//! the run — verdicts surface through [`Watchdog::violations`], the
//! metrics registry, and the report's watchdog section, and the chaos
//! oracle folds them into its failure list.

use crate::registry::MetricsRegistry;
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Virtual-time deadlines for the liveness-flavored checks.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// How long an arrival-seq gap may persist before it is a
    /// violation (covers commits legitimately in flight).
    pub gap_deadline: SimDuration,
    /// How long a majority-live group may run leaderless before ack
    /// gating counts as stalled.
    pub leaderless_deadline: SimDuration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            // Elections need 80–160 ms of timeouts; a gap outliving
            // several election rounds is not in-flight work any more.
            gap_deadline: SimDuration::from_millis(500),
            leaderless_deadline: SimDuration::from_millis(1_000),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ArrivalCursor {
    /// First arrival seq not yet seen applied.
    next: u64,
    /// When the cursor first observed a later seq while `next` was
    /// still missing.
    gap_since: Option<SimTime>,
    /// The cursor position already reported, to keep one stuck gap from
    /// re-firing every scan.
    reported_at: Option<u64>,
}

/// Online evaluator for the invariants above. One instance per world;
/// scans are cheap enough to run on a fixed virtual-time cadence.
#[derive(Debug, Default)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    checks: u64,
    violations: Vec<String>,
    arrivals: BTreeMap<u64, ArrivalCursor>,
    commit_floor: BTreeMap<u32, u64>,
    leaderless_since: Option<SimTime>,
    leaderless_reported: bool,
}

impl Watchdog {
    /// Creates a watchdog with the given deadlines.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            ..Watchdog::default()
        }
    }

    /// Scans one destination process's applied arrival sequences (the
    /// union across live replicas), sorted ascending as `BTreeMap`
    /// iteration yields them.
    pub fn scan_arrival_seqs(&mut self, now: SimTime, pid: u64, seqs: impl Iterator<Item = u64>) {
        self.checks += 1;
        let cur = self.arrivals.entry(pid).or_default();
        let mut behind_gap = None;
        for s in seqs {
            if s < cur.next {
                continue;
            }
            if s == cur.next {
                cur.next += 1;
                continue;
            }
            // `cur.next` is missing but `s` exists beyond it.
            behind_gap = Some(s);
            break;
        }
        match behind_gap {
            None => cur.gap_since = None,
            Some(beyond) => {
                let since = *cur.gap_since.get_or_insert(now);
                if now.saturating_since(since) > self.cfg.gap_deadline
                    && cur.reported_at != Some(cur.next)
                {
                    cur.reported_at = Some(cur.next);
                    self.violations.push(format!(
                        "watchdog: arrival gap for pid {pid}: seq {} missing while {} applied \
                         (open since {:.3}ms, now {:.3}ms)",
                        cur.next,
                        beyond,
                        since.as_millis_f64(),
                        now.as_millis_f64()
                    ));
                }
            }
        }
    }

    /// Observes one replica's current commit index.
    pub fn observe_commit_index(&mut self, now: SimTime, replica: u32, commit: u64) {
        self.checks += 1;
        let floor = self.commit_floor.entry(replica).or_insert(commit);
        if commit < *floor {
            self.violations.push(format!(
                "watchdog: replica {replica} commit index went backwards {} -> {} at {:.3}ms",
                *floor,
                commit,
                now.as_millis_f64()
            ));
        }
        *floor = (*floor).max(commit);
    }

    /// Forgets a replica's commit floor (call on crash/restart — commit
    /// indices are volatile and legitimately reset with an incarnation).
    pub fn reset_replica(&mut self, replica: u32) {
        self.commit_floor.remove(&replica);
    }

    /// Observes the group's leadership state.
    pub fn observe_leadership(&mut self, now: SimTime, majority_live: bool, has_leader: bool) {
        self.checks += 1;
        if !majority_live || has_leader {
            self.leaderless_since = None;
            self.leaderless_reported = false;
            return;
        }
        let since = *self.leaderless_since.get_or_insert(now);
        if now.saturating_since(since) > self.cfg.leaderless_deadline && !self.leaderless_reported {
            self.leaderless_reported = true;
            self.violations.push(format!(
                "watchdog: ack gating stalled: majority live but leaderless since {:.3}ms \
                 (now {:.3}ms)",
                since.as_millis_f64(),
                now.as_millis_f64()
            ));
        }
    }

    /// Number of individual checks evaluated so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The violations observed, in scan order.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// True when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Files `watchdog/checks` and `watchdog/violations` counters.
    pub fn into_registry(&self, reg: &mut MetricsRegistry) {
        reg.counter("watchdog/checks", self.checks);
        reg.counter("watchdog/violations", self.violations.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wd() -> Watchdog {
        Watchdog::new(WatchdogConfig {
            gap_deadline: SimDuration::from_millis(100),
            leaderless_deadline: SimDuration::from_millis(200),
        })
    }

    #[test]
    fn contiguous_arrivals_stay_clean() {
        let mut w = wd();
        for t in 0..5u64 {
            w.scan_arrival_seqs(SimTime::from_millis(t * 300), 7, 0..=t);
        }
        assert!(w.is_clean());
        assert_eq!(w.checks(), 5);
    }

    #[test]
    fn transient_gap_is_tolerated_persistent_gap_fires_once() {
        let mut w = wd();
        // seq 1 missing while 2 applied — within deadline, clean.
        w.scan_arrival_seqs(SimTime::from_millis(10), 7, [0u64, 2].into_iter());
        assert!(w.is_clean());
        // Gap heals: cursor advances, timer disarms.
        w.scan_arrival_seqs(SimTime::from_millis(20), 7, [0u64, 1, 2].into_iter());
        assert!(w.is_clean());
        // New gap opens and persists past the deadline.
        w.scan_arrival_seqs(SimTime::from_millis(30), 7, [0u64, 1, 2, 4].into_iter());
        w.scan_arrival_seqs(SimTime::from_millis(250), 7, [0u64, 1, 2, 4].into_iter());
        assert_eq!(w.violations().len(), 1);
        assert!(w.violations()[0].contains("seq 3 missing"));
        // Same stuck gap does not re-fire every scan.
        w.scan_arrival_seqs(SimTime::from_millis(400), 7, [0u64, 1, 2, 4].into_iter());
        assert_eq!(w.violations().len(), 1);
    }

    #[test]
    fn commit_index_regression_is_flagged_and_restart_resets() {
        let mut w = wd();
        w.observe_commit_index(SimTime::from_millis(1), 0, 5);
        w.observe_commit_index(SimTime::from_millis(2), 0, 9);
        assert!(w.is_clean());
        w.observe_commit_index(SimTime::from_millis(3), 0, 4);
        assert_eq!(w.violations().len(), 1);
        assert!(w.violations()[0].contains("backwards 9 -> 4"));
        // A restart legitimately resets the floor.
        w.reset_replica(1);
        w.observe_commit_index(SimTime::from_millis(4), 1, 100);
        w.reset_replica(1);
        w.observe_commit_index(SimTime::from_millis(5), 1, 0);
        assert_eq!(w.violations().len(), 1);
    }

    #[test]
    fn leaderless_majority_past_deadline_is_a_stall() {
        let mut w = wd();
        w.observe_leadership(SimTime::from_millis(0), true, true);
        w.observe_leadership(SimTime::from_millis(10), true, false);
        w.observe_leadership(SimTime::from_millis(100), true, false);
        assert!(w.is_clean(), "inside the deadline");
        w.observe_leadership(SimTime::from_millis(300), true, false);
        assert_eq!(w.violations().len(), 1);
        assert!(w.violations()[0].contains("leaderless"));
        // Re-arms only after leadership returns.
        w.observe_leadership(SimTime::from_millis(400), true, false);
        assert_eq!(w.violations().len(), 1);
        w.observe_leadership(SimTime::from_millis(500), true, true);
        w.observe_leadership(SimTime::from_millis(510), true, false);
        w.observe_leadership(SimTime::from_millis(900), true, false);
        assert_eq!(w.violations().len(), 2);
    }

    #[test]
    fn minority_live_groups_are_allowed_to_be_leaderless() {
        let mut w = wd();
        w.observe_leadership(SimTime::from_millis(0), false, false);
        w.observe_leadership(SimTime::from_secs(10), false, false);
        assert!(w.is_clean());
    }

    #[test]
    fn registry_projection_counts_checks_and_violations() {
        let mut w = wd();
        w.observe_commit_index(SimTime::ZERO, 0, 3);
        w.observe_commit_index(SimTime::ZERO, 0, 1);
        let mut reg = MetricsRegistry::new();
        w.into_registry(&mut reg);
        assert_eq!(reg.counter_value("watchdog/checks"), Some(2));
        assert_eq!(reg.counter_value("watchdog/violations"), Some(1));
    }
}
