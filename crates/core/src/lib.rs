//! Published communications (Presotto, 1983): transparent recovery for
//! message-based distributed systems via a passive broadcast recorder.
//!
//! The model (§3.1): a reliable recorder publishes every message sent to
//! every process, plus per-process checkpoints. A crashed process is
//! recovered by restarting it at a checkpoint, replaying its published
//! messages in original order, and suppressing the messages it re-sends.
//! Determinism does the rest.
//!
//! - [`recorder`]: the passive capture pipeline and process database;
//! - [`manager`]: watchdog crash detection and the recovery jobs;
//! - [`node`]: the recording node tying recorder, manager, transport and
//!   checkpoint policy together;
//! - [`checkpoint`]: checkpoint policies (periodic, storage-balancing,
//!   Young's optimum, bounded recovery time);
//! - [`recovery_time`]: the §3.2.3 t_max bound (Figure 3.1);
//! - [`world`]: a complete simulated system (nodes + recorder + LAN);
//! - [`multi`]: multiple recorders with §6.3 priority-vector failover;
//! - [`live`]: the same state machines on real threads and wall-clock
//!   time (crossbeam channels as the medium);
//! - [`debugger`]: §6.5 time-travel debugging over published history;
//! - [`transactions`]: §6.4 two-phase commit with the recorder as the
//!   only stable store;
//! - [`node_recovery`]: §6.6.2 node-as-unit recovery with the
//!   deterministic scheduler and instruction-count synchronization;
//! - [`baseline`]: Chapter 2 comparators (recovery lines with the domino
//!   effect, shadow processes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod checkpoint;
pub mod debugger;
pub mod live;
pub mod manager;
pub mod multi;
pub mod node;
pub mod node_recovery;
pub mod obs;
pub mod recorder;
pub mod recovery_time;
pub mod transactions;
pub mod world;

pub use checkpoint::{young_interval, young_overhead, CheckpointPolicy};
pub use debugger::ReplayDebugger;
pub use live::{LiveBuilder, LiveSystem};
pub use manager::{ManagerConfig, MgrCmd, RecoveryManager};
pub use multi::{MultiWorld, PriorityVectors};
pub use node::{RNAction, RecorderConfig, RecorderNode};
pub use recorder::{ProcessEntry, PublishCost, Recorder, RecorderStats};
pub use recovery_time::{LoadParams, RecoveryEstimator};
pub use world::{World, WorldBuilder};
