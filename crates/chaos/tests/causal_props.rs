//! Property tests for the causal explorer over real chaos runs: the
//! happens-before DAG built from any steady-state or crash schedule
//! must be acyclic and edge-consistent, and its query surfaces must
//! stay total (no panics, no inconsistent answers) on whatever the
//! schedule generator throws at them.

use proptest::prelude::*;
use publishing_chaos::driver::run_schedule;
use publishing_chaos::scenario::{Scenario, Topology, NODES, REPLICAS, SHARDS};
use publishing_chaos::schedule::{self, ChaosConfig};

fn config(topology: Topology, seed: u64, max_faults: usize) -> ChaosConfig {
    ChaosConfig {
        seed,
        nodes: NODES,
        shards: match topology {
            Topology::Sharded => SHARDS,
            _ => 0,
        },
        replicas: match topology {
            Topology::Quorum => REPLICAS,
            _ => 0,
        },
        procs: 4,
        horizon_ms: 800,
        max_faults,
    }
}

/// Runs one generated schedule and checks every causal-graph invariant:
/// `validate` (edges forward in node order, virtual-time monotone along
/// every edge, Kahn pass visits every node — i.e. acyclic), endpoints
/// in range, and `explain` resolving for every key the graph knows.
fn check_schedule(topology: Topology, seed: u64, max_faults: usize) {
    let sched = schedule::generate(&config(topology, seed, max_faults));
    let mut t = Scenario::new(topology, seed).build();
    run_schedule(t.as_mut(), &sched);
    let g = t.causal_graph();
    prop_assert!(!g.is_empty(), "a run must record span events");
    if let Err(e) = g.validate() {
        panic!("schedule {sched}: invalid causal graph: {e}");
    }
    for e in g.edges() {
        prop_assert!(e.from < e.to, "edge {} -> {} not forward", e.from, e.to);
        prop_assert!(e.to < g.len(), "edge endpoint {} out of range", e.to);
    }
    // Every key with at least one event must explain to a non-empty
    // ancestor cone ending at the queried key's latest event.
    let mut keys: Vec<_> = g.events().iter().map(|ev| ev.key).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let Some(ex) = g.explain(key) else {
            panic!("schedule {sched}: no explanation for {key}");
        };
        prop_assert_eq!(ex.target.key, key);
        // The chain always ends at the target itself; a root event has
        // an empty ancestor cone but never an empty chain.
        prop_assert!(!ex.chain.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Steady-state (fault-free) runs on both topologies.
    #[test]
    fn steady_state_graphs_are_acyclic_and_consistent(seed in 0u64..10_000) {
        check_schedule(Topology::Single, seed, 0);
        check_schedule(Topology::Sharded, seed, 0);
    }

    /// Crash/recovery runs with up to six faults on both topologies.
    #[test]
    fn crash_schedule_graphs_are_acyclic_and_consistent(seed in 0u64..10_000) {
        check_schedule(Topology::Single, seed, 6);
        check_schedule(Topology::Sharded, seed, 6);
    }

    /// The quorum world under replica-crash storms: the causal graph
    /// must stay acyclic and total through elections and failover.
    #[test]
    fn quorum_schedule_graphs_are_acyclic_and_consistent(seed in 0u64..10_000) {
        check_schedule(Topology::Quorum, seed, 4);
    }
}
