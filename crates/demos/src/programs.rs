//! Reusable deterministic programs for tests, benches, and examples.
//!
//! These are the "user level processes" of the reproduction: small,
//! strictly deterministic state machines with full snapshot/restore
//! support, exercising the messaging patterns the thesis cares about —
//! request/reply with passed links, pipelines, fan-out, and synthetic
//! chatter for the recovery equivalence property tests.

use crate::ids::{Channel, ChannelSet, LinkId};
use crate::program::{Ctx, Program, Received};
use publishing_sim::codec::{CodecError, Decoder, Encoder};
use publishing_sim::time::SimDuration;

/// Echoes every message body back over the link passed with the request,
/// counting echoes.
///
/// Request convention: the client passes a reply link in the message.
#[derive(Debug, Default, Clone)]
pub struct EchoServer {
    /// Messages echoed so far.
    pub echoed: u64,
}

impl Program for EchoServer {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        self.echoed += 1;
        if let Some(reply) = msg.link {
            let mut body = msg.body;
            body.extend_from_slice(&self.echoed.to_le_bytes());
            let _ = ctx.send(reply, body);
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.echoed);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.echoed = d.u64()?;
        d.finish()
    }
}

/// Sends `total` pings to the target on its initial link 0, waiting for
/// each echo before the next, and outputs one line per pong.
#[derive(Debug, Clone)]
pub struct PingClient {
    /// Pings to send in total.
    pub total: u64,
    /// Pings sent so far.
    pub sent: u64,
    /// Pongs received so far.
    pub received: u64,
    /// CPU charged per pong handled (models per-iteration user work).
    pub think_ns: u64,
}

impl PingClient {
    /// Creates a client that will send `total` pings.
    pub fn new(total: u64) -> Self {
        PingClient {
            total,
            sent: 0,
            received: 0,
            think_ns: 0,
        }
    }

    fn ping(&mut self, ctx: &mut Ctx<'_>) {
        self.sent += 1;
        let reply = ctx.create_link(Channel::DEFAULT, 0);
        let mut body = Vec::new();
        body.extend_from_slice(&self.sent.to_le_bytes());
        let _ = ctx.send_passing(LinkId(0), body, reply);
    }
}

impl Program for PingClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.total > 0 {
            self.ping(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        self.received += 1;
        ctx.compute(SimDuration::from_nanos(self.think_ns));
        let _ = &msg.body;
        ctx.output(format!("pong {}", self.received).into_bytes());
        if self.sent < self.total {
            self.ping(ctx);
        } else {
            ctx.output(b"done".to_vec());
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.total)
            .u64(self.sent)
            .u64(self.received)
            .u64(self.think_ns);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.total = d.u64()?;
        self.sent = d.u64()?;
        self.received = d.u64()?;
        self.think_ns = d.u64()?;
        d.finish()
    }
}

/// Accumulates little-endian u64 message bodies; on an empty body, reports
/// the running total over the passed reply link and as output.
#[derive(Debug, Default, Clone)]
pub struct Accumulator {
    /// Running total.
    pub total: u64,
    /// Values folded in.
    pub count: u64,
}

impl Program for Accumulator {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        if msg.body.is_empty() {
            ctx.output(format!("total={} count={}", self.total, self.count).into_bytes());
            if let Some(reply) = msg.link {
                let _ = ctx.send(reply, self.total.to_le_bytes().to_vec());
            }
            return;
        }
        if let Ok(arr) = <[u8; 8]>::try_from(msg.body.as_slice()) {
            self.total = self.total.wrapping_add(u64::from_le_bytes(arr));
            self.count += 1;
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.total).u64(self.count);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.total = d.u64()?;
        self.count = d.u64()?;
        d.finish()
    }
}

/// Forwards each message body to its initial link 0 after folding it into
/// a running digest — a pipeline stage (the §2.2 "data pipelined from one
/// process to another" workload where transactions are unnatural).
#[derive(Debug, Default, Clone)]
pub struct Forwarder {
    /// FNV-1a digest of everything forwarded.
    pub digest: u64,
    /// Messages forwarded.
    pub forwarded: u64,
}

impl Forwarder {
    fn fold(&mut self, bytes: &[u8]) {
        let mut h = if self.digest == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.digest
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.digest = h;
    }
}

impl Program for Forwarder {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        self.fold(&msg.body);
        self.forwarded += 1;
        let _ = ctx.send(LinkId(0), msg.body);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.digest).u64(self.forwarded);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.digest = d.u64()?;
        self.forwarded = d.u64()?;
        d.finish()
    }
}

/// A sink that digests everything it receives and emits the digest as
/// output every message — the observable end of a pipeline.
#[derive(Debug, Default, Clone)]
pub struct DigestSink {
    /// FNV-1a digest of everything received.
    pub digest: u64,
    /// Messages received.
    pub received: u64,
}

impl Program for DigestSink {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        let mut h = if self.digest == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.digest
        };
        for &b in &msg.body {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.digest = h;
        self.received += 1;
        ctx.output(format!("digest {} after {}", self.digest, self.received).into_bytes());
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.digest).u64(self.received);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.digest = d.u64()?;
        self.received = d.u64()?;
        d.finish()
    }
}

/// A deterministic chatterbox for the recovery-equivalence property tests:
/// every message it receives advances an internal LCG which decides how
/// many messages to send (0–2), to which of its initial links, with what
/// body, and how much CPU to charge. All decisions are pure functions of
/// (seed, messages seen), never of time.
#[derive(Debug, Clone)]
pub struct Chatter {
    /// LCG state (seeded at construction).
    pub state: u64,
    /// Number of initial links it may send to.
    pub fanout: u32,
    /// Messages received.
    pub received: u64,
    /// Messages sent.
    pub sent: u64,
    /// Whether to emit an output line per message.
    pub noisy: bool,
}

impl Chatter {
    /// Creates a chatterbox with `fanout` initial links and an LCG seed.
    pub fn new(seed: u64, fanout: u32, noisy: bool) -> Self {
        Chatter {
            state: seed.wrapping_mul(2).wrapping_add(1),
            fanout,
            received: 0,
            sent: 0,
            noisy,
        }
    }

    fn next(&mut self) -> u64 {
        // Knuth's MMIX LCG constants: deterministic, portable.
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }
}

impl Program for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.fanout > 0 {
            let r = self.next();
            let target = LinkId((r % self.fanout as u64) as u32);
            self.sent += 1;
            let _ = ctx.send(target, r.to_le_bytes().to_vec());
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        self.received += 1;
        // Fold the body into the state so behaviour depends on content.
        for &b in &msg.body {
            self.state = self.state.wrapping_add(b as u64).rotate_left(7);
        }
        let r = self.next();
        let n_sends = (r >> 8) % 3;
        for i in 0..n_sends {
            if self.fanout == 0 {
                break;
            }
            let r2 = self.next();
            let target = LinkId((r2 % self.fanout as u64) as u32);
            self.sent += 1;
            let mut body = r2.to_le_bytes().to_vec();
            body.push(i as u8);
            let _ = ctx.send(target, body);
        }
        ctx.compute(SimDuration::from_micros(self.next() % 500));
        if self.noisy {
            ctx.output(format!("chat {} {}", self.received, self.state).into_bytes());
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.state)
            .u32(self.fanout)
            .u64(self.received)
            .u64(self.sent)
            .bool(self.noisy);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.state = d.u64()?;
        self.fanout = d.u32()?;
        self.received = d.u64()?;
        self.sent = d.u64()?;
        self.noisy = d.bool()?;
        d.finish()
    }
}

/// A program that reads selectively by channel: it alternates between
/// accepting only the urgent channel and accepting everything, exercising
/// the §4.4.2 out-of-order read machinery.
#[derive(Debug, Clone)]
pub struct ChannelReader {
    /// The urgent channel.
    pub urgent: Channel,
    /// Messages read.
    pub reads: u64,
}

impl ChannelReader {
    /// Creates a reader treating `urgent` as the priority channel.
    pub fn new(urgent: Channel) -> Self {
        ChannelReader { urgent, reads: 0 }
    }
}

impl Program for ChannelReader {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_receive(ChannelSet::of(&[self.urgent]));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        self.reads += 1;
        ctx.output(
            format!(
                "read {} ch{} [{}]",
                self.reads,
                msg.channel.0,
                msg.body.len()
            )
            .into_bytes(),
        );
        // Alternate: urgent-only on even reads, everything on odd.
        if self.reads.is_multiple_of(2) {
            ctx.set_receive(ChannelSet::of(&[self.urgent]));
        } else {
            ctx.set_receive(ChannelSet::ALL);
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(self.urgent.0).u64(self.reads);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.urgent = Channel(d.u8()?);
        self.reads = d.u64()?;
        d.finish()
    }
}

/// Registers the standard programs under their conventional names.
pub fn register_standard(reg: &mut crate::registry::ProgramRegistry) {
    reg.register("echo", || Box::new(EchoServer::default()));
    reg.register("accumulator", || Box::new(Accumulator::default()));
    reg.register("forwarder", || Box::new(Forwarder::default()));
    reg.register("digest-sink", || Box::new(DigestSink::default()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;
    use crate::link::LinkTable;

    /// Runs `f` with a throwaway Ctx, returning (effects, mask, compute).
    fn drive<P: Program>(
        prog: &mut P,
        links: &mut LinkTable,
        f: impl FnOnce(&mut P, &mut Ctx<'_>),
    ) -> Vec<crate::program::Effect> {
        let mut effects = Vec::new();
        let mut mask = ChannelSet::ALL;
        let mut stop = false;
        let mut compute = SimDuration::ZERO;
        let mut ctx = Ctx::new(
            ProcessId::new(1, 1),
            links,
            &mut effects,
            &mut mask,
            &mut stop,
            &mut compute,
        );
        f(prog, &mut ctx);
        effects
    }

    fn snapshot_restore_roundtrip<P: Program + Clone>(p: &P, mut fresh: P) {
        let snap = p.snapshot();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.snapshot(), snap);
    }

    #[test]
    fn all_programs_snapshot_roundtrip() {
        let mut chatter = Chatter::new(42, 3, true);
        chatter.received = 7;
        snapshot_restore_roundtrip(&chatter, Chatter::new(0, 0, false));
        let mut ping = PingClient::new(10);
        ping.sent = 4;
        snapshot_restore_roundtrip(&ping, PingClient::new(0));
        let echo = EchoServer { echoed: 3 };
        snapshot_restore_roundtrip(&echo, EchoServer::default());
        let acc = Accumulator { total: 9, count: 2 };
        snapshot_restore_roundtrip(&acc, Accumulator::default());
        let fwd = Forwarder {
            digest: 1,
            forwarded: 2,
        };
        snapshot_restore_roundtrip(&fwd, Forwarder::default());
        let sink = DigestSink {
            digest: 5,
            received: 6,
        };
        snapshot_restore_roundtrip(&sink, DigestSink::default());
        let rdr = ChannelReader {
            urgent: Channel(5),
            reads: 9,
        };
        snapshot_restore_roundtrip(&rdr, ChannelReader::new(Channel(0)));
    }

    #[test]
    fn chatter_is_deterministic() {
        let run = |seed| {
            let mut c = Chatter::new(seed, 2, false);
            let mut links = LinkTable::new();
            links.insert(crate::link::Link::to(ProcessId::new(2, 1), Channel(0), 0));
            links.insert(crate::link::Link::to(ProcessId::new(2, 2), Channel(0), 0));
            let mut all = Vec::new();
            for i in 0..20u64 {
                let effects = drive(&mut c, &mut links, |c, ctx| {
                    c.on_message(
                        ctx,
                        Received {
                            code: 0,
                            channel: Channel(0),
                            body: i.to_le_bytes().to_vec(),
                            link: None,
                        },
                    )
                });
                all.push(effects);
            }
            (c.snapshot(), all)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn accumulator_totals_and_reports() {
        let mut acc = Accumulator::default();
        let mut links = LinkTable::new();
        for v in [3u64, 4] {
            drive(&mut acc, &mut links, |a, ctx| {
                a.on_message(
                    ctx,
                    Received {
                        code: 0,
                        channel: Channel(0),
                        body: v.to_le_bytes().to_vec(),
                        link: None,
                    },
                )
            });
        }
        let effects = drive(&mut acc, &mut links, |a, ctx| {
            a.on_message(
                ctx,
                Received {
                    code: 0,
                    channel: Channel(0),
                    body: vec![],
                    link: None,
                },
            )
        });
        assert_eq!(acc.total, 7);
        match &effects[0] {
            crate::program::Effect::Output(o) => {
                assert_eq!(String::from_utf8_lossy(o), "total=7 count=2")
            }
            _ => panic!(),
        }
    }

    #[test]
    fn forwarder_digest_changes_with_content() {
        let mut f1 = Forwarder::default();
        let mut f2 = Forwarder::default();
        let mut links = LinkTable::new();
        links.insert(crate::link::Link::to(ProcessId::new(2, 1), Channel(0), 0));
        drive(&mut f1, &mut links, |f, ctx| {
            f.on_message(
                ctx,
                Received {
                    code: 0,
                    channel: Channel(0),
                    body: vec![1],
                    link: None,
                },
            )
        });
        drive(&mut f2, &mut links, |f, ctx| {
            f.on_message(
                ctx,
                Received {
                    code: 0,
                    channel: Channel(0),
                    body: vec![2],
                    link: None,
                },
            )
        });
        assert_ne!(f1.digest, f2.digest);
    }

    #[test]
    fn channel_reader_alternates_masks() {
        let mut r = ChannelReader::new(Channel(5));
        let mut links = LinkTable::new();
        let mut effects = Vec::new();
        let mut mask = ChannelSet::ALL;
        let mut stop = false;
        let mut compute = SimDuration::ZERO;
        {
            let mut ctx = Ctx::new(
                ProcessId::new(1, 1),
                &mut links,
                &mut effects,
                &mut mask,
                &mut stop,
                &mut compute,
            );
            r.on_start(&mut ctx);
        }
        assert!(mask.contains(Channel(5)));
        assert!(!mask.contains(Channel(0)));
        {
            let mut ctx = Ctx::new(
                ProcessId::new(1, 1),
                &mut links,
                &mut effects,
                &mut mask,
                &mut stop,
                &mut compute,
            );
            r.on_message(
                &mut ctx,
                Received {
                    code: 0,
                    channel: Channel(5),
                    body: vec![],
                    link: None,
                },
            );
        }
        // After one (odd) read the mask opens up.
        assert!(mask.contains(Channel(0)));
    }
}
