//! Chapter 2 baselines: recovery lines (with the domino effect) and
//! shadow processes.
//!
//! These exist so the evaluation can compare publishing against the
//! methods it displaced. They operate on abstract interaction histories —
//! exactly the level Figures 1.2 and 2.1 are drawn at.

use publishing_sim::rng::DetRng;
use publishing_sim::time::{SimDuration, SimTime};

/// One process's history: checkpoint times plus (as part of a
/// [`History`]) its interactions.
#[derive(Debug, Clone, Default)]
pub struct ProcessHistory {
    /// Times checkpoints were taken, ascending. Time zero (the start
    /// state) is always an implicit checkpoint.
    pub checkpoints: Vec<SimTime>,
}

/// An interaction between two processes at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interaction {
    /// When it happened.
    pub at: SimTime,
    /// One party (sender, for directional interactions).
    pub from: usize,
    /// The other (receiver).
    pub to: usize,
}

/// A multi-process execution history.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Per-process checkpoint histories.
    pub processes: Vec<ProcessHistory>,
    /// All interactions, any order.
    pub interactions: Vec<Interaction>,
}

impl History {
    /// Creates a history for `n` processes.
    pub fn new(n: usize) -> Self {
        History {
            processes: vec![ProcessHistory::default(); n],
            interactions: Vec::new(),
        }
    }

    /// Adds a checkpoint for process `p` at `at`.
    pub fn checkpoint(&mut self, p: usize, at: SimTime) {
        self.processes[p].checkpoints.push(at);
        self.processes[p].checkpoints.sort();
    }

    /// Adds an interaction.
    pub fn interact(&mut self, from: usize, to: usize, at: SimTime) {
        self.interactions.push(Interaction { at, from, to });
    }

    /// Generates a random history: Poisson interactions between uniform
    /// pairs, periodic-with-jitter checkpoints per process.
    pub fn random(
        rng: &mut DetRng,
        n: usize,
        horizon: SimTime,
        mean_interaction_gap: SimDuration,
        mean_checkpoint_gap: SimDuration,
    ) -> Self {
        let mut h = History::new(n);
        let mut t = SimTime::ZERO;
        loop {
            let gap = rng.exponential(mean_interaction_gap.as_secs_f64());
            t += SimDuration::from_secs_f64(gap);
            if t >= horizon {
                break;
            }
            let from = rng.index(n);
            let mut to = rng.index(n);
            while to == from && n > 1 {
                to = rng.index(n);
            }
            h.interact(from, to, t);
        }
        for p in 0..n {
            let mut t = SimTime::ZERO;
            loop {
                let gap = rng.exponential(mean_checkpoint_gap.as_secs_f64());
                t += SimDuration::from_secs_f64(gap);
                if t >= horizon {
                    break;
                }
                h.checkpoint(p, t);
            }
        }
        h
    }
}

/// The result of a recovery-line search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryLine {
    /// Per-process restart times (the checkpoint each process rolls back
    /// to; time zero = the start state).
    pub restart_at: Vec<SimTime>,
}

impl RecoveryLine {
    /// Total work discarded if the crash happened at `crash_at`:
    /// Σ (crash_at − restart_at) over all processes.
    pub fn work_lost(&self, crash_at: SimTime) -> SimDuration {
        self.restart_at
            .iter()
            .map(|&r| crash_at.saturating_since(r))
            .fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// Finds the recovery line after `crashed` fails at `crash_at`, using the
/// Figure 2.1 sliding-ring algorithm with Rule 1 (undirected
/// interactions): checkpoints of two processes are consistent only if no
/// interaction between them separates them.
pub fn recovery_line_rule1(h: &History, crashed: usize, crash_at: SimTime) -> RecoveryLine {
    recovery_line(h, crashed, crash_at, false)
}

/// Russell's Rule 2 variant (§2.1): interactions are directional
/// messages and saved messages can be replayed, so a checkpoint pair is
/// inconsistent only when a message was *sent* by the earlier-checkpointed
/// process to the later-checkpointed one.
pub fn recovery_line_rule2(h: &History, crashed: usize, crash_at: SimTime) -> RecoveryLine {
    recovery_line(h, crashed, crash_at, true)
}

fn recovery_line(
    h: &History,
    crashed: usize,
    crash_at: SimTime,
    directional: bool,
) -> RecoveryLine {
    let n = h.processes.len();
    // Ring positions: non-crashed processes start at "now" (their current
    // state counts as a checkpoint); the crashed one slides to its last
    // checkpoint before the crash.
    let mut ring: Vec<SimTime> = vec![crash_at; n];
    ring[crashed] = last_checkpoint_before(&h.processes[crashed], crash_at);
    loop {
        let mut slipped = false;
        for i in &h.interactions {
            if i.at > crash_at {
                continue;
            }
            // Under Rule 1 both orientations invalidate; under Rule 2 only
            // a send from the earlier-restarting process to the later one
            // does (the receiver would otherwise see the message twice or
            // never).
            let pairs: &[(usize, usize)] = if directional {
                &[(i.from, i.to)]
            } else {
                &[(i.from, i.to), (i.to, i.from)]
            };
            for &(src, dst) in pairs {
                // Inconsistent iff src restarts before the interaction but
                // dst restarts after it: src will re-send (or never send),
                // dst already saw it.
                if ring[src] < i.at && ring[dst] >= i.at {
                    let slid = last_checkpoint_before(&h.processes[dst], i.at);
                    if slid < ring[dst] {
                        ring[dst] = slid;
                        slipped = true;
                    }
                }
            }
        }
        if !slipped {
            return RecoveryLine { restart_at: ring };
        }
    }
}

fn last_checkpoint_before(p: &ProcessHistory, t: SimTime) -> SimTime {
    p.checkpoints
        .iter()
        .rev()
        .find(|&&c| c < t)
        .copied()
        .unwrap_or(SimTime::ZERO)
}

/// Steady-state overhead model for shadow processes (§2.3): every update
/// the primary applies must be mirrored to the shadow by an explicit
/// message, costing sender CPU, receiver CPU, and network bytes.
#[derive(Debug, Clone, Copy)]
pub struct ShadowCosts {
    /// CPU to build and send one shadow-update message.
    pub update_send: SimDuration,
    /// CPU at the shadow to apply it.
    pub update_apply: SimDuration,
    /// Bytes per update message.
    pub update_bytes: u64,
}

impl ShadowCosts {
    /// Total extra CPU for `updates` state changes.
    pub fn cpu_overhead(&self, updates: u64) -> SimDuration {
        (self.update_send + self.update_apply).saturating_mul(updates)
    }

    /// Total extra network bytes for `updates` state changes.
    pub fn network_overhead(&self, updates: u64) -> u64 {
        self.update_bytes * updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// The Figure 1.2 / 2.1 example: three processes; crash of B slides A
    /// back past interaction X, and the rings settle at checkpoint set 2.
    #[test]
    fn figure_2_1_example_settles_at_consistent_set() {
        let mut h = History::new(3); // 0 = A, 1 = B, 2 = C
                                     // Checkpoints (set 1 is the start state at t = 0).
        h.checkpoint(0, ms(10)); // A2
        h.checkpoint(0, ms(40)); // A3
        h.checkpoint(1, ms(12)); // B2
        h.checkpoint(1, ms(45)); // B3
        h.checkpoint(2, ms(11)); // C2
                                 // Interactions: A↔B at t = 30 (X), B↔C at t = 20.
        h.interact(0, 1, ms(30));
        h.interact(1, 2, ms(20));
        let line = recovery_line_rule1(&h, 1, ms(50));
        // B slides to 45; 45 > 30 keeps A at "now"? No: B's ring at 45 is
        // after X(30) and A is at 50 — consistent. B↔C at 20 is before
        // both B(45) and C(now) — consistent. So only B rolls back.
        assert_eq!(line.restart_at[1], ms(45));
        assert_eq!(line.restart_at[0], ms(50));

        // Now crash B earlier, between X and B3: the domino bites.
        let line = recovery_line_rule1(&h, 1, ms(44));
        // B slides to 12 (its checkpoint before 44 is 12); X(30) is after
        // B's ring(12) with A at 44 → A invalidated back to 10; B↔C(20)
        // after B(12) with C at 44 → C back to 11.
        assert_eq!(line.restart_at[1], ms(12));
        assert_eq!(line.restart_at[0], ms(10));
        assert_eq!(line.restart_at[2], ms(11));
    }

    #[test]
    fn rule2_strictly_no_worse_than_rule1() {
        let mut rng = DetRng::new(42);
        for _ in 0..50 {
            let h = History::random(
                &mut rng,
                4,
                SimTime::from_secs(10),
                SimDuration::from_millis(200),
                SimDuration::from_secs(1),
            );
            let crash_at = SimTime::from_secs(10);
            for crashed in 0..4 {
                let l1 = recovery_line_rule1(&h, crashed, crash_at);
                let l2 = recovery_line_rule2(&h, crashed, crash_at);
                assert!(
                    l2.work_lost(crash_at) <= l1.work_lost(crash_at),
                    "directional replay should never lose more work"
                );
            }
        }
    }

    #[test]
    fn domino_effect_can_reach_start_state() {
        // The classic staircase: each checkpoint is bracketed by crossing
        // interactions, so no consistent set later than the start state
        // exists (Randell's unbounded-rollback pathology).
        let mut h = History::new(2);
        for k in 1..=5u64 {
            h.interact(1, 0, ms(k * 10 - 2));
            h.checkpoint(0, ms(k * 10));
            h.interact(0, 1, ms(k * 10 + 2));
            h.checkpoint(1, ms(k * 10 + 4));
        }
        let line = recovery_line_rule1(&h, 0, ms(55));
        assert_eq!(line.restart_at[0], SimTime::ZERO);
        assert_eq!(line.restart_at[1], SimTime::ZERO);
        // Work lost is the whole run, twice.
        assert_eq!(line.work_lost(ms(55)), SimDuration::from_millis(110));
    }

    #[test]
    fn isolated_process_rolls_back_alone() {
        let mut h = History::new(3);
        h.checkpoint(0, ms(20));
        let line = recovery_line_rule1(&h, 0, ms(30));
        assert_eq!(line.restart_at, vec![ms(20), ms(30), ms(30)]);
        assert_eq!(line.work_lost(ms(30)), SimDuration::from_millis(10));
    }

    #[test]
    fn shadow_costs_scale_linearly() {
        let c = ShadowCosts {
            update_send: SimDuration::from_millis(2),
            update_apply: SimDuration::from_millis(1),
            update_bytes: 256,
        };
        assert_eq!(c.cpu_overhead(100), SimDuration::from_millis(300));
        assert_eq!(c.network_overhead(100), 25_600);
    }

    #[test]
    fn random_history_is_deterministic() {
        let mk = |seed| {
            let mut rng = DetRng::new(seed);
            History::random(
                &mut rng,
                3,
                SimTime::from_secs(5),
                SimDuration::from_millis(100),
                SimDuration::from_secs(1),
            )
            .interactions
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }
}
