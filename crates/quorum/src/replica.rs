//! One member of a recorder quorum group: a full [`RecorderNode`] (so
//! every replica captures the broadcast medium and can serve replay
//! reads) fused with a [`RaftCore`] that sequences arrivals through the
//! replicated log.
//!
//! The replica keeps the recorder in *deferred sequencing* mode: an
//! observed destination ack no longer assigns an arrival sequence on
//! the spot — it is queued, proposed by the group's leader as a
//! [`Op::Sequence`] entry with the sequence chosen at proposal, and
//! published on every replica when the entry commits. The §3.2
//! guarantee ("the recorder remembers the order in which messages
//! arrive") thereby survives the permanent loss of any minority of
//! replicas.

use crate::codec::{decode_exports, encode_exports};
use crate::raft::{Op, QMsg, RaftConfig, RaftCore, RaftOut, ReplicaId, Role};
use publishing_core::node::{RNAction, RecorderConfig, RecorderNode};
use publishing_demos::ids::{MessageId, NodeId, ProcessId};
use publishing_demos::transport::Wire;
use publishing_net::frame::{Destination, Frame, StationId};
use publishing_obs::span::{MsgKey, Stage};
use publishing_sim::codec::{Decode, Encode};
use publishing_sim::stats::{LinearHistogram, LogHistogram};
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Timer-token namespace bit: tokens with it set belong to the quorum
/// layer; the rest are forwarded to the inner recorder node.
const QUORUM_TOKEN_BIT: u64 = 1 << 63;
/// The recurring consensus tick.
const TICK_TOKEN: u64 = QUORUM_TOKEN_BIT;

/// An action a [`QuorumReplica`] asks the world to perform (the quorum
/// analogue of [`RNAction`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QAction {
    /// Put a frame on the medium.
    Transmit(Frame),
    /// Call [`QuorumReplica::on_timer`] with `token` at `at`.
    SetTimer {
        /// Callback time.
        at: SimTime,
        /// Token to hand back.
        token: u64,
    },
    /// Physically restart a crashed processing node, then call
    /// [`QuorumReplica::confirm_node_restarted`] (leader arbitration is
    /// the world's job, exactly as in the sharded tier).
    RestartNode {
        /// The node.
        node: NodeId,
        /// Its new incarnation.
        incarnation: u32,
    },
    /// A process finished recovering.
    RecoveryDone {
        /// The process.
        pid: ProcessId,
    },
}

/// Configuration for one quorum replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Recorder group id (carried in every `Wire::Quorum` frame).
    pub group: u32,
    /// Consensus pacing.
    pub raft: RaftConfig,
    /// How often the consensus core ticks (election/heartbeat driver).
    pub tick: SimDuration,
    /// Inner recorder-node configuration.
    pub node: RecorderConfig,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            group: 0,
            raft: RaftConfig::default(),
            tick: SimDuration::from_millis(10),
            node: RecorderConfig::default(),
        }
    }
}

/// A recorder-quorum replica: recorder node + consensus core.
pub struct QuorumReplica {
    id: ReplicaId,
    group: u32,
    tick: SimDuration,
    node: RecorderNode,
    raft: RaftCore,
    /// Node id of each group member, indexed by replica id.
    peers: Vec<NodeId>,
    /// Acks observed on the medium whose messages are not yet
    /// quorum-sequenced, in observation order (volatile; every live
    /// replica accumulates the same backlog, so leader failover can
    /// re-propose it).
    acked: VecDeque<(MessageId, ProcessId)>,
    acked_ids: HashSet<MessageId>,
    /// Leader-volatile: next arrival sequence to propose per
    /// destination. Seeded from the recorder after the term's no-op
    /// commits; cleared on any leadership change.
    proposed_next: HashMap<ProcessId, u64>,
    /// Leader-volatile: set once this term's no-op entry commits —
    /// inherited entries are applied and it is safe to propose.
    term_settled: bool,
    /// Shared flag the recovery-responsibility filter reads: only the
    /// group leader directs process recovery.
    leader_flag: Arc<AtomicBool>,
    /// Bumped on crash so stale consensus-tick timers from a previous
    /// incarnation are ignored instead of forking a second tick chain.
    tick_epoch: u64,
    /// Audit trail for the quorum oracles: every `(seq, id)` this
    /// replica has applied, per destination. Survives crashes (it
    /// belongs to the test harness, not the node) and records a
    /// violation if a sequence is ever re-applied with a different
    /// message — the state-machine-safety check.
    applied_log: BTreeMap<ProcessId, BTreeMap<u64, MessageId>>,
    audit_violations: Vec<String>,
    /// When each still-uncommitted log entry this replica proposed was
    /// proposed (log index → propose time). Volatile: cleared on crash,
    /// so a restart's idempotent re-apply never charges phantom
    /// latencies.
    proposed_at: BTreeMap<u64, SimTime>,
    /// Proposal → quorum-durable commit latency, in virtual-time µs.
    commit_latency_us: LogHistogram,
    /// Worst follower replication lag (log entries), sampled each
    /// consensus tick while this replica leads.
    replication_lag: LinearHistogram,
    up: bool,
}

impl QuorumReplica {
    /// Creates replica `id` of a group whose members live on `peers`
    /// (indexed by replica id; `peers[id]` is this replica's own node).
    pub fn new(id: ReplicaId, peers: Vec<NodeId>, seed: u64, cfg: ReplicaConfig) -> Self {
        assert!((id as usize) < peers.len());
        let mut node = RecorderNode::new(peers[id as usize], cfg.node.clone());
        node.set_deferred_sequencing(true);
        node.set_checkpoint_duty(false);
        let leader_flag = Arc::new(AtomicBool::new(false));
        let flag = leader_flag.clone();
        // Track every pid (each replica is a full recorder); direct
        // recovery only while leading.
        let responsible: publishing_core::recorder::PidFilter =
            Arc::new(move |_pid| flag.load(Ordering::Relaxed));
        node.set_shard_filters(None, Some(responsible));
        let raft = RaftCore::new(id, peers.len() as u32, seed, cfg.raft.clone());
        QuorumReplica {
            id,
            group: cfg.group,
            tick: cfg.tick,
            node,
            raft,
            peers,
            acked: VecDeque::new(),
            acked_ids: HashSet::new(),
            proposed_next: HashMap::new(),
            term_settled: false,
            leader_flag,
            tick_epoch: 0,
            applied_log: BTreeMap::new(),
            audit_violations: Vec::new(),
            proposed_at: BTreeMap::new(),
            commit_latency_us: LogHistogram::new(),
            replication_lag: LinearHistogram::new(0.0, 64.0, 16),
            up: true,
        }
    }

    /// The packed identity Elect spans use for this replica (node in
    /// the high half, local 0 — rendered `node.0`). Only process pids
    /// destined by sequenced messages otherwise appear as subjects in a
    /// replica's span log, so election program-order chains never mix
    /// with message lifecycles.
    fn span_identity(&self) -> u64 {
        (self.node.node().0 as u64) << 32
    }

    /// This replica's id within the group.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The group id.
    pub fn group(&self) -> u32 {
        self.group
    }

    /// The node this replica runs on.
    pub fn node_id(&self) -> NodeId {
        self.node.node()
    }

    /// This replica's station.
    pub fn station(&self) -> StationId {
        self.node.station()
    }

    /// Whether the replica is up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Whether this replica currently leads the group.
    pub fn is_leader(&self) -> bool {
        self.up && self.raft.is_leader()
    }

    /// Read access to the inner recorder node.
    pub fn recorder_node(&self) -> &RecorderNode {
        &self.node
    }

    /// Read access to the consensus core.
    pub fn raft(&self) -> &RaftCore {
        &self.raft
    }

    /// Every `(seq, id)` this replica has applied, per destination —
    /// the audit trail the quorum oracles compare across replicas.
    pub fn applied_log(&self) -> &BTreeMap<ProcessId, BTreeMap<u64, MessageId>> {
        &self.applied_log
    }

    /// State-machine-safety violations this replica observed while
    /// applying (a sequence re-applied with a different message).
    pub fn audit_violations(&self) -> &[String] {
        &self.audit_violations
    }

    /// Proposal → quorum-durable commit latency of entries this replica
    /// proposed, in virtual-time microseconds.
    pub fn commit_latency_us(&self) -> &LogHistogram {
        &self.commit_latency_us
    }

    /// Worst follower replication lag (entries), sampled per consensus
    /// tick while leading.
    pub fn replication_lag_hist(&self) -> &LinearHistogram {
        &self.replication_lag
    }

    /// Re-bounds the inner recorder's span ring (0 = fingerprint-only).
    pub fn set_span_capacity(&mut self, capacity: usize) {
        self.node.set_span_capacity(capacity);
    }

    /// Applies a disk-fault regime to the replica's store.
    pub fn set_disk_faults(&mut self, faults: publishing_stable::disk::DiskFaults) {
        self.node.set_disk_faults(faults);
    }

    /// Begins operation: recorder watchdogs over `watch`, plus the
    /// consensus tick.
    pub fn start(&mut self, now: SimTime, watch: &[NodeId]) -> Vec<QAction> {
        let mut out = Vec::new();
        Self::wrap(self.node.start(now, watch), &mut out);
        let routs = self.raft.start(now);
        self.process(now, routs, &mut out);
        out.push(QAction::SetTimer {
            at: now + self.tick,
            token: TICK_TOKEN | self.tick_epoch,
        });
        out
    }

    fn wrap(actions: Vec<RNAction>, out: &mut Vec<QAction>) {
        for a in actions {
            out.push(match a {
                RNAction::Transmit(frame) => QAction::Transmit(frame),
                RNAction::SetTimer { at, token } => QAction::SetTimer { at, token },
                RNAction::RestartNode { node, incarnation } => {
                    QAction::RestartNode { node, incarnation }
                }
                RNAction::RecoveryDone { pid } => QAction::RecoveryDone { pid },
            });
        }
    }

    fn qframe(&self, to: ReplicaId, msg: &QMsg) -> Frame {
        let wire = Wire::Quorum {
            src_node: self.node.node(),
            group: self.group,
            payload: msg.encode_to_vec(),
        };
        Frame::new(
            self.station(),
            Destination::Station(StationId(self.peers[to as usize].0)),
            wire.encode_to_vec(),
        )
    }

    /// Runs consensus effects to quiescence, then applies committed
    /// entries and proposes any ready backlog.
    fn process(&mut self, now: SimTime, routs: Vec<RaftOut>, out: &mut Vec<QAction>) {
        let mut queue: VecDeque<RaftOut> = routs.into();
        while let Some(o) = queue.pop_front() {
            match o {
                RaftOut::Send { to, msg } => out.push(QAction::Transmit(self.qframe(to, &msg))),
                RaftOut::NeedSnapshot { to } => {
                    let image = self.build_snapshot();
                    let mut more = Vec::new();
                    self.raft.snapshot_built(to, image, &mut more);
                    queue.extend(more);
                }
                RaftOut::ApplySnapshot {
                    leader,
                    index,
                    snap_term,
                    image,
                } => {
                    if let Ok(exports) = decode_exports(&image) {
                        for export in exports {
                            let actions = self.node.import_process(now, export);
                            Self::wrap(actions, out);
                        }
                    }
                    queue.extend(self.raft.snapshot_installed(leader, index, snap_term));
                }
                RaftOut::BecameLeader => {
                    self.term_settled = false;
                    self.proposed_next.clear();
                    self.leader_flag.store(true, Ordering::Relaxed);
                    self.node.set_checkpoint_duty(true);
                    // The election win is a lifecycle event: everything
                    // the group sequences from here on waited on it, so
                    // the causal explorer can attribute failover time.
                    let me = self.span_identity();
                    let term = self.raft.term();
                    self.node.record_span(
                        now,
                        MsgKey {
                            sender: me,
                            seq: term,
                        },
                        Stage::Elect,
                        me,
                        term,
                    );
                }
                RaftOut::SteppedDown => {
                    self.term_settled = false;
                    self.proposed_next.clear();
                    self.leader_flag.store(false, Ordering::Relaxed);
                    self.node.set_checkpoint_duty(false);
                }
            }
        }
        self.drain_commits(now, out);
        self.collect_acks();
        self.propose_ready(now, out);
    }

    fn drain_commits(&mut self, now: SimTime, out: &mut Vec<QAction>) {
        for (idx, entry) in self.raft.take_applicable() {
            if let Some(proposed) = self.proposed_at.remove(&idx) {
                self.commit_latency_us
                    .record(now.saturating_since(proposed).as_nanos() / 1_000);
            }
            match entry.op {
                Op::Noop => {
                    if self.raft.is_leader() && entry.term == self.raft.term() {
                        // Inherited entries are now applied: the
                        // recorder's per-pid sequence counters are
                        // authoritative and proposing is safe.
                        self.term_settled = true;
                    }
                }
                Op::Sequence { seq, msg } => {
                    let dst = msg.header.to;
                    let slot = self.applied_log.entry(dst).or_default();
                    if let Some(prev) = slot.get(&seq) {
                        if *prev != msg.header.id {
                            self.audit_violations.push(format!(
                                "replica {}: pid {:?} seq {} applied as {:?} then {:?}",
                                self.id, dst, seq, prev, msg.header.id
                            ));
                        }
                    } else {
                        slot.insert(seq, msg.header.id);
                    }
                    self.acked_ids.remove(&msg.header.id);
                    let actions = self.node.apply_committed(now, seq, &msg);
                    Self::wrap(actions, out);
                }
            }
        }
    }

    fn collect_acks(&mut self) {
        for (_at, id, pid) in self.node.take_observed_acks() {
            if !self.acked_ids.contains(&id) && !self.node.recorder().is_sequenced(id) {
                self.acked_ids.insert(id);
                self.acked.push_back((id, pid));
            }
        }
    }

    fn propose_ready(&mut self, now: SimTime, out: &mut Vec<QAction>) {
        if self.raft.role() != Role::Leader || !self.term_settled || self.acked.is_empty() {
            return;
        }
        let mut routs = Vec::new();
        let backlog: Vec<(MessageId, ProcessId)> = self.acked.drain(..).collect();
        for (id, dst) in backlog {
            if self.node.recorder().is_sequenced(id) {
                self.acked_ids.remove(&id);
                continue;
            }
            let Some(msg) = self.node.recorder().pending_message(id).cloned() else {
                // The ack raced a capture we never made (e.g. we were
                // catching up); the destination's recovery replay covers
                // it. Do not invent a sequence for bytes we don't hold.
                self.acked_ids.remove(&id);
                continue;
            };
            let seeded = self.node.recorder().next_arrival_seq(dst);
            let next = self.proposed_next.entry(dst).or_insert(seeded);
            let seq = *next;
            *next += 1;
            if let Some(idx) = self.raft.propose(Op::Sequence { seq, msg }, &mut routs) {
                self.proposed_at.insert(idx, now);
            }
        }
        // Proposals only generate Sends (plus possible snapshot needs);
        // re-enter the effect loop without re-proposing.
        let mut queue: VecDeque<RaftOut> = routs.into();
        while let Some(o) = queue.pop_front() {
            match o {
                RaftOut::Send { to, msg } => out.push(QAction::Transmit(self.qframe(to, &msg))),
                RaftOut::NeedSnapshot { to } => {
                    let image = self.build_snapshot();
                    let mut more = Vec::new();
                    self.raft.snapshot_built(to, image, &mut more);
                    queue.extend(more);
                }
                _ => {}
            }
        }
        self.drain_commits(now, out);
    }

    fn build_snapshot(&self) -> Vec<u8> {
        let pids: Vec<ProcessId> = self.node.recorder().known_pids().collect();
        let exports: Vec<_> = pids
            .iter()
            .filter_map(|&p| self.node.export_process(p))
            .collect();
        encode_exports(&exports)
    }

    /// Handles a frame seen on the medium. Quorum frames for this group
    /// are consensus input and are processed whenever the replica is up
    /// (their loss tolerance comes from heartbeat retransmission, not
    /// the capture gate); everything else goes to the inner recorder.
    pub fn on_frame(&mut self, now: SimTime, frame: &Frame, recorder_ok: bool) -> Vec<QAction> {
        let mut out = Vec::new();
        if !self.up {
            return out;
        }
        if frame.is_intact() {
            if let Ok(Wire::Quorum { group, payload, .. }) = Wire::decode_all(&frame.payload) {
                if group == self.group && frame.dst.accepts(self.station()) {
                    if let Ok(qmsg) = QMsg::decode_all(&payload) {
                        let routs = self.raft.on_msg(now, qmsg);
                        self.process(now, routs, &mut out);
                    }
                }
                return out;
            }
        }
        let actions = self.node.on_frame(now, frame, recorder_ok);
        Self::wrap(actions, &mut out);
        // An observed ack may be proposable immediately.
        self.collect_acks();
        self.propose_ready(now, &mut out);
        out
    }

    /// Handles a timer callback.
    pub fn on_timer(&mut self, now: SimTime, token: u64) -> Vec<QAction> {
        let mut out = Vec::new();
        if !self.up {
            return out;
        }
        if token & QUORUM_TOKEN_BIT != 0 {
            if token != (TICK_TOKEN | self.tick_epoch) {
                // A tick armed before a crash; the restart began a fresh
                // chain.
                return out;
            }
            let routs = self.raft.tick(now);
            self.process(now, routs, &mut out);
            if self.raft.is_leader() {
                self.replication_lag
                    .record(self.raft.worst_follower_lag() as f64);
            }
            out.push(QAction::SetTimer {
                at: now + self.tick,
                token: TICK_TOKEN | self.tick_epoch,
            });
        } else {
            let actions = self.node.on_timer(now, token);
            Self::wrap(actions, &mut out);
            self.collect_acks();
            self.propose_ready(now, &mut out);
        }
        out
    }

    /// The world completed a node restart this replica requested (or the
    /// leader ordered); resets transport numbering and recovers the
    /// node's processes. `announce` must be true on exactly one replica.
    pub fn confirm_node_restarted(
        &mut self,
        now: SimTime,
        node: NodeId,
        incarnation: u32,
        announce: bool,
    ) -> Vec<QAction> {
        let mut out = Vec::new();
        let actions = self
            .node
            .confirm_node_restarted_with(now, node, incarnation, announce);
        Self::wrap(actions, &mut out);
        out
    }

    /// Declines a node restart another replica is responsible for.
    pub fn decline_node_restart(&mut self, node: NodeId) {
        self.node.decline_node_restart(node);
    }

    /// Crashes the replica: recorder volatile state is lost (battery
    /// keeps the capture buffer and the consensus log), leadership is
    /// lost, timers die with the host.
    pub fn crash(&mut self) {
        self.up = false;
        self.leader_flag.store(false, Ordering::Relaxed);
        self.term_settled = false;
        self.tick_epoch += 1;
        self.proposed_next.clear();
        self.proposed_at.clear();
        self.acked.clear();
        self.acked_ids.clear();
        self.node.crash();
    }

    /// Restarts the replica: recorder rebuild from stable storage, then
    /// rejoin the group as a follower and re-apply the committed prefix
    /// (idempotently) to repair any store writes the crash destroyed.
    pub fn restart(&mut self, now: SimTime) -> Vec<QAction> {
        let mut out = Vec::new();
        self.up = true;
        Self::wrap(self.node.restart(now), &mut out);
        let routs = self.raft.restart(now);
        self.process(now, routs, &mut out);
        out.push(QAction::SetTimer {
            at: now + self.tick,
            token: TICK_TOKEN | self.tick_epoch,
        });
        out
    }
}
