#!/usr/bin/env bash
# Full CI gate, identical to .github/workflows/ci.yml. Run before merging.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors; vendored shims excluded)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet \
  --exclude proptest --exclude criterion --exclude crossbeam --exclude parking_lot

echo "==> obs_report smoke run"
cargo run -q --release -p publishing-bench --bin obs_report -- --smoke > /dev/null

echo "==> chaos smoke run"
cargo run -q --release -p publishing-bench --bin chaos -- --smoke > /dev/null

echo "==> quorum smoke run (seeded leader-crash failover gate)"
cargo run -q --release -p publishing-bench --bin quorum -- --smoke > /dev/null

echo "==> quorum obs_report smoke (consensus report + watchdog exit-code gate)"
cargo run -q --release -p publishing-bench --bin obs_report -- --smoke --topology quorum > /dev/null

echo "==> quorum explain smoke (election hop on the recovery critical path)"
cargo run -q --release -p publishing-bench --bin explain -- --quorum --smoke > /dev/null

echo "==> workload smoke run (capacity-knee determinism gate)"
cargo run -q --release -p publishing-bench --bin workload -- --smoke > /dev/null

echo "==> capacity smoke run (knee table over canonical shapes)"
cargo run -q --release -p publishing-bench --bin capacity -- --smoke > /dev/null

echo "==> lens smoke run (utilization attribution + what-if determinism gate)"
# The lens gate gets its own directory: the bench step below recreates
# target/perf from scratch and would clobber lens_a/lens_b.txt.
rm -rf target/lens
mkdir -p target/lens
cargo run -q --release -p publishing-bench --bin lens -- --smoke > target/lens/lens_a.txt
cargo run -q --release -p publishing-bench --bin lens -- --smoke > target/lens/lens_b.txt
diff target/lens/lens_a.txt target/lens/lens_b.txt

echo "==> forensics smoke run (self-diff emptiness + determinism gate)"
cargo run -q --release -p publishing-bench --bin forensics -- --smoke > target/lens/forensics_a.txt
cargo run -q --release -p publishing-bench --bin forensics -- --smoke > target/lens/forensics_b.txt
diff target/lens/forensics_a.txt target/lens/forensics_b.txt

echo "==> perf bench smoke + regression gate vs perf/BENCH_1.json"
rm -rf target/perf
cargo run -q --release -p publishing-bench --bin bench -- --smoke --dir target/perf
cargo run -q --release -p publishing-bench --bin obs_report -- --smoke --trace target/perf/trace.json > /dev/null

echo "==> causal explorer smoke run (critical path, attribution, DOT/flow stability)"
cargo run -q --release -p publishing-bench --bin explain -- --smoke --dot target/perf/causal.dot > /dev/null
cargo run -q --release -p publishing-bench --bin bench_compare -- --explain perf/BENCH_1.json target/perf/BENCH_1.json

echo "CI green."
